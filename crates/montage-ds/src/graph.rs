//! The Montage general graph (paper Sec. 6.3).
//!
//! Persistent state: one payload per vertex (`[vid][attributes]`) and one
//! payload per edge (`[src][dst][attributes]`). **Edge payloads name their
//! endpoint vertices, but vertices do not point at edges** — the paper's
//! arrangement for avoiding long persistent pointer chains (a vertex update
//! would otherwise cascade into every adjacent edge payload).
//!
//! Transient state: a fixed-capacity slot table indexed by vertex id, each
//! slot holding the vertex payload handle and an adjacency map from
//! neighbour id to edge payload handle (edges are undirected for adjacency
//! purposes, matching the benchmark's RemoveVertex semantics of "clears all
//! adjacent edges"). Synchronization is per-vertex locks, acquired in id
//! order to avoid deadlock; `remove_vertex` locks the vertex and all its
//! neighbours so the vertex and its incident edges die in one operation
//! (hence one epoch — recovery can never see a half-removed vertex).

use montage::sync::uninstrumented::{AtomicUsize, Ordering};
use std::collections::HashMap;
use std::sync::Arc;

use montage::sync::{Mutex, MutexGuard};
use montage::{EpochSys, PHandle, RecoveredState, ThreadId};

struct Slot {
    /// Vertex payload; null when the vertex does not exist.
    payload: PHandle<[u8]>,
    exists: bool,
    /// neighbour id → edge payload handle.
    adj: HashMap<u64, PHandle<[u8]>>,
}

impl Default for Slot {
    fn default() -> Self {
        Slot {
            payload: PHandle::null(),
            exists: false,
            adj: HashMap::new(),
        }
    }
}

/// A buffered-persistent general graph with per-vertex locking.
pub struct MontageGraph {
    esys: Arc<EpochSys>,
    vtag: u16,
    etag: u16,
    slots: Box<[Mutex<Slot>]>,
    vertices: AtomicUsize,
    edges: AtomicUsize,
}

impl MontageGraph {
    /// Creates a graph with vertex-id capacity `capacity`.
    pub fn new(esys: Arc<EpochSys>, vtag: u16, etag: u16, capacity: usize) -> Self {
        MontageGraph {
            esys,
            vtag,
            etag,
            slots: (0..capacity).map(|_| Mutex::default()).collect(),
            vertices: AtomicUsize::new(0),
            edges: AtomicUsize::new(0),
        }
    }

    /// Rebuilds the graph from recovered payloads: vertices first (parallel
    /// across shards), then edges — "much like parallel construction"
    /// (paper Sec. 6.4). Edges whose endpoints did not survive (possible
    /// when a crash separates a remove_vertex from a prior unsynced
    /// add_edge epoch-wise) are dropped and their payloads deleted, keeping
    /// the no-dangling-edges invariant.
    pub fn recover(
        esys: Arc<EpochSys>,
        vtag: u16,
        etag: u16,
        capacity: usize,
        rec: &RecoveredState,
    ) -> Self {
        let g = Self::new(esys, vtag, etag, capacity);
        // Pass 1: vertices.
        std::thread::scope(|s| {
            for shard in &rec.shards {
                s.spawn(|| {
                    for item in shard.iter().filter(|it| it.tag == vtag) {
                        let vid = rec
                            .with_bytes(item, |b| u64::from_le_bytes(b[..8].try_into().unwrap()));
                        let mut slot = g.slots[vid as usize].lock();
                        slot.payload = item.handle();
                        slot.exists = true;
                        // ord(counter): size estimate only.
                        g.vertices.fetch_add(1, Ordering::Relaxed);
                    }
                });
            }
        });
        // Pass 2: edges.
        let orphans: Vec<Vec<PHandle<[u8]>>> = std::thread::scope(|s| {
            let handles: Vec<_> = rec
                .shards
                .iter()
                .map(|shard| {
                    s.spawn(|| {
                        let mut orphaned = Vec::new();
                        for item in shard.iter().filter(|it| it.tag == etag) {
                            let (src, dst) = rec.with_bytes(item, |b| {
                                (
                                    u64::from_le_bytes(b[..8].try_into().unwrap()),
                                    u64::from_le_bytes(b[8..16].try_into().unwrap()),
                                )
                            });
                            let (lo, hi) = (src.min(dst), src.max(dst));
                            let mut a = g.slots[lo as usize].lock();
                            let mut b = if lo == hi {
                                None
                            } else {
                                Some(g.slots[hi as usize].lock())
                            };
                            let both = a.exists && b.as_ref().map_or(a.exists, |s| s.exists);
                            if both {
                                a.adj
                                    .insert(if lo == src { dst } else { src }, item.handle());
                                if let Some(bs) = b.as_mut() {
                                    bs.adj
                                        .insert(if hi == src { dst } else { src }, item.handle());
                                }
                                // ord(counter): size estimate only.
                                g.edges.fetch_add(1, Ordering::Relaxed);
                            } else {
                                orphaned.push(item.handle());
                            }
                        }
                        orphaned
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });
        // Drop orphaned edge payloads in a fresh operation.
        let orphans: Vec<_> = orphans.into_iter().flatten().collect();
        if !orphans.is_empty() {
            let tid = g.esys.register_thread();
            let guard = g.esys.begin_op(tid);
            for h in orphans {
                let _ = g.esys.pdelete(&guard, h);
            }
        }
        g
    }

    pub fn esys(&self) -> &Arc<EpochSys> {
        &self.esys
    }

    pub fn capacity(&self) -> usize {
        self.slots.len()
    }

    pub fn vertex_count(&self) -> usize {
        // ord(counter): advisory size; no payload is published through it.
        self.vertices.load(Ordering::Relaxed)
    }

    pub fn edge_count(&self) -> usize {
        // ord(counter): advisory size; no payload is published through it.
        self.edges.load(Ordering::Relaxed)
    }

    fn encode_vertex(vid: u64, attr: &[u8]) -> Vec<u8> {
        let mut b = Vec::with_capacity(8 + attr.len());
        b.extend_from_slice(&vid.to_le_bytes());
        b.extend_from_slice(attr);
        b
    }

    fn encode_edge(src: u64, dst: u64, attr: &[u8]) -> Vec<u8> {
        let mut b = Vec::with_capacity(16 + attr.len());
        b.extend_from_slice(&src.to_le_bytes());
        b.extend_from_slice(&dst.to_le_bytes());
        b.extend_from_slice(attr);
        b
    }

    /// Adds vertex `vid`; returns `false` if it already exists.
    pub fn add_vertex(&self, tid: ThreadId, vid: u64, attr: &[u8]) -> bool {
        let mut slot = self.slots[vid as usize].lock();
        if slot.exists {
            return false;
        }
        let g = self.esys.begin_op(tid);
        slot.payload = self
            .esys
            .pnew_bytes(&g, self.vtag, &Self::encode_vertex(vid, attr));
        slot.exists = true;
        // ord(counter): size estimate only.
        self.vertices.fetch_add(1, Ordering::Relaxed);
        true
    }

    /// True iff vertex `vid` exists.
    pub fn has_vertex(&self, vid: u64) -> bool {
        self.slots[vid as usize].lock().exists
    }

    /// Degree of `vid` (0 if absent).
    pub fn degree(&self, vid: u64) -> usize {
        self.slots[vid as usize].lock().adj.len()
    }

    /// Neighbour ids of `vid`.
    pub fn neighbors(&self, vid: u64) -> Vec<u64> {
        self.slots[vid as usize]
            .lock()
            .adj
            .keys()
            .copied()
            .collect()
    }

    fn lock_pair(&self, a: u64, b: u64) -> (MutexGuard<'_, Slot>, Option<MutexGuard<'_, Slot>>) {
        let (lo, hi) = (a.min(b), a.max(b));
        let first = self.slots[lo as usize].lock();
        let second = (lo != hi).then(|| self.slots[hi as usize].lock());
        if a <= b {
            (first, second)
        } else {
            match second {
                Some(s) => (s, Some(first)),
                None => (first, None),
            }
        }
    }

    /// Adds an (undirected) edge; returns `false` if either endpoint is
    /// missing or the edge already exists.
    pub fn add_edge(&self, tid: ThreadId, src: u64, dst: u64, attr: &[u8]) -> bool {
        if src == dst {
            return false;
        }
        let (mut s_src, s_dst) = self.lock_pair(src, dst);
        let mut s_dst = s_dst.expect("src != dst");
        if !s_src.exists || !s_dst.exists || s_src.adj.contains_key(&dst) {
            return false;
        }
        let g = self.esys.begin_op(tid);
        let h = self
            .esys
            .pnew_bytes(&g, self.etag, &Self::encode_edge(src, dst, attr));
        s_src.adj.insert(dst, h);
        s_dst.adj.insert(src, h);
        // ord(counter): size estimate only.
        self.edges.fetch_add(1, Ordering::Relaxed);
        true
    }

    /// True iff the edge exists.
    pub fn has_edge(&self, src: u64, dst: u64) -> bool {
        self.slots[src as usize].lock().adj.contains_key(&dst)
    }

    /// Removes an edge; returns `false` if absent.
    pub fn remove_edge(&self, tid: ThreadId, src: u64, dst: u64) -> bool {
        if src == dst {
            return false;
        }
        let (mut s_src, s_dst) = self.lock_pair(src, dst);
        let mut s_dst = s_dst.expect("src != dst");
        let Some(h) = s_src.adj.remove(&dst) else {
            return false;
        };
        s_dst.adj.remove(&src);
        let g = self.esys.begin_op(tid);
        self.esys.pdelete(&g, h).expect("vertex locks order epochs");
        // ord(counter): size estimate only.
        self.edges.fetch_sub(1, Ordering::Relaxed);
        true
    }

    /// Removes a vertex and all incident edges **in one operation** (one
    /// epoch — the removal is failure-atomic). Returns `false` if absent.
    ///
    /// Locks the vertex and all current neighbours in id order; retries if
    /// the neighbour set changes while gathering locks.
    pub fn remove_vertex(&self, tid: ThreadId, vid: u64) -> bool {
        loop {
            // Snapshot the neighbour set.
            let neighbours: Vec<u64> = {
                let slot = self.slots[vid as usize].lock();
                if !slot.exists {
                    return false;
                }
                slot.adj.keys().copied().collect()
            };
            // Lock vid + neighbours in id order.
            let mut ids: Vec<u64> = neighbours.iter().copied().chain([vid]).collect();
            ids.sort_unstable();
            ids.dedup();
            let mut guards: Vec<(u64, MutexGuard<'_, Slot>)> = ids
                .iter()
                .map(|&id| (id, self.slots[id as usize].lock()))
                .collect();
            // Re-validate under the locks.
            let vslot_idx = guards.iter().position(|(id, _)| *id == vid).unwrap();
            if !guards[vslot_idx].1.exists {
                return false;
            }
            {
                let current: Vec<u64> = guards[vslot_idx].1.adj.keys().copied().collect();
                let mut a = current.clone();
                let mut b = neighbours.clone();
                a.sort_unstable();
                b.sort_unstable();
                if a != b {
                    continue; // adjacency changed; retry with fresh snapshot
                }
            }

            // One operation: delete the vertex payload and every incident
            // edge payload.
            let g = self.esys.begin_op(tid);
            let vpayload = guards[vslot_idx].1.payload;
            self.esys.pdelete(&g, vpayload).expect("locks order epochs");
            let adj: Vec<(u64, PHandle<[u8]>)> = guards[vslot_idx].1.adj.drain().collect();
            for (nid, h) in adj {
                self.esys.pdelete(&g, h).expect("locks order epochs");
                let n = guards.iter_mut().find(|(id, _)| *id == nid).unwrap();
                n.1.adj.remove(&vid);
                // ord(counter): size estimate only.
                self.edges.fetch_sub(1, Ordering::Relaxed);
            }
            let vslot = &mut guards[vslot_idx].1;
            vslot.exists = false;
            vslot.payload = PHandle::null();
            self.vertices.fetch_sub(1, Ordering::Relaxed);
            return true;
        }
    }

    /// Checks internal invariants (symmetry, no dangling edges); for tests.
    pub fn check_invariants(&self) {
        for vid in 0..self.slots.len() as u64 {
            let slot = self.slots[vid as usize].lock();
            if !slot.exists {
                assert!(slot.adj.is_empty(), "vertex {vid} absent but has edges");
                continue;
            }
            let neigh: Vec<u64> = slot.adj.keys().copied().collect();
            drop(slot);
            for n in neigh {
                let ns = self.slots[n as usize].lock();
                assert!(ns.exists, "edge {vid}-{n} dangles");
                assert!(ns.adj.contains_key(&vid), "edge {vid}-{n} not symmetric");
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use montage::EsysConfig;
    use pmem::{PmemConfig, PmemPool};

    fn sys() -> Arc<EpochSys> {
        EpochSys::format(
            PmemPool::new(PmemConfig::strict_for_test(64 << 20)),
            EsysConfig::default(),
        )
    }

    fn graph(s: &Arc<EpochSys>) -> MontageGraph {
        MontageGraph::new(s.clone(), 4, 5, 1024)
    }

    #[test]
    fn vertex_lifecycle() {
        let s = sys();
        let g = graph(&s);
        let tid = s.register_thread();
        assert!(g.add_vertex(tid, 1, b"v1"));
        assert!(!g.add_vertex(tid, 1, b"dup"));
        assert!(g.has_vertex(1));
        assert_eq!(g.vertex_count(), 1);
        assert!(g.remove_vertex(tid, 1));
        assert!(!g.has_vertex(1));
        assert!(!g.remove_vertex(tid, 1));
    }

    #[test]
    fn edge_lifecycle_and_symmetry() {
        let s = sys();
        let g = graph(&s);
        let tid = s.register_thread();
        g.add_vertex(tid, 1, b"");
        g.add_vertex(tid, 2, b"");
        assert!(!g.add_edge(tid, 1, 3, b""), "missing endpoint");
        assert!(g.add_edge(tid, 1, 2, b"e"));
        assert!(!g.add_edge(tid, 1, 2, b"dup"));
        assert!(
            !g.add_edge(tid, 2, 1, b"dup-rev"),
            "undirected: reverse is a dup"
        );
        assert!(g.has_edge(1, 2) && g.has_edge(2, 1));
        assert_eq!(g.edge_count(), 1);
        assert!(g.remove_edge(tid, 2, 1));
        assert!(!g.has_edge(1, 2));
        assert_eq!(g.edge_count(), 0);
        g.check_invariants();
    }

    #[test]
    fn self_loops_rejected() {
        let s = sys();
        let g = graph(&s);
        let tid = s.register_thread();
        g.add_vertex(tid, 1, b"");
        assert!(!g.add_edge(tid, 1, 1, b""));
    }

    #[test]
    fn remove_vertex_clears_incident_edges() {
        let s = sys();
        let g = graph(&s);
        let tid = s.register_thread();
        for v in 0..5 {
            g.add_vertex(tid, v, b"");
        }
        for v in 1..5 {
            g.add_edge(tid, 0, v, b"");
        }
        assert_eq!(g.degree(0), 4);
        assert!(g.remove_vertex(tid, 0));
        assert_eq!(g.edge_count(), 0);
        for v in 1..5 {
            assert_eq!(g.degree(v), 0);
        }
        g.check_invariants();
    }

    #[test]
    fn concurrent_edge_churn_keeps_invariants() {
        let s = sys();
        let g = Arc::new(graph(&s));
        let tid0 = s.register_thread();
        for v in 0..64 {
            g.add_vertex(tid0, v, b"");
        }
        let mut handles = vec![];
        for t in 0..4u64 {
            let g = g.clone();
            let s = s.clone();
            handles.push(std::thread::spawn(move || {
                let tid = s.register_thread();
                let mut x = t * 2654435761 + 1;
                for _ in 0..1500 {
                    x = x
                        .wrapping_mul(6364136223846793005)
                        .wrapping_add(1442695040888963407);
                    let a = (x >> 33) % 64;
                    let b = (x >> 13) % 64;
                    match x % 3 {
                        0 => {
                            g.add_edge(tid, a, b, b"");
                        }
                        1 => {
                            g.remove_edge(tid, a, b);
                        }
                        _ => {
                            if a % 16 == 0 {
                                g.remove_vertex(tid, a);
                                g.add_vertex(tid, a, b"");
                            }
                        }
                    }
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        g.check_invariants();
    }

    #[test]
    fn recovery_restores_graph() {
        let s = sys();
        let g = graph(&s);
        let tid = s.register_thread();
        for v in 0..10 {
            g.add_vertex(tid, v, format!("v{v}").as_bytes());
        }
        for v in 1..10 {
            g.add_edge(tid, 0, v, b"e");
        }
        g.remove_edge(tid, 0, 5);
        g.remove_vertex(tid, 9);
        s.sync();
        let rec = montage::recovery::recover(s.pool().crash(), EsysConfig::default(), 2);
        let g2 = MontageGraph::recover(rec.esys.clone(), 4, 5, 1024, &rec);
        assert_eq!(g2.vertex_count(), 9);
        assert_eq!(g2.edge_count(), 7); // 9 added - (0,5) removed - (0,9) with vertex 9
        assert!(g2.has_edge(0, 1));
        assert!(!g2.has_edge(0, 5));
        assert!(!g2.has_vertex(9));
        g2.check_invariants();
    }

    #[test]
    fn recovery_drops_dangling_edges() {
        // Construct the pathological interleaving: edge synced, then vertex
        // removed and synced, but suppose only part of the history persists.
        // We emulate it by never syncing the edge's endpoints' removal —
        // i.e. crash right after adding an edge to an unsynced vertex.
        let s = sys();
        let g = graph(&s);
        let tid = s.register_thread();
        g.add_vertex(tid, 1, b"");
        s.sync();
        g.add_vertex(tid, 2, b"");
        // Edge in a *later* epoch than vertex 2's creation, synced alone is
        // impossible; instead sync everything, then remove the vertex and
        // sync, keeping the edge's payload alive only if cancellation fails.
        g.add_edge(tid, 1, 2, b"");
        s.sync();
        g.remove_vertex(tid, 2); // deletes vertex 2 and edge 1-2 atomically
        s.sync();
        let rec = montage::recovery::recover(s.pool().crash(), EsysConfig::default(), 1);
        let g2 = MontageGraph::recover(rec.esys.clone(), 4, 5, 1024, &rec);
        assert!(g2.has_vertex(1));
        assert!(!g2.has_vertex(2));
        assert_eq!(g2.edge_count(), 0);
        g2.check_invariants();
    }

    #[test]
    fn graph_usable_after_recovery() {
        let s = sys();
        let g = graph(&s);
        let tid = s.register_thread();
        g.add_vertex(tid, 1, b"");
        g.add_vertex(tid, 2, b"");
        g.add_edge(tid, 1, 2, b"");
        s.sync();
        let rec = montage::recovery::recover(s.pool().crash(), EsysConfig::default(), 1);
        let g2 = MontageGraph::recover(rec.esys.clone(), 4, 5, 1024, &rec);
        let tid2 = rec.esys.register_thread();
        g2.add_vertex(tid2, 3, b"");
        assert!(g2.add_edge(tid2, 2, 3, b""));
        assert!(g2.remove_vertex(tid2, 1));
        g2.check_invariants();
        assert_eq!(g2.vertex_count(), 2);
        assert_eq!(g2.edge_count(), 1);
    }
}
