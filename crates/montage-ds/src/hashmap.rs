//! The Montage hashmap (paper Fig. 2): a lock-per-bucket chained map whose
//! buckets, chains and locks are all transient; the only persistent state is
//! a bag of key/value payloads.
//!
//! Payload layout: the key bytes (fixed-size `K: Copy`) followed by the
//! value bytes. Recovery simply re-inserts every surviving payload into a
//! fresh transient index — under 50 lines, like the paper's.

use std::hash::{Hash, Hasher};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

use montage::{EpochSys, PHandle, RecoveredState, ThreadId};
use parking_lot::Mutex;
use pmem::PmemFault;

/// One chain entry: transient key copy (fast compares without touching NVM)
/// plus the indirection to the current payload version (paper Sec. 3.1: a
/// single transient pointer per payload makes handle replacement trivial).
struct Entry<K> {
    key: K,
    payload: PHandle<[u8]>,
}

struct Bucket<K> {
    chain: Mutex<Vec<Entry<K>>>,
}

/// A buffered-persistent hash map with per-bucket locking.
///
/// `K` must be a fixed-size `Copy` type (the paper pads string keys to
/// 32 bytes; use `[u8; 32]`). Values are byte slices of any length.
///
/// ```
/// use montage::{EpochSys, EsysConfig};
/// use montage_ds::{tags, MontageHashMap};
/// use pmem::{PmemConfig, PmemPool};
///
/// let esys = EpochSys::format(
///     PmemPool::new(PmemConfig::strict_for_test(16 << 20)),
///     EsysConfig::default(),
/// );
/// let tid = esys.register_thread();
/// let map = MontageHashMap::<u64>::new(esys.clone(), tags::HASHMAP, 64);
/// map.put(tid, 7, b"value");
/// assert_eq!(map.get_owned(tid, &7).unwrap(), b"value");
/// esys.sync(); // durable
/// ```
pub struct MontageHashMap<K> {
    esys: Arc<EpochSys>,
    tag: u16,
    buckets: Box<[Bucket<K>]>,
    len: AtomicUsize,
}

impl<K: Copy + Eq + Hash + Send + Sync> MontageHashMap<K> {
    /// Creates a map with `nbuckets` transient buckets.
    pub fn new(esys: Arc<EpochSys>, tag: u16, nbuckets: usize) -> Self {
        assert!(nbuckets > 0);
        MontageHashMap {
            esys,
            tag,
            buckets: (0..nbuckets)
                .map(|_| Bucket {
                    chain: Mutex::new(Vec::new()),
                })
                .collect(),
            len: AtomicUsize::new(0),
        }
    }

    /// Rebuilds the transient index from recovered payloads, using one
    /// rebuild thread per shard (the paper's parallel recovery).
    pub fn recover(esys: Arc<EpochSys>, tag: u16, nbuckets: usize, rec: &RecoveredState) -> Self {
        let map = Self::new(esys, tag, nbuckets);
        std::thread::scope(|s| {
            for shard in &rec.shards {
                s.spawn(|| {
                    for item in shard.iter().filter(|it| it.tag == tag) {
                        let key = rec.with_bytes(item, |b| {
                            let mut k = std::mem::MaybeUninit::<K>::uninit();
                            // SAFETY: the payload starts with a valid K, and
                            // `b` covers at least size_of::<K>() bytes.
                            // lint: allow(raw-write): copies pool bytes into a transient stack value, not into the pool
                            unsafe {
                                std::ptr::copy_nonoverlapping(
                                    b.as_ptr(),
                                    k.as_mut_ptr() as *mut u8,
                                    std::mem::size_of::<K>(),
                                );
                                k.assume_init()
                            }
                        });
                        let mut chain = map.buckets[map.index(&key)].chain.lock();
                        debug_assert!(
                            !chain.iter().any(|e| e.key == key),
                            "duplicate key in recovered payload set"
                        );
                        chain.push(Entry {
                            key,
                            payload: item.handle(),
                        });
                        map.len.fetch_add(1, Ordering::Relaxed);
                    }
                });
            }
        });
        map
    }

    pub fn esys(&self) -> &Arc<EpochSys> {
        &self.esys
    }

    #[inline]
    fn index(&self, key: &K) -> usize {
        let mut h = std::collections::hash_map::DefaultHasher::new();
        key.hash(&mut h);
        (h.finish() as usize) % self.buckets.len()
    }

    fn encode(&self, key: &K, value: &[u8]) -> Vec<u8> {
        let ksize = std::mem::size_of::<K>();
        let mut buf = vec![0u8; ksize + value.len()];
        // SAFETY: `buf` holds `ksize` bytes and K is plain data.
        // lint: allow(raw-write): serializes the key into a transient Vec; the pool copy goes through pnew_bytes
        unsafe {
            std::ptr::copy_nonoverlapping(key as *const K as *const u8, buf.as_mut_ptr(), ksize);
        }
        buf[ksize..].copy_from_slice(value);
        buf
    }

    /// Inserts or updates; returns `true` if the key already existed.
    pub fn put(&self, tid: ThreadId, key: K, value: &[u8]) -> bool {
        let ksize = std::mem::size_of::<K>();
        let mut chain = self.buckets[self.index(&key)].chain.lock();
        let g = self.esys.begin_op(tid);
        if let Some(e) = chain.iter_mut().find(|e| e.key == key) {
            let same_len = self
                .esys
                .peek_bytes_unsafe(e.payload, |b| b.len() == ksize + value.len());
            if same_len {
                // In-place (or copy-on-write) update through Montage `set`;
                // the returned handle replaces the indirection pointer.
                e.payload = self
                    .esys
                    .set_bytes(&g, e.payload, |b| b[ksize..].copy_from_slice(value))
                    .expect("bucket lock orders epochs");
            } else {
                // Size changed: same-uid replacement — the new payload takes
                // over the old one's identity, so a crash cut anywhere in the
                // op recovers exactly one version of the key (see
                // `EpochSys::replace_bytes` for the ordering argument).
                e.payload = self
                    .esys
                    .replace_bytes(&g, e.payload, &self.encode(&key, value))
                    .expect("bucket lock orders epochs");
            }
            true
        } else {
            let h = self
                .esys
                .pnew_bytes(&g, self.tag, &self.encode(&key, value));
            chain.push(Entry { key, payload: h });
            self.len.fetch_add(1, Ordering::Relaxed);
            false
        }
    }

    /// Checked [`MontageHashMap::put`] for fault-injection runs: refuses to
    /// start on a crashed pool and reports a fault plan tripping
    /// mid-operation, so sweep workloads unwind instead of panicking.
    pub fn try_put(&self, tid: ThreadId, key: K, value: &[u8]) -> Result<bool, PmemFault> {
        self.esys.pool().check_fault()?;
        let existed = self.put(tid, key, value);
        self.esys.pool().check_fault()?;
        Ok(existed)
    }

    /// Checked [`MontageHashMap::remove`]; see [`MontageHashMap::try_put`].
    pub fn try_remove(&self, tid: ThreadId, key: &K) -> Result<bool, PmemFault> {
        self.esys.pool().check_fault()?;
        let existed = self.remove(tid, key);
        self.esys.pool().check_fault()?;
        Ok(existed)
    }

    /// Inserts only if absent; returns `false` if the key existed.
    pub fn insert(&self, tid: ThreadId, key: K, value: &[u8]) -> bool {
        let mut chain = self.buckets[self.index(&key)].chain.lock();
        if chain.iter().any(|e| e.key == key) {
            return false;
        }
        let g = self.esys.begin_op(tid);
        let h = self
            .esys
            .pnew_bytes(&g, self.tag, &self.encode(&key, value));
        chain.push(Entry { key, payload: h });
        self.len.fetch_add(1, Ordering::Relaxed);
        true
    }

    /// Looks up `key`, applying `f` to the value bytes. Read-only: skips
    /// `BEGIN_OP`/`END_OP` per the paper (reads are invisible to recovery)
    /// and synchronizes only on the transient bucket lock.
    pub fn get<R>(&self, _tid: ThreadId, key: &K, f: impl FnOnce(&[u8]) -> R) -> Option<R> {
        let ksize = std::mem::size_of::<K>();
        let chain = self.buckets[self.index(key)].chain.lock();
        let e = chain.iter().find(|e| e.key == *key)?;
        Some(self.esys.peek_bytes_unsafe(e.payload, |b| f(&b[ksize..])))
    }

    /// Owned-value lookup.
    pub fn get_owned(&self, tid: ThreadId, key: &K) -> Option<Vec<u8>> {
        self.get(tid, key, |b| b.to_vec())
    }

    /// Removes `key`; returns `true` if it existed.
    pub fn remove(&self, tid: ThreadId, key: &K) -> bool {
        let mut chain = self.buckets[self.index(key)].chain.lock();
        let Some(pos) = chain.iter().position(|e| e.key == *key) else {
            return false;
        };
        let g = self.esys.begin_op(tid);
        let e = chain.swap_remove(pos);
        self.esys
            .pdelete(&g, e.payload)
            .expect("bucket lock orders epochs");
        self.len.fetch_sub(1, Ordering::Relaxed);
        true
    }

    pub fn len(&self) -> usize {
        self.len.load(Ordering::Relaxed)
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use montage::EsysConfig;
    use pmem::{PmemConfig, PmemPool};

    type Key = [u8; 32];

    fn key(i: u64) -> Key {
        let mut k = [0u8; 32];
        k[..8].copy_from_slice(&i.to_le_bytes());
        k
    }

    fn sys() -> Arc<EpochSys> {
        EpochSys::format(
            PmemPool::new(PmemConfig::strict_for_test(64 << 20)),
            EsysConfig::default(),
        )
    }

    #[test]
    fn put_get_remove_roundtrip() {
        let s = sys();
        let m = MontageHashMap::<Key>::new(s.clone(), 1, 64);
        let tid = s.register_thread();
        assert!(!m.put(tid, key(1), b"one"));
        assert_eq!(m.get_owned(tid, &key(1)).unwrap(), b"one");
        assert!(m.put(tid, key(1), b"ONE"), "second put reports replacement");
        assert_eq!(m.get_owned(tid, &key(1)).unwrap(), b"ONE");
        assert!(m.remove(tid, &key(1)));
        assert!(m.get_owned(tid, &key(1)).is_none());
        assert!(!m.remove(tid, &key(1)));
    }

    #[test]
    fn update_with_different_size_value() {
        let s = sys();
        let m = MontageHashMap::<Key>::new(s.clone(), 1, 64);
        let tid = s.register_thread();
        m.put(tid, key(1), b"short");
        m.put(tid, key(1), b"a much longer value than before");
        assert_eq!(
            m.get_owned(tid, &key(1)).unwrap(),
            b"a much longer value than before"
        );
        m.put(tid, key(1), b"s");
        assert_eq!(m.get_owned(tid, &key(1)).unwrap(), b"s");
    }

    #[test]
    fn insert_does_not_overwrite() {
        let s = sys();
        let m = MontageHashMap::<Key>::new(s.clone(), 1, 64);
        let tid = s.register_thread();
        assert!(m.insert(tid, key(1), b"first"));
        assert!(!m.insert(tid, key(1), b"second"));
        assert_eq!(m.get_owned(tid, &key(1)).unwrap(), b"first");
    }

    #[test]
    fn len_is_consistent() {
        let s = sys();
        let m = MontageHashMap::<Key>::new(s.clone(), 1, 16);
        let tid = s.register_thread();
        for i in 0..100 {
            m.put(tid, key(i), b"v");
        }
        assert_eq!(m.len(), 100);
        for i in 0..50 {
            m.remove(tid, &key(i));
        }
        assert_eq!(m.len(), 50);
    }

    #[test]
    fn concurrent_disjoint_writers() {
        let s = sys();
        let m = Arc::new(MontageHashMap::<Key>::new(s.clone(), 1, 256));
        let mut handles = vec![];
        for t in 0..4u64 {
            let m = m.clone();
            let s = s.clone();
            handles.push(std::thread::spawn(move || {
                let tid = s.register_thread();
                for i in 0..500 {
                    m.put(tid, key(t * 10_000 + i), &t.to_le_bytes());
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(m.len(), 2000);
        let tid = s.register_thread();
        for t in 0..4u64 {
            for i in 0..500 {
                assert_eq!(
                    m.get_owned(tid, &key(t * 10_000 + i)).unwrap(),
                    t.to_le_bytes()
                );
            }
        }
    }

    #[test]
    fn concurrent_same_keys_last_writer_wins() {
        let s = sys();
        let m = Arc::new(MontageHashMap::<Key>::new(s.clone(), 1, 64));
        let mut handles = vec![];
        for t in 0..4u64 {
            let m = m.clone();
            let s = s.clone();
            handles.push(std::thread::spawn(move || {
                let tid = s.register_thread();
                for i in 0..200 {
                    m.put(tid, key(i % 10), &(t * 1000 + i).to_le_bytes());
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(m.len(), 10);
        let tid = s.register_thread();
        for i in 0..10 {
            assert!(m.get_owned(tid, &key(i)).is_some());
        }
    }

    #[test]
    fn recovery_restores_synced_contents() {
        let s = sys();
        let m = MontageHashMap::<Key>::new(s.clone(), 1, 64);
        let tid = s.register_thread();
        for i in 0..50 {
            m.put(tid, key(i), format!("value-{i}").as_bytes());
        }
        for i in 0..10 {
            m.remove(tid, &key(i));
        }
        m.put(tid, key(20), b"updated");
        s.sync();
        let rec = montage::recovery::recover(s.pool().crash(), EsysConfig::default(), 4);
        let m2 = MontageHashMap::<Key>::recover(rec.esys.clone(), 1, 64, &rec);
        let tid2 = rec.esys.register_thread();
        assert_eq!(m2.len(), 40);
        for i in 0..10 {
            assert!(
                m2.get_owned(tid2, &key(i)).is_none(),
                "removed key {i} came back"
            );
        }
        assert_eq!(m2.get_owned(tid2, &key(20)).unwrap(), b"updated");
        for i in 21..50 {
            assert_eq!(
                m2.get_owned(tid2, &key(i)).unwrap(),
                format!("value-{i}").as_bytes()
            );
        }
    }

    #[test]
    fn unsynced_updates_roll_back_to_prior_value() {
        let s = sys();
        let m = MontageHashMap::<Key>::new(s.clone(), 1, 64);
        let tid = s.register_thread();
        m.put(tid, key(1), b"old");
        s.sync();
        m.put(tid, key(1), b"new"); // never synced
        let rec = montage::recovery::recover(s.pool().crash(), EsysConfig::default(), 1);
        let m2 = MontageHashMap::<Key>::recover(rec.esys.clone(), 1, 64, &rec);
        let tid2 = rec.esys.register_thread();
        assert_eq!(m2.get_owned(tid2, &key(1)).unwrap(), b"old");
    }

    #[test]
    fn map_usable_after_recovery() {
        let s = sys();
        let m = MontageHashMap::<Key>::new(s.clone(), 1, 64);
        let tid = s.register_thread();
        m.put(tid, key(1), b"a");
        s.sync();
        let rec = montage::recovery::recover(s.pool().crash(), EsysConfig::default(), 1);
        let m2 = MontageHashMap::<Key>::recover(rec.esys.clone(), 1, 64, &rec);
        let tid2 = rec.esys.register_thread();
        m2.put(tid2, key(2), b"b");
        m2.put(tid2, key(1), b"a2");
        assert_eq!(m2.get_owned(tid2, &key(1)).unwrap(), b"a2");
        assert_eq!(m2.get_owned(tid2, &key(2)).unwrap(), b"b");
        assert_eq!(m2.len(), 2);
    }
}
