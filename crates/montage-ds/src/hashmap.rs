//! The Montage hashmap (paper Fig. 2), grown into an **online-resizable**
//! two-level bucket directory (Clevel-style, cf. memento's `clevel.rs`):
//! a lock-per-bucket chained map whose buckets, chains and locks are all
//! transient; the persistent state is a bag of key/value payloads plus —
//! while a resize is in flight — a tiny set of *resize metadata* payloads.
//!
//! ## Resize protocol
//!
//! Any thread that observes the load factor over threshold installs a new
//! bucket level (2× capacity) with a single directory CAS — no
//! stop-the-world, no global lock. The directory then holds two levels:
//!
//! * `prev` — the old table, draining; each bucket carries a `sealed` flag;
//! * `curr` — the new table, where every operation lands.
//!
//! Buckets migrate incrementally: every *write* first seals + drains its
//! key's old bucket (help-on-lookup), then drains a couple more from a
//! shared cursor so the resize finishes even under skewed traffic. A sealed
//! bucket is empty forever; writers that catch a bucket mid-seal retry off
//! a fresh directory snapshot. Reads never persist anything: they check the
//! unsealed old bucket first (an unsealed bucket still holds *all* of its
//! keys, because writers seal before inserting), then the new level.
//!
//! ## Durability of the resize itself
//!
//! Montage's epoch buffer makes resize metadata ordinary payloads:
//!
//! * **descriptor install** — one `pnew` of a 32-byte descriptor
//!   `{seq, old_cap, new_cap, phase: MIGRATING}` in its own epoch window;
//! * **per-bucket migration mark** — a 24-byte `pnew` per sealed bucket;
//! * **level retirement** — one epoch window flips the descriptor's phase
//!   to `DONE` (`set_bytes`, same uid — exactly one durable version at any
//!   cut) and `pdelete`s every mark plus the prior geometry descriptor.
//!
//! Recovery rolls forward deterministically: the surviving descriptor with
//! the highest seq fixes the directory capacity (key payloads are geometry-
//! independent, so rebuilding at the target capacity *completes* the
//! migration); stale marks and superseded descriptors are reaped and a
//! single `DONE` geometry descriptor is rewritten. A cut that missed the
//! descriptor's epoch recovers the pre-resize geometry — either way every
//! surviving key is reachable and no bucket recovers half-migrated.
//!
//! Payload layout: the key bytes (fixed-size `K: Copy`) followed by the
//! value bytes. Metadata payloads use `tag | META_TAG_BIT` so they never
//! collide with data payloads of the same map.

use std::hash::{Hash, Hasher};
use std::sync::Arc;

use crossbeam::epoch::{self, Atomic, Owned};
use montage::sync::{uninstrumented as raw, AtomicBool, AtomicUsize, Mutex, Ordering};
use montage::{EpochSys, PHandle, RecoveredState, ThreadId};
use pmem::PmemFault;

/// Metadata payloads (resize descriptors, migration marks) are tagged
/// `tag | META_TAG_BIT`, keeping them disjoint from the map's data payloads
/// while sharing its pool. User tags must stay below this bit.
pub const META_TAG_BIT: u16 = 0x8000;

/// Default resize trigger: average chain length (len / buckets) above this
/// installs a new level.
pub const DEFAULT_MAX_LOAD: usize = 4;

/// Old buckets each write drains from the shared cursor, beyond its own
/// key's bucket — the amortization that finishes a resize under any
/// traffic shape.
const MIGRATE_BATCH: usize = 2;

const META_MAGIC: u32 = 0x525A_4431; // "RZD1"
const KIND_DESCRIPTOR: u8 = 1;
const KIND_MARK: u8 = 2;
const PHASE_MIGRATING: u8 = 0;
const PHASE_DONE: u8 = 1;
const DESC_BYTES: usize = 32;
const MARK_BYTES: usize = 24;

/// A decoded resize descriptor payload.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ResizeDescriptor {
    pub seq: u64,
    pub old_cap: u64,
    pub new_cap: u64,
    pub done: bool,
}

fn encode_descriptor(d: &ResizeDescriptor) -> [u8; DESC_BYTES] {
    let mut b = [0u8; DESC_BYTES];
    b[..4].copy_from_slice(&META_MAGIC.to_le_bytes());
    b[4] = KIND_DESCRIPTOR;
    b[5] = if d.done { PHASE_DONE } else { PHASE_MIGRATING };
    b[8..16].copy_from_slice(&d.seq.to_le_bytes());
    b[16..24].copy_from_slice(&d.old_cap.to_le_bytes());
    b[24..32].copy_from_slice(&d.new_cap.to_le_bytes());
    b
}

fn decode_descriptor(b: &[u8]) -> Option<ResizeDescriptor> {
    if b.len() != DESC_BYTES || b[..4] != META_MAGIC.to_le_bytes() || b[4] != KIND_DESCRIPTOR {
        return None;
    }
    Some(ResizeDescriptor {
        seq: u64::from_le_bytes(b[8..16].try_into().unwrap()),
        old_cap: u64::from_le_bytes(b[16..24].try_into().unwrap()),
        new_cap: u64::from_le_bytes(b[24..32].try_into().unwrap()),
        done: b[5] == PHASE_DONE,
    })
}

fn encode_mark(seq: u64, bucket: u64) -> [u8; MARK_BYTES] {
    let mut b = [0u8; MARK_BYTES];
    b[..4].copy_from_slice(&META_MAGIC.to_le_bytes());
    b[4] = KIND_MARK;
    b[8..16].copy_from_slice(&seq.to_le_bytes());
    b[16..24].copy_from_slice(&bucket.to_le_bytes());
    b
}

fn decode_mark(b: &[u8]) -> Option<(u64, u64)> {
    if b.len() != MARK_BYTES || b[..4] != META_MAGIC.to_le_bytes() || b[4] != KIND_MARK {
        return None;
    }
    Some((
        u64::from_le_bytes(b[8..16].try_into().unwrap()),
        u64::from_le_bytes(b[16..24].try_into().unwrap()),
    ))
}

/// One chain entry: transient key copy (fast compares without touching NVM)
/// plus the indirection to the current payload version (paper Sec. 3.1: a
/// single transient pointer per payload makes handle replacement trivial).
struct Entry<K> {
    key: K,
    payload: PHandle<[u8]>,
}

struct Bucket<K> {
    chain: Mutex<Vec<Entry<K>>>,
    /// Set (under the chain lock) once this bucket has been drained into a
    /// newer level. A sealed bucket never holds entries again; writers that
    /// lock one retry from a fresh directory snapshot.
    sealed: AtomicBool,
}

struct Table<K> {
    buckets: Box<[Bucket<K>]>,
}

impl<K> Table<K> {
    fn new(nbuckets: usize) -> Arc<Table<K>> {
        Arc::new(Table {
            buckets: (0..nbuckets)
                .map(|_| Bucket {
                    chain: Mutex::new(Vec::new()),
                    sealed: AtomicBool::new(false),
                })
                .collect(),
        })
    }
}

/// An in-flight resize: the draining level plus its durable bookkeeping.
struct ResizeState<K> {
    seq: u64,
    prev: Arc<Table<K>>,
    next: Arc<Table<K>>,
    /// Durable descriptor handle (phase MIGRATING until retirement).
    desc: PHandle<[u8]>,
    /// Durable per-bucket migration marks, reaped at retirement.
    marks: Mutex<Vec<PHandle<[u8]>>>,
    /// Old buckets not yet sealed; hitting zero retires the level.
    pending: AtomicUsize,
    /// Shared drain cursor for the amortized migration batches.
    cursor: AtomicUsize,
}

/// One published directory snapshot: the active level, plus the draining
/// level while a resize is in flight. Immutable once published; swapped
/// with a CAS and reclaimed through crossbeam-epoch.
struct Dir<K> {
    curr: Arc<Table<K>>,
    resize: Option<Arc<ResizeState<K>>>,
}

/// A buffered-persistent hash map with per-bucket locking and lock-free
/// online resize (see the module docs for the protocol).
///
/// `K` must be a fixed-size `Copy` type (the paper pads string keys to
/// 32 bytes; use `[u8; 32]`). Values are byte slices of any length.
///
/// ```
/// use montage::{EpochSys, EsysConfig};
/// use montage_ds::{tags, MontageHashMap};
/// use pmem::{PmemConfig, PmemPool};
///
/// let esys = EpochSys::format(
///     PmemPool::new(PmemConfig::strict_for_test(16 << 20)),
///     EsysConfig::default(),
/// );
/// let tid = esys.register_thread();
/// let map = MontageHashMap::<u64>::new(esys.clone(), tags::HASHMAP, 64);
/// map.put(tid, 7, b"value");
/// assert_eq!(map.get_owned(tid, &7).unwrap(), b"value");
/// esys.sync(); // durable
/// ```
pub struct MontageHashMap<K> {
    esys: Arc<EpochSys>,
    tag: u16,
    meta_tag: u16,
    dir: Atomic<Dir<K>>,
    len: raw::AtomicUsize,
    /// Average chain length that triggers a resize.
    max_load: usize,
    /// Monotone resize sequence (also seeds recovery's rewritten geometry).
    next_seq: raw::AtomicU64,
    /// Completed (retired) resizes since construction/recovery.
    resizes: raw::AtomicUsize,
    /// The durable `DONE` geometry descriptor for the current capacity,
    /// pdeleted when the next resize retires. `None` until the first
    /// resize completes (a never-resized map needs no geometry record).
    geometry: Mutex<Option<PHandle<[u8]>>>,
}

// SAFETY: the directory is only touched under crossbeam-epoch guards and
// all interior mutability goes through atomics or per-bucket locks, so with
// `K: Send + Sync` the map as a whole is safe to share across threads.
unsafe impl<K: Send + Sync> Send for MontageHashMap<K> {}
unsafe impl<K: Send + Sync> Sync for MontageHashMap<K> {}

impl<K> Drop for MontageHashMap<K> {
    fn drop(&mut self) {
        // SAFETY: `&mut self` means no other thread holds a guard into this
        // map; the single published Dir box is exclusively ours to free.
        unsafe {
            let g = epoch::unprotected();
            // ord(acquire): the directory pointer publishes the level arrays it
            // points at; pairs with the Release side of the install CASes.
            let d = self.dir.load(Ordering::Acquire, g);
            if !d.is_null() {
                drop(d.into_owned());
            }
        }
    }
}

impl<K: Copy + Eq + Hash + Send + Sync> MontageHashMap<K> {
    /// Creates a map with `nbuckets` initial transient buckets and the
    /// default resize threshold ([`DEFAULT_MAX_LOAD`]).
    pub fn new(esys: Arc<EpochSys>, tag: u16, nbuckets: usize) -> Self {
        Self::with_max_load(esys, tag, nbuckets, DEFAULT_MAX_LOAD)
    }

    /// Creates a map that installs a new level once the average chain
    /// length exceeds `max_load`.
    pub fn with_max_load(esys: Arc<EpochSys>, tag: u16, nbuckets: usize, max_load: usize) -> Self {
        assert!(nbuckets > 0 && max_load > 0);
        assert!(
            tag & META_TAG_BIT == 0,
            "user tags must leave the meta bit clear"
        );
        MontageHashMap {
            esys,
            tag,
            meta_tag: tag | META_TAG_BIT,
            dir: Atomic::new(Dir {
                curr: Table::new(nbuckets),
                resize: None,
            }),
            len: raw::AtomicUsize::new(0),
            max_load,
            next_seq: raw::AtomicU64::new(1),
            resizes: raw::AtomicUsize::new(0),
            geometry: Mutex::new(None),
        }
    }

    /// Rebuilds the transient index from recovered payloads, using one
    /// rebuild thread per shard (the paper's parallel recovery).
    ///
    /// Resize metadata rolls forward: the surviving descriptor with the
    /// highest seq fixes the directory capacity (never below `nbuckets`),
    /// which *completes* any in-flight migration — payloads carry no
    /// geometry, so re-inserting them at the target capacity is the whole
    /// remaining work. Superseded descriptors and stale marks are reaped
    /// and one `DONE` geometry descriptor is rewritten, so a second crash
    /// lands on the same deterministic state.
    pub fn recover(esys: Arc<EpochSys>, tag: u16, nbuckets: usize, rec: &RecoveredState) -> Self {
        let meta_tag = tag | META_TAG_BIT;
        // Pass 1: resize metadata → target capacity + handles to reap.
        let mut best: Option<ResizeDescriptor> = None;
        let mut meta_handles: Vec<PHandle<[u8]>> = Vec::new();
        let mut stale_marks = 0usize;
        for item in rec.shards.iter().flatten().filter(|it| it.tag == meta_tag) {
            meta_handles.push(item.handle());
            let Some(desc) = rec.with_bytes(item, decode_descriptor) else {
                if rec.with_bytes(item, decode_mark).is_some() {
                    stale_marks += 1;
                }
                continue;
            };
            if best.is_none_or(|b| desc.seq > b.seq) {
                best = Some(desc);
            }
        }
        let _ = stale_marks; // informational; marks are advisory on recovery
        let cap = best
            .map(|d| (d.new_cap as usize).max(nbuckets))
            .unwrap_or(nbuckets);
        let next_seq = best.map(|d| d.seq + 1).unwrap_or(1);

        let map = Self::new(esys, tag, cap);
        // ord(counter): recovery-time only; no concurrent readers yet.
        map.next_seq.store(next_seq, Ordering::Relaxed);

        // Pass 2: rebuild the data index at the rolled-forward capacity.
        {
            let g = epoch::pin();
            // SAFETY: the directory pointer is never null after new().
            // ord(acquire): the directory pointer publishes the level arrays it
            // points at; pairs with the Release side of the install CASes.
            let dir = unsafe { map.dir.load(Ordering::Acquire, &g).deref() };
            std::thread::scope(|s| {
                for shard in &rec.shards {
                    s.spawn(|| {
                        for item in shard.iter().filter(|it| it.tag == tag) {
                            let key = rec.with_bytes(item, |b| {
                                let mut k = std::mem::MaybeUninit::<K>::uninit();
                                // SAFETY: the payload starts with a valid K, and
                                // `b` covers at least size_of::<K>() bytes.
                                // lint: allow(raw-write): copies pool bytes into a transient stack value, not into the pool
                                unsafe {
                                    std::ptr::copy_nonoverlapping(
                                        b.as_ptr(),
                                        k.as_mut_ptr() as *mut u8,
                                        std::mem::size_of::<K>(),
                                    );
                                    k.assume_init()
                                }
                            });
                            let idx = Self::index_in(&key, dir.curr.buckets.len());
                            let mut chain = dir.curr.buckets[idx].chain.lock();
                            debug_assert!(
                                !chain.iter().any(|e| e.key == key),
                                "duplicate key in recovered payload set"
                            );
                            chain.push(Entry {
                                key,
                                payload: item.handle(),
                            });
                            // ord(counter): size estimate only.
                            map.len.fetch_add(1, Ordering::Relaxed);
                        }
                    });
                }
            });
        }

        // Pass 3: reap stale metadata and rewrite one DONE geometry record,
        // so the rolled-forward capacity survives the *next* crash too.
        if !meta_handles.is_empty() {
            let tid = map.esys.register_thread();
            {
                let g = map.esys.begin_op(tid);
                for h in meta_handles {
                    let _ = map.esys.pdelete(&g, h);
                }
                let fresh = encode_descriptor(&ResizeDescriptor {
                    seq: next_seq,
                    old_cap: cap as u64,
                    new_cap: cap as u64,
                    done: true,
                });
                let gh = map.esys.pnew_bytes(&g, meta_tag, &fresh);
                *map.geometry.lock() = Some(gh);
            }
            // ord(counter): recovery-time only; no concurrent readers yet.
            map.next_seq.store(next_seq + 1, Ordering::Relaxed);
            map.esys.unregister_thread(tid);
        }
        map
    }

    pub fn esys(&self) -> &Arc<EpochSys> {
        &self.esys
    }

    #[inline]
    fn index_in(key: &K, nbuckets: usize) -> usize {
        let mut h = std::collections::hash_map::DefaultHasher::new();
        key.hash(&mut h);
        (h.finish() as usize) % nbuckets
    }

    fn encode(&self, key: &K, value: &[u8]) -> Vec<u8> {
        let ksize = std::mem::size_of::<K>();
        let mut buf = vec![0u8; ksize + value.len()];
        // SAFETY: `buf` holds `ksize` bytes and K is plain data.
        // lint: allow(raw-write): serializes the key into a transient Vec; the pool copy goes through pnew_bytes
        unsafe {
            std::ptr::copy_nonoverlapping(key as *const K as *const u8, buf.as_mut_ptr(), ksize);
        }
        buf[ksize..].copy_from_slice(value);
        buf
    }

    // ---- resize machinery ------------------------------------------------

    /// Seals and drains old bucket `oi` into the resize's target level.
    /// Whoever wins the seal persists the bucket's migration mark and, on
    /// the last bucket, retires the level.
    fn migrate_bucket(&self, tid: ThreadId, rs: &ResizeState<K>, oi: usize) {
        let bucket = &rs.prev.buckets[oi];
        // ord(acquire): pairs with the seal publish in `migrate_bucket`; a
        // sealed bucket's entries are reached via the target chain locks.
        if bucket.sealed.load(Ordering::Acquire) {
            return;
        }
        {
            let mut chain = bucket.chain.lock();
            // ord(relaxed): re-check under the chain lock; the lock orders it.
            if bucket.sealed.load(Ordering::Relaxed) {
                return; // lost the race while waiting for the lock
            }
            for e in chain.drain(..) {
                let ni = Self::index_in(&e.key, rs.next.buckets.len());
                rs.next.buckets[ni].chain.lock().push(e);
            }
            // ord(publish): seals the drained bucket; racers that observe it go
            // to the next level instead of the emptied chain.
            bucket.sealed.store(true, Ordering::Release);
        }
        // The durable migration mark: an ordinary buffered payload. Crash
        // cuts may or may not retain it; recovery only needs the descriptor
        // (marks are the observable protocol for the crash sweeps).
        {
            let g = self.esys.begin_op(tid);
            let mh = self
                .esys
                .pnew_bytes(&g, self.meta_tag, &encode_mark(rs.seq, oi as u64));
            rs.marks.lock().push(mh);
        }
        // ord(acqrel): the last decrementer must observe every other
        // migrator's seal before retiring the level; the release side
        // publishes our own bucket's drain.
        if rs.pending.fetch_sub(1, Ordering::AcqRel) == 1 {
            self.retire_level(tid, rs);
        }
    }

    /// Drains up to `n` not-yet-migrated old buckets off the shared cursor.
    fn drain_some(&self, tid: ThreadId, rs: &ResizeState<K>, n: usize) {
        for _ in 0..n {
            // ord(relaxed): a work-claim ticket; duplicate claims are benign
            // because `migrate_bucket` is idempotent under the seal.
            let oi = rs.cursor.fetch_add(1, Ordering::Relaxed);
            if oi >= rs.prev.buckets.len() {
                return;
            }
            self.migrate_bucket(tid, rs, oi);
        }
    }

    /// Every old bucket is sealed: flip the descriptor to DONE and reap the
    /// marks + the previous geometry record in one epoch window, then
    /// publish the single-level directory.
    fn retire_level(&self, tid: ThreadId, rs: &ResizeState<K>) {
        let new_geom = {
            let g = self.esys.begin_op(tid);
            let done = self
                .esys
                .set_bytes(&g, rs.desc, |b| b[5] = PHASE_DONE)
                .expect("retirer is the only descriptor writer");
            for m in rs.marks.lock().drain(..) {
                let _ = self.esys.pdelete(&g, m);
            }
            if let Some(old) = self.geometry.lock().take() {
                let _ = self.esys.pdelete(&g, old);
            }
            done
        };
        *self.geometry.lock() = Some(new_geom);

        let guard = epoch::pin();
        // ord(acquire): the directory pointer publishes the level arrays it
        // points at; pairs with the Release side of the install CASes.
        let cur = self.dir.load(Ordering::Acquire, &guard);
        // SAFETY: directory pointers are never null and the guard pins them.
        let cur_ref = unsafe { cur.deref() };
        debug_assert!(
            cur_ref.resize.as_ref().is_some_and(|r| r.seq == rs.seq),
            "retiring a resize that is not the active one"
        );
        let stable = Owned::new(Dir {
            curr: rs.next.clone(),
            resize: None,
        })
        .into_shared(&guard);
        match self
            .dir
            // ord(acqrel): installing the post-resize directory publishes the
            // merged level; the acquire side orders it after the losing racers.
            .compare_exchange(cur, stable, Ordering::AcqRel, Ordering::Acquire, &guard)
        {
            Ok(_) => {
                // SAFETY: `cur` is unlinked; later pins cannot reach it.
                unsafe { guard.defer_destroy(cur) };
            }
            Err(_) => {
                // Install is gated on `resize: None`, so nobody can have
                // swapped the directory under an active resize.
                unreachable!("directory changed under an active resize");
            }
        }
        // ord(counter): stats tally.
        self.resizes.fetch_add(1, Ordering::Relaxed);
    }

    /// Observed over-threshold load: persist a MIGRATING descriptor and try
    /// to install the two-level directory. Losing the install race deletes
    /// the descriptor again (both contenders grow to the same capacity, so
    /// recovery is indifferent to which survives a crash between the two).
    fn try_install_resize(&self, tid: ThreadId) {
        let guard = epoch::pin();
        // ord(acquire): the directory pointer publishes the level arrays it
        // points at; pairs with the Release side of the install CASes.
        let cur = self.dir.load(Ordering::Acquire, &guard);
        // SAFETY: directory pointers are never null and the guard pins them.
        let cur_ref = unsafe { cur.deref() };
        if cur_ref.resize.is_some() {
            return; // one resize at a time
        }
        let old_cap = cur_ref.curr.buckets.len();
        let new_cap = old_cap * 2;
        // ord(counter): resize sequence handout; uniqueness, not ordering.
        let seq = self.next_seq.fetch_add(1, Ordering::Relaxed);
        let desc = {
            let g = self.esys.begin_op(tid);
            self.esys.pnew_bytes(
                &g,
                self.meta_tag,
                &encode_descriptor(&ResizeDescriptor {
                    seq,
                    old_cap: old_cap as u64,
                    new_cap: new_cap as u64,
                    done: false,
                }),
            )
        };
        let rs = Arc::new(ResizeState {
            seq,
            prev: cur_ref.curr.clone(),
            next: Table::new(new_cap),
            desc,
            marks: Mutex::new(Vec::with_capacity(old_cap)),
            pending: AtomicUsize::new(old_cap),
            cursor: AtomicUsize::new(0),
        });
        let two_level = Owned::new(Dir {
            curr: rs.next.clone(),
            resize: Some(rs),
        })
        .into_shared(&guard);
        match self
            .dir
            // ord(acqrel): installing the two-level directory publishes the fresh
            // next level and the resize descriptor to every racing op.
            .compare_exchange(cur, two_level, Ordering::AcqRel, Ordering::Acquire, &guard)
        {
            Ok(_) => {
                // SAFETY: `cur` is unlinked; later pins cannot reach it.
                unsafe { guard.defer_destroy(cur) };
            }
            Err(_) => {
                // Someone else resized first: our descriptor must not
                // outlive the attempt.
                let g = self.esys.begin_op(tid);
                let _ = self.esys.pdelete(&g, desc);
                // SAFETY: the losing Dir box was never published.
                unsafe { drop(two_level.into_owned()) };
            }
        }
    }

    /// Write-path preamble: returns the directory's current level after
    /// helping any in-flight resize past this key's old bucket (plus an
    /// amortized batch). The returned closure-scope guarantees: locking the
    /// returned level's bucket and finding it unsealed means the bucket
    /// holds every entry of this key's chain.
    fn writer_dir<'g>(&self, tid: ThreadId, key: &K, guard: &'g epoch::Guard) -> &'g Dir<K> {
        // SAFETY: directory pointers are never null and the guard pins them.
        // ord(acquire): the directory pointer publishes the level arrays it
        // points at; pairs with the Release side of the install CASes.
        let dir = unsafe { self.dir.load(Ordering::Acquire, guard).deref() };
        if let Some(rs) = &dir.resize {
            let oi = Self::index_in(key, rs.prev.buckets.len());
            self.migrate_bucket(tid, rs, oi);
            self.drain_some(tid, rs, MIGRATE_BATCH);
        }
        dir
    }

    /// Runs `f` under the key's bucket lock in the newest level, retrying
    /// across directory swaps (a sealed bucket means the snapshot is stale).
    fn with_bucket<R>(
        &self,
        tid: ThreadId,
        key: &K,
        mut f: impl FnMut(&mut Vec<Entry<K>>) -> R,
    ) -> R {
        loop {
            let guard = epoch::pin();
            let dir = self.writer_dir(tid, key, &guard);
            let idx = Self::index_in(key, dir.curr.buckets.len());
            let bucket = &dir.curr.buckets[idx];
            let mut chain = bucket.chain.lock();
            // ord(relaxed): re-check under the chain lock; the lock orders it.
            if bucket.sealed.load(Ordering::Relaxed) {
                continue; // a newer level drained this bucket; reload
            }
            return f(&mut chain);
        }
    }

    /// Drives any in-flight resize to completion (tests and benchmarks use
    /// this to measure steady-state layouts).
    pub fn finish_resize(&self, tid: ThreadId) {
        loop {
            let guard = epoch::pin();
            // SAFETY: directory pointers are never null; the guard pins them.
            // ord(acquire): the directory pointer publishes the level arrays it
            // points at; pairs with the Release side of the install CASes.
            let dir = unsafe { self.dir.load(Ordering::Acquire, &guard).deref() };
            let Some(rs) = &dir.resize else { return };
            for oi in 0..rs.prev.buckets.len() {
                self.migrate_bucket(tid, rs, oi);
            }
        }
    }

    /// Current bucket count of the active level.
    pub fn capacity(&self) -> usize {
        let guard = epoch::pin();
        // SAFETY: directory pointers are never null; the guard pins them.
        // ord(acquire): the directory pointer publishes the level arrays it
        // points at; pairs with the Release side of the install CASes.
        unsafe { self.dir.load(Ordering::Acquire, &guard).deref() }
            .curr
            .buckets
            .len()
    }

    /// Completed (retired) resizes since construction or recovery.
    pub fn resizes_completed(&self) -> usize {
        // ord(counter): stats tally.
        self.resizes.load(Ordering::Relaxed)
    }

    /// Whether a resize is currently in flight.
    pub fn resizing(&self) -> bool {
        let guard = epoch::pin();
        // SAFETY: directory pointers are never null; the guard pins them.
        // ord(acquire): the directory pointer publishes the level arrays it
        // points at; pairs with the Release side of the install CASes.
        unsafe { self.dir.load(Ordering::Acquire, &guard).deref() }
            .resize
            .is_some()
    }

    /// Post-write load check; installs a new level when over threshold.
    fn maybe_resize(&self, tid: ThreadId) {
        let guard = epoch::pin();
        // SAFETY: directory pointers are never null; the guard pins them.
        // ord(acquire): the directory pointer publishes the level arrays it
        // points at; pairs with the Release side of the install CASes.
        let dir = unsafe { self.dir.load(Ordering::Acquire, &guard).deref() };
        if dir.resize.is_none()
            && self.len.load(Ordering::Relaxed) > self.max_load * dir.curr.buckets.len()
        {
            drop(guard);
            self.try_install_resize(tid);
        }
    }

    // ---- operations ------------------------------------------------------

    /// Inserts or updates; returns `true` if the key already existed.
    pub fn put(&self, tid: ThreadId, key: K, value: &[u8]) -> bool {
        let ksize = std::mem::size_of::<K>();
        let existed = self.with_bucket(tid, &key, |chain| {
            let g = self.esys.begin_op(tid);
            if let Some(e) = chain.iter_mut().find(|e| e.key == key) {
                let same_len = self
                    .esys
                    .peek_bytes_unsafe(e.payload, |b| b.len() == ksize + value.len());
                if same_len {
                    // In-place (or copy-on-write) update through Montage
                    // `set`; the returned handle replaces the indirection.
                    e.payload = self
                        .esys
                        .set_bytes(&g, e.payload, |b| b[ksize..].copy_from_slice(value))
                        .expect("bucket lock orders epochs");
                } else {
                    // Size changed: same-uid replacement — the new payload
                    // takes over the old one's identity, so a crash cut
                    // anywhere in the op recovers exactly one version of the
                    // key (see `EpochSys::replace_bytes`).
                    e.payload = self
                        .esys
                        .replace_bytes(&g, e.payload, &self.encode(&key, value))
                        .expect("bucket lock orders epochs");
                }
                true
            } else {
                let h = self
                    .esys
                    .pnew_bytes(&g, self.tag, &self.encode(&key, value));
                chain.push(Entry { key, payload: h });
                // ord(counter): size estimate only.
                self.len.fetch_add(1, Ordering::Relaxed);
                false
            }
        });
        self.maybe_resize(tid);
        existed
    }

    /// Checked [`MontageHashMap::put`] for fault-injection runs: refuses to
    /// start on a crashed pool and reports a fault plan tripping
    /// mid-operation, so sweep workloads unwind instead of panicking.
    pub fn try_put(&self, tid: ThreadId, key: K, value: &[u8]) -> Result<bool, PmemFault> {
        self.esys.pool().check_fault()?;
        let existed = self.put(tid, key, value);
        self.esys.pool().check_fault()?;
        Ok(existed)
    }

    /// Checked [`MontageHashMap::remove`]; see [`MontageHashMap::try_put`].
    pub fn try_remove(&self, tid: ThreadId, key: &K) -> Result<bool, PmemFault> {
        self.esys.pool().check_fault()?;
        let existed = self.remove(tid, key);
        self.esys.pool().check_fault()?;
        Ok(existed)
    }

    /// Inserts only if absent; returns `false` if the key existed.
    pub fn insert(&self, tid: ThreadId, key: K, value: &[u8]) -> bool {
        let inserted = self.with_bucket(tid, &key, |chain| {
            if chain.iter().any(|e| e.key == key) {
                return false;
            }
            let g = self.esys.begin_op(tid);
            let h = self
                .esys
                .pnew_bytes(&g, self.tag, &self.encode(&key, value));
            chain.push(Entry { key, payload: h });
            // ord(counter): size estimate only.
            self.len.fetch_add(1, Ordering::Relaxed);
            true
        });
        if inserted {
            self.maybe_resize(tid);
        }
        inserted
    }

    /// Looks up `key`, applying `f` to the value bytes. Read-only: skips
    /// `BEGIN_OP`/`END_OP` per the paper (reads are invisible to recovery),
    /// never helps a migration, and synchronizes only on transient bucket
    /// locks. During a resize the unsealed old bucket is authoritative for
    /// its keys (writers seal before inserting into the new level).
    pub fn get<R>(&self, _tid: ThreadId, key: &K, f: impl FnOnce(&[u8]) -> R) -> Option<R> {
        let ksize = std::mem::size_of::<K>();
        let mut f = Some(f);
        loop {
            let guard = epoch::pin();
            // SAFETY: directory pointers are never null; the guard pins them.
            // ord(acquire): the directory pointer publishes the level arrays it
            // points at; pairs with the Release side of the install CASes.
            let dir = unsafe { self.dir.load(Ordering::Acquire, &guard).deref() };
            if let Some(rs) = &dir.resize {
                let ob = &rs.prev.buckets[Self::index_in(key, rs.prev.buckets.len())];
                // ord(acquire): pairs with the seal publish in `migrate_bucket`; a
                // sealed bucket's entries are reached via the target chain locks.
                if !ob.sealed.load(Ordering::Acquire) {
                    let chain = ob.chain.lock();
                    if !ob.sealed.load(Ordering::Relaxed) {
                        // Unsealed ⇒ this bucket still owns all of its keys.
                        let e = chain.iter().find(|e| e.key == *key);
                        return e.map(|e| {
                            self.esys
                                .peek_bytes_unsafe(e.payload, |b| (f.take().unwrap())(&b[ksize..]))
                        });
                    }
                    // Sealed while we waited: fall through to the new level.
                }
            }
            let bucket = &dir.curr.buckets[Self::index_in(key, dir.curr.buckets.len())];
            let chain = bucket.chain.lock();
            // ord(relaxed): re-check under the chain lock; the lock orders it.
            if bucket.sealed.load(Ordering::Relaxed) {
                continue; // stale snapshot: a newer level owns this key now
            }
            let e = chain.iter().find(|e| e.key == *key);
            return e.map(|e| {
                self.esys
                    .peek_bytes_unsafe(e.payload, |b| (f.take().unwrap())(&b[ksize..]))
            });
        }
    }

    /// Owned-value lookup.
    pub fn get_owned(&self, tid: ThreadId, key: &K) -> Option<Vec<u8>> {
        self.get(tid, key, |b| b.to_vec())
    }

    /// Removes `key`; returns `true` if it existed.
    pub fn remove(&self, tid: ThreadId, key: &K) -> bool {
        self.with_bucket(tid, key, |chain| {
            let Some(pos) = chain.iter().position(|e| e.key == *key) else {
                return false;
            };
            let g = self.esys.begin_op(tid);
            let e = chain.swap_remove(pos);
            self.esys
                .pdelete(&g, e.payload)
                .expect("bucket lock orders epochs");
            // ord(counter): size estimate only.
            self.len.fetch_sub(1, Ordering::Relaxed);
            true
        })
    }

    pub fn len(&self) -> usize {
        // ord(counter): size estimate only.
        self.len.load(Ordering::Relaxed)
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use montage::EsysConfig;
    use pmem::{PmemConfig, PmemPool};

    type Key = [u8; 32];

    fn key(i: u64) -> Key {
        let mut k = [0u8; 32];
        k[..8].copy_from_slice(&i.to_le_bytes());
        k
    }

    fn sys() -> Arc<EpochSys> {
        EpochSys::format(
            PmemPool::new(PmemConfig::strict_for_test(64 << 20)),
            EsysConfig::default(),
        )
    }

    #[test]
    fn put_get_remove_roundtrip() {
        let s = sys();
        let m = MontageHashMap::<Key>::new(s.clone(), 1, 64);
        let tid = s.register_thread();
        assert!(!m.put(tid, key(1), b"one"));
        assert_eq!(m.get_owned(tid, &key(1)).unwrap(), b"one");
        assert!(m.put(tid, key(1), b"ONE"), "second put reports replacement");
        assert_eq!(m.get_owned(tid, &key(1)).unwrap(), b"ONE");
        assert!(m.remove(tid, &key(1)));
        assert!(m.get_owned(tid, &key(1)).is_none());
        assert!(!m.remove(tid, &key(1)));
    }

    #[test]
    fn update_with_different_size_value() {
        let s = sys();
        let m = MontageHashMap::<Key>::new(s.clone(), 1, 64);
        let tid = s.register_thread();
        m.put(tid, key(1), b"short");
        m.put(tid, key(1), b"a much longer value than before");
        assert_eq!(
            m.get_owned(tid, &key(1)).unwrap(),
            b"a much longer value than before"
        );
        m.put(tid, key(1), b"s");
        assert_eq!(m.get_owned(tid, &key(1)).unwrap(), b"s");
    }

    #[test]
    fn insert_does_not_overwrite() {
        let s = sys();
        let m = MontageHashMap::<Key>::new(s.clone(), 1, 64);
        let tid = s.register_thread();
        assert!(m.insert(tid, key(1), b"first"));
        assert!(!m.insert(tid, key(1), b"second"));
        assert_eq!(m.get_owned(tid, &key(1)).unwrap(), b"first");
    }

    #[test]
    fn len_is_consistent() {
        let s = sys();
        let m = MontageHashMap::<Key>::new(s.clone(), 1, 16);
        let tid = s.register_thread();
        for i in 0..100 {
            m.put(tid, key(i), b"v");
        }
        assert_eq!(m.len(), 100);
        for i in 0..50 {
            m.remove(tid, &key(i));
        }
        assert_eq!(m.len(), 50);
    }

    #[test]
    fn resize_grows_capacity_and_preserves_contents() {
        let s = sys();
        let m = MontageHashMap::<Key>::with_max_load(s.clone(), 1, 4, 2);
        let tid = s.register_thread();
        for i in 0..100 {
            m.put(tid, key(i), format!("v{i}").as_bytes());
        }
        m.finish_resize(tid);
        assert!(
            m.resizes_completed() >= 2,
            "100 keys over a 4×2 trigger must resize repeatedly, got {}",
            m.resizes_completed()
        );
        assert!(m.capacity() > 4, "capacity grew: {}", m.capacity());
        assert_eq!(m.len(), 100);
        for i in 0..100 {
            assert_eq!(
                m.get_owned(tid, &key(i)).unwrap(),
                format!("v{i}").as_bytes(),
                "key {i} lost across resize"
            );
        }
        // Deletes of migrated keys work post-resize.
        for i in 0..20 {
            assert!(m.remove(tid, &key(i)));
        }
        assert_eq!(m.len(), 80);
    }

    #[test]
    fn eight_concurrent_writers_complete_two_resizes_without_loss() {
        // The acceptance shape: populate far past the trigger from 8
        // threads; every op must succeed and every key must be readable.
        let s = sys();
        let m = Arc::new(MontageHashMap::<Key>::with_max_load(s.clone(), 1, 8, 2));
        let mut handles = vec![];
        for t in 0..8u64 {
            let m = m.clone();
            let s = s.clone();
            handles.push(std::thread::spawn(move || {
                let tid = s.register_thread();
                for i in 0..250 {
                    m.put(tid, key(t * 100_000 + i), &t.to_le_bytes());
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        let tid = s.register_thread();
        m.finish_resize(tid);
        assert!(
            m.resizes_completed() >= 2,
            "2000 keys from 8 buckets: got {} resizes",
            m.resizes_completed()
        );
        assert_eq!(m.len(), 2000);
        for t in 0..8u64 {
            for i in 0..250 {
                assert_eq!(
                    m.get_owned(tid, &key(t * 100_000 + i)).unwrap(),
                    t.to_le_bytes(),
                    "writer {t} op {i} lost"
                );
            }
        }
    }

    #[test]
    fn concurrent_readers_during_resize_never_miss() {
        use std::sync::atomic::AtomicBool;
        let s = sys();
        let m = Arc::new(MontageHashMap::<Key>::with_max_load(s.clone(), 1, 4, 2));
        let tid0 = s.register_thread();
        for i in 0..64 {
            m.put(tid0, key(i), b"stable");
        }
        let stop = Arc::new(AtomicBool::new(false));
        let mut readers = vec![];
        for _ in 0..3 {
            let m = m.clone();
            let s = s.clone();
            let stop = stop.clone();
            readers.push(std::thread::spawn(move || {
                let tid = s.register_thread();
                let mut checks = 0u64;
                while !stop.load(Ordering::Relaxed) {
                    for i in 0..64 {
                        assert!(
                            m.get(tid, &key(i), |_| ()).is_some(),
                            "reader missed stable key {i} mid-resize"
                        );
                        checks += 1;
                    }
                }
                checks
            }));
        }
        // Writers push the map through several resizes under the readers.
        for i in 64..800 {
            m.put(tid0, key(i), b"x");
        }
        m.finish_resize(tid0);
        stop.store(true, Ordering::Relaxed);
        let checks: u64 = readers.into_iter().map(|h| h.join().unwrap()).sum();
        assert!(checks > 0);
        assert!(m.resizes_completed() >= 2);
    }

    #[test]
    fn concurrent_disjoint_writers() {
        let s = sys();
        let m = Arc::new(MontageHashMap::<Key>::new(s.clone(), 1, 256));
        let mut handles = vec![];
        for t in 0..4u64 {
            let m = m.clone();
            let s = s.clone();
            handles.push(std::thread::spawn(move || {
                let tid = s.register_thread();
                for i in 0..500 {
                    m.put(tid, key(t * 10_000 + i), &t.to_le_bytes());
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(m.len(), 2000);
        let tid = s.register_thread();
        for t in 0..4u64 {
            for i in 0..500 {
                assert_eq!(
                    m.get_owned(tid, &key(t * 10_000 + i)).unwrap(),
                    t.to_le_bytes()
                );
            }
        }
    }

    #[test]
    fn concurrent_same_keys_last_writer_wins() {
        let s = sys();
        let m = Arc::new(MontageHashMap::<Key>::new(s.clone(), 1, 64));
        let mut handles = vec![];
        for t in 0..4u64 {
            let m = m.clone();
            let s = s.clone();
            handles.push(std::thread::spawn(move || {
                let tid = s.register_thread();
                for i in 0..200 {
                    m.put(tid, key(i % 10), &(t * 1000 + i).to_le_bytes());
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(m.len(), 10);
        let tid = s.register_thread();
        for i in 0..10 {
            assert!(m.get_owned(tid, &key(i)).is_some());
        }
    }

    #[test]
    fn recovery_restores_synced_contents() {
        let s = sys();
        let m = MontageHashMap::<Key>::new(s.clone(), 1, 64);
        let tid = s.register_thread();
        for i in 0..50 {
            m.put(tid, key(i), format!("value-{i}").as_bytes());
        }
        for i in 0..10 {
            m.remove(tid, &key(i));
        }
        m.put(tid, key(20), b"updated");
        s.sync();
        let rec = montage::recovery::recover(s.pool().crash(), EsysConfig::default(), 4);
        let m2 = MontageHashMap::<Key>::recover(rec.esys.clone(), 1, 64, &rec);
        let tid2 = rec.esys.register_thread();
        assert_eq!(m2.len(), 40);
        for i in 0..10 {
            assert!(
                m2.get_owned(tid2, &key(i)).is_none(),
                "removed key {i} came back"
            );
        }
        assert_eq!(m2.get_owned(tid2, &key(20)).unwrap(), b"updated");
        for i in 21..50 {
            assert_eq!(
                m2.get_owned(tid2, &key(i)).unwrap(),
                format!("value-{i}").as_bytes()
            );
        }
    }

    #[test]
    fn unsynced_updates_roll_back_to_prior_value() {
        let s = sys();
        let m = MontageHashMap::<Key>::new(s.clone(), 1, 64);
        let tid = s.register_thread();
        m.put(tid, key(1), b"old");
        s.sync();
        m.put(tid, key(1), b"new"); // never synced
        let rec = montage::recovery::recover(s.pool().crash(), EsysConfig::default(), 1);
        let m2 = MontageHashMap::<Key>::recover(rec.esys.clone(), 1, 64, &rec);
        let tid2 = rec.esys.register_thread();
        assert_eq!(m2.get_owned(tid2, &key(1)).unwrap(), b"old");
    }

    #[test]
    fn map_usable_after_recovery() {
        let s = sys();
        let m = MontageHashMap::<Key>::new(s.clone(), 1, 64);
        let tid = s.register_thread();
        m.put(tid, key(1), b"a");
        s.sync();
        let rec = montage::recovery::recover(s.pool().crash(), EsysConfig::default(), 1);
        let m2 = MontageHashMap::<Key>::recover(rec.esys.clone(), 1, 64, &rec);
        let tid2 = rec.esys.register_thread();
        m2.put(tid2, key(2), b"b");
        m2.put(tid2, key(1), b"a2");
        assert_eq!(m2.get_owned(tid2, &key(1)).unwrap(), b"a2");
        assert_eq!(m2.get_owned(tid2, &key(2)).unwrap(), b"b");
        assert_eq!(m2.len(), 2);
    }

    #[test]
    fn recovery_rolls_resized_geometry_forward() {
        let s = sys();
        let m = MontageHashMap::<Key>::with_max_load(s.clone(), 1, 4, 2);
        let tid = s.register_thread();
        for i in 0..60 {
            m.put(tid, key(i), b"v");
        }
        m.finish_resize(tid);
        let grown = m.capacity();
        assert!(grown > 4);
        s.sync();
        let rec = montage::recovery::recover(s.pool().crash(), EsysConfig::default(), 2);
        let m2 = MontageHashMap::<Key>::recover(rec.esys.clone(), 1, 4, &rec);
        assert_eq!(
            m2.capacity(),
            grown,
            "synced DONE descriptor must fix the recovered capacity"
        );
        assert_eq!(m2.len(), 60);
        let tid2 = rec.esys.register_thread();
        for i in 0..60 {
            assert!(m2.get_owned(tid2, &key(i)).is_some(), "key {i} lost");
        }
        // Recovery rewrote a single clean geometry record: a second
        // crash-recover lands on the same capacity.
        rec.esys.sync();
        let rec2 = montage::recovery::recover(rec.esys.pool().crash(), EsysConfig::default(), 2);
        let m3 = MontageHashMap::<Key>::recover(rec2.esys.clone(), 1, 4, &rec2);
        assert_eq!(m3.capacity(), grown);
        assert_eq!(m3.len(), 60);
    }

    #[test]
    fn unsynced_resize_descriptor_recovers_old_geometry() {
        let s = sys();
        let m = MontageHashMap::<Key>::with_max_load(s.clone(), 1, 4, 2);
        let tid = s.register_thread();
        for i in 0..8 {
            m.put(tid, key(i), b"v");
        }
        s.sync(); // durable at the pre-resize geometry
        m.put(tid, key(8), b"v"); // trips the trigger, installs a descriptor
        assert!(m.resizing() || m.resizes_completed() > 0);
        // Crash without syncing: the descriptor's epoch never sealed.
        let rec = montage::recovery::recover(s.pool().crash(), EsysConfig::default(), 1);
        let m2 = MontageHashMap::<Key>::recover(rec.esys.clone(), 1, 4, &rec);
        assert_eq!(
            m2.capacity(),
            4,
            "unsynced descriptor must not grow the map"
        );
        assert_eq!(m2.len(), 8);
    }

    #[test]
    fn mid_resize_crash_recovers_every_synced_key() {
        // Install a resize, migrate only *some* buckets, sync, crash: the
        // recovered map must hold every synced key exactly once, at the
        // rolled-forward capacity.
        let s = sys();
        let m = MontageHashMap::<Key>::with_max_load(s.clone(), 1, 4, 2);
        let tid = s.register_thread();
        for i in 0..9 {
            m.put(tid, key(i), format!("v{i}").as_bytes());
        }
        // A resize is now in flight (or already done); leave it incomplete
        // by not calling finish_resize.
        s.sync();
        let rec = montage::recovery::recover(s.pool().crash(), EsysConfig::default(), 2);
        let m2 = MontageHashMap::<Key>::recover(rec.esys.clone(), 1, 4, &rec);
        assert_eq!(m2.len(), 9);
        assert!(!m2.resizing(), "recovery must not leave a resize in flight");
        let tid2 = rec.esys.register_thread();
        for i in 0..9 {
            assert_eq!(
                m2.get_owned(tid2, &key(i)).unwrap(),
                format!("v{i}").as_bytes()
            );
        }
    }
}
