//! The pool: working image, durable image, flush/fence, crash.

use std::alloc::{alloc_zeroed, dealloc, Layout};
use std::cell::RefCell;
use std::collections::{HashMap, HashSet};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

use parking_lot::Mutex;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use crate::config::{PmemConfig, PmemMode};
use crate::layout::{line_of, lines_spanned, POff, CACHE_LINE};
use crate::stats::PmemStats;

/// Unique id per pool instance, used to key thread-local write-back queues.
static NEXT_POOL_ID: AtomicU64 = AtomicU64::new(1);

thread_local! {
    /// Fast-mode per-thread count of unfenced `clwb`s per pool, so a fence
    /// is charged per line it actually drains (matching hardware, where the
    /// flush itself is asynchronous and the fence pays the wait). Keyed by
    /// pool id: the count bump on every buffered `clwb` is O(1), and a fence
    /// *removes* the pool's entry, so the map only ever holds pools with
    /// write-backs currently outstanding — it does not grow with the number
    /// of pools a process creates over its lifetime (bench loops allocate
    /// thousands).
    static PENDING_COUNT: RefCell<HashMap<u64, u64>> = RefCell::new(HashMap::new());
}

fn count_add(id: u64, n: u64) {
    PENDING_COUNT.with(|c| *c.borrow_mut().entry(id).or_insert(0) += n);
}

fn count_take(id: u64) -> u64 {
    PENDING_COUNT.with(|c| c.borrow_mut().remove(&id).unwrap_or(0))
}

struct Working {
    ptr: *mut u8,
    layout: Layout,
}

impl Drop for Working {
    fn drop(&mut self) {
        unsafe { dealloc(self.ptr, self.layout) };
    }
}

// SAFETY: the working image models shared physical memory; concurrent access
// discipline is the responsibility of the code running on top of it (exactly
// as with real DAX-mapped NVM). The pointer itself is never reallocated.
unsafe impl Send for Working {}
unsafe impl Sync for Working {}

struct Inner {
    id: u64,
    config: PmemConfig,
    stats: PmemStats,
    working: Working,
    /// Durable shadow image, present only in [`PmemMode::Strict`].
    durable: Option<Mutex<Box<[u8]>>>,
    /// Strict mode: lines `clwb`'d but not yet made durable by a fence.
    ///
    /// This set is **pool-global**, not per-thread: `CLWB` initiates an
    /// asynchronous write-back that completes regardless of who fences, and
    /// Montage's epoch protocol depends on exactly that — workers issue
    /// incremental write-backs and the background advancer's fence at the
    /// epoch boundary "waits for the writes-back to complete" (paper
    /// Sec. 3.2). A fence therefore drains every pending line. Lines that
    /// are *never* followed by any fence before a crash are still lost,
    /// which is the pessimistic direction tests need.
    ///
    /// Kept as a set: re-`clwb`ing a dirty line before the next fence is
    /// idempotent on hardware, so duplicates would only inflate the fence's
    /// drain work (`lines_drained` counts unique lines made durable).
    pending: Mutex<HashSet<u64>>,
}

/// A simulated persistent-memory pool. Cheap to clone (it is an `Arc`).
///
/// See the [crate docs](crate) for the semantics. All accessor methods take
/// offsets ([`POff`]); raw-pointer access is available via [`PmemPool::at`]
/// for code that needs atomics or in-place structs, with the same aliasing
/// obligations as real shared memory.
#[derive(Clone)]
pub struct PmemPool {
    inner: Arc<Inner>,
}

impl PmemPool {
    /// Allocates a fresh, zero-filled pool.
    pub fn new(config: PmemConfig) -> Self {
        assert!(config.size >= crate::ROOT_AREA_SIZE, "pool too small");
        assert_eq!(
            config.size % CACHE_LINE,
            0,
            "pool size must be line-aligned"
        );
        let layout = Layout::from_size_align(config.size, 4096).expect("pool layout");
        let ptr = unsafe { alloc_zeroed(layout) };
        assert!(!ptr.is_null(), "pool allocation failed");
        let durable = match config.mode {
            PmemMode::Strict => Some(Mutex::new(vec![0u8; config.size].into_boxed_slice())),
            PmemMode::Fast => None,
        };
        PmemPool {
            inner: Arc::new(Inner {
                id: NEXT_POOL_ID.fetch_add(1, Ordering::Relaxed),
                config,
                stats: PmemStats::default(),
                working: Working { ptr, layout },
                durable,
                pending: Mutex::new(HashSet::new()),
            }),
        }
    }

    /// Pool size in bytes.
    #[inline]
    pub fn size(&self) -> usize {
        self.inner.config.size
    }

    /// The pool's configuration.
    #[inline]
    pub fn config(&self) -> &PmemConfig {
        &self.inner.config
    }

    /// Persistence statistics.
    #[inline]
    pub fn stats(&self) -> &PmemStats {
        &self.inner.stats
    }

    #[inline]
    fn check(&self, off: POff, len: usize) {
        debug_assert!(
            (off.raw() as usize)
                .checked_add(len)
                .is_some_and(|end| end <= self.inner.config.size),
            "pmem access out of bounds: off={off:?} len={len}"
        );
    }

    /// Raw pointer to offset `off`, viewed as `T`.
    ///
    /// # Safety
    /// The caller must respect `T`'s alignment at `off`, stay in bounds, and
    /// coordinate concurrent access exactly as it would for shared memory.
    #[inline]
    pub unsafe fn at<T>(&self, off: POff) -> *mut T {
        self.check(off, std::mem::size_of::<T>());
        self.inner.working.ptr.add(off.raw() as usize).cast::<T>()
    }

    /// Reads a `Copy` value at `off`.
    ///
    /// # Safety
    /// As for [`PmemPool::at`]; additionally the bytes must be a valid `T`.
    #[inline]
    pub unsafe fn read<T: Copy>(&self, off: POff) -> T {
        self.at::<T>(off).read()
    }

    /// Writes a `Copy` value at `off` (store only; not persistent until
    /// flushed and fenced).
    ///
    /// # Safety
    /// As for [`PmemPool::at`].
    #[inline]
    pub unsafe fn write<T: Copy>(&self, off: POff, val: &T) {
        self.at::<T>(off).write(*val);
    }

    /// Copies `src` into the pool at `off`.
    pub fn write_bytes(&self, off: POff, src: &[u8]) {
        self.check(off, src.len());
        unsafe {
            std::ptr::copy_nonoverlapping(
                src.as_ptr(),
                self.inner.working.ptr.add(off.raw() as usize),
                src.len(),
            );
        }
    }

    /// Copies `dst.len()` bytes out of the pool at `off`.
    pub fn read_bytes(&self, off: POff, dst: &mut [u8]) {
        self.check(off, dst.len());
        unsafe {
            std::ptr::copy_nonoverlapping(
                self.inner.working.ptr.add(off.raw() as usize),
                dst.as_mut_ptr(),
                dst.len(),
            );
        }
    }

    /// An atomic `u64` view of the 8 bytes at `off` (must be 8-aligned).
    ///
    /// # Safety
    /// `off` must be 8-byte aligned and in bounds; all accesses to those
    /// bytes must go through atomics while this view is in use.
    #[inline]
    pub unsafe fn atomic_u64(&self, off: POff) -> &AtomicU64 {
        debug_assert_eq!(off.raw() % 8, 0, "atomic_u64 requires 8-byte alignment");
        &*(self.at::<u64>(off) as *const AtomicU64)
    }

    /// Models a dependent load that misses the CPU caches into NVM media.
    /// Pointer-chasing structures call this once per node dereference; it
    /// charges `media_read_ns` (a latency, not a bandwidth, cost).
    #[inline]
    pub fn touch(&self) {
        spin_ns(self.inner.config.latency.media_read_ns);
    }

    // ---- persistence primitives -------------------------------------------

    /// `CLWB`: schedule write-back of the cache line containing `off`.
    /// Durability is guaranteed only after a subsequent [`PmemPool::sfence`]
    /// from the same thread.
    #[inline]
    pub fn clwb(&self, off: POff) {
        self.check(off, 1);
        self.inner.stats.on_clwb();
        spin_ns(self.inner.config.latency.clwb_issue_ns);
        if self.inner.durable.is_some() {
            self.inner.pending.lock().insert(line_of(off.raw()));
        } else {
            count_add(self.inner.id, 1);
        }
    }

    /// `CLWB` every cache line in `[off, off+len)`. The issue latency for
    /// the whole range is charged in one spin (per-line spins would be
    /// dominated by timer overhead at nanosecond scales).
    pub fn clwb_range(&self, off: POff, len: usize) {
        if len == 0 {
            return;
        }
        self.check(off, len);
        let n = lines_spanned(off.raw(), len);
        let first = line_of(off.raw());
        if self.inner.durable.is_some() {
            let mut p = self.inner.pending.lock();
            for i in 0..n {
                p.insert(first + i);
            }
        } else {
            count_add(self.inner.id, n);
        }
        for _ in 0..n {
            self.inner.stats.on_clwb();
        }
        spin_ns(self.inner.config.latency.clwb_issue_ns * n);
    }

    /// `SFENCE`: drain this thread's pending write-backs to durable media.
    pub fn sfence(&self) {
        let lat = &self.inner.config.latency;
        let drained = if let Some(durable) = &self.inner.durable {
            let lines = std::mem::take(&mut *self.inner.pending.lock());
            let mut dur = durable.lock();
            for &line in &lines {
                self.drain_line(&mut dur, line);
            }
            lines.len() as u64
        } else {
            // Fast mode: drain the per-thread pending count.
            count_take(self.inner.id)
        };
        self.inner.stats.on_sfence(drained);
        spin_ns(lat.fence_base_ns + drained * (lat.fence_per_line_ns + lat.media_write_ns));
    }

    /// Convenience: `clwb_range` + `sfence`.
    pub fn persist_range(&self, off: POff, len: usize) {
        self.clwb_range(off, len);
        self.sfence();
    }

    fn drain_line(&self, durable: &mut [u8], line: u64) {
        let start = (line as usize) * CACHE_LINE;
        let end = (start + CACHE_LINE).min(self.inner.config.size);
        unsafe {
            std::ptr::copy_nonoverlapping(
                self.inner.working.ptr.add(start),
                durable.as_mut_ptr().add(start),
                end - start,
            );
        }
    }

    // ---- crash simulation --------------------------------------------------

    /// Simulates a whole-machine power failure and restart.
    ///
    /// Returns a new pool whose contents are exactly the durable image: only
    /// data that was `clwb`'d and fenced (plus chaos-mode spontaneous
    /// evictions) survives. Panics in [`PmemMode::Fast`], which has no
    /// durable image.
    ///
    /// All other threads must have stopped using the old pool; lingering
    /// writes after the crash point would be lost on real hardware too, but
    /// here they would race with the image copy.
    pub fn crash(&self) -> PmemPool {
        let durable = self
            .inner
            .durable
            .as_ref()
            .expect("crash() requires PmemMode::Strict");
        self.inner.stats.on_crash();

        let mut dur = durable.lock();
        // Chaos: arbitrary cache evictions may have persisted unflushed lines.
        let chaos = self.inner.config.chaos;
        if chaos.spontaneous_evict_permille > 0 {
            let crashes = self.inner.stats.crashes.load(Ordering::Relaxed);
            let mut rng =
                SmallRng::seed_from_u64(chaos.seed ^ crashes.wrapping_mul(0x9E3779B97F4A7C15));
            let nlines = self.inner.config.size / CACHE_LINE;
            for line in 0..nlines as u64 {
                if rng.gen_range(0..1000) < chaos.spontaneous_evict_permille as u32 {
                    self.drain_line(&mut dur, line);
                }
            }
        }

        let new = PmemPool::new(self.inner.config);
        new.write_bytes(POff::new(0), &dur);
        {
            let new_durable = new.inner.durable.as_ref().unwrap();
            new_durable.lock().copy_from_slice(&dur);
        }
        // Pending-but-unfenced flushes die with the machine.
        self.inner.pending.lock().clear();
        new
    }

    // ---- cross-process persistence ------------------------------------------

    /// Writes the **durable image** to a file, making persistence survive
    /// process exit (standing in for the file that a DAX mapping would be
    /// backed by). Strict mode only. Format: `"PMEMSNAP"` magic, size, image.
    pub fn save_to_file(&self, path: &std::path::Path) -> std::io::Result<()> {
        use std::io::Write;
        let durable = self
            .inner
            .durable
            .as_ref()
            .expect("save_to_file requires PmemMode::Strict");
        let dur = durable.lock();
        let mut f = std::io::BufWriter::new(std::fs::File::create(path)?);
        f.write_all(b"PMEMSNAP")?;
        f.write_all(&(self.inner.config.size as u64).to_le_bytes())?;
        f.write_all(&dur)?;
        f.flush()?;
        Ok(())
    }

    /// Loads a pool from a [`PmemPool::save_to_file`] snapshot. The restored
    /// pool starts from the snapshot in both images (as if freshly rebooted
    /// from that persistent state).
    pub fn load_from_file(path: &std::path::Path, config: PmemConfig) -> std::io::Result<PmemPool> {
        use std::io::Read;
        let mut f = std::io::BufReader::new(std::fs::File::open(path)?);
        let mut magic = [0u8; 8];
        f.read_exact(&mut magic)?;
        if &magic != b"PMEMSNAP" {
            return Err(std::io::Error::new(
                std::io::ErrorKind::InvalidData,
                "not a pmem snapshot",
            ));
        }
        let mut szb = [0u8; 8];
        f.read_exact(&mut szb)?;
        let size = u64::from_le_bytes(szb) as usize;
        if size != config.size {
            return Err(std::io::Error::new(
                std::io::ErrorKind::InvalidData,
                format!("snapshot is {size} B but config.size is {} B", config.size),
            ));
        }
        let mut image = vec![0u8; size];
        f.read_exact(&mut image)?;
        let pool = PmemPool::new(config);
        pool.write_bytes(POff::new(0), &image);
        if let Some(durable) = &pool.inner.durable {
            durable.lock().copy_from_slice(&image);
        }
        Ok(pool)
    }
}

/// Busy-wait for approximately `ns` nanoseconds (0 = free).
#[inline]
fn spin_ns(ns: u64) {
    if ns == 0 {
        return;
    }
    let start = Instant::now();
    while (start.elapsed().as_nanos() as u64) < ns {
        std::hint::spin_loop();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::ChaosConfig;

    fn strict_pool() -> PmemPool {
        PmemPool::new(PmemConfig::strict_for_test(1 << 20))
    }

    #[test]
    fn write_read_roundtrip() {
        let p = strict_pool();
        let off = POff::new(8192);
        unsafe { p.write(off, &0xDEADBEEFu64) };
        assert_eq!(unsafe { p.read::<u64>(off) }, 0xDEADBEEF);
    }

    #[test]
    fn unflushed_data_lost_on_crash() {
        let p = strict_pool();
        let off = POff::new(4096);
        unsafe { p.write(off, &42u64) };
        let p2 = p.crash();
        assert_eq!(
            unsafe { p2.read::<u64>(off) },
            0,
            "unflushed line must not survive"
        );
    }

    #[test]
    fn flushed_but_unfenced_data_lost_on_crash() {
        let p = strict_pool();
        let off = POff::new(4096);
        unsafe { p.write(off, &42u64) };
        p.clwb(off);
        // No sfence.
        let p2 = p.crash();
        assert_eq!(
            unsafe { p2.read::<u64>(off) },
            0,
            "clwb without fence is not durable"
        );
    }

    #[test]
    fn flushed_and_fenced_data_survives() {
        let p = strict_pool();
        let off = POff::new(4096);
        unsafe { p.write(off, &42u64) };
        p.persist_range(off, 8);
        let p2 = p.crash();
        assert_eq!(unsafe { p2.read::<u64>(off) }, 42);
    }

    #[test]
    fn flush_granularity_is_whole_lines() {
        let p = strict_pool();
        let a = POff::new(4096); // same line
        let b = POff::new(4096 + 32);
        unsafe {
            p.write(a, &1u64);
            p.write(b, &2u64);
        }
        p.persist_range(a, 8); // flushing a's line also captures b
        let p2 = p.crash();
        assert_eq!(unsafe { p2.read::<u64>(a) }, 1);
        assert_eq!(unsafe { p2.read::<u64>(b) }, 2);
    }

    #[test]
    fn fence_captures_value_at_fence_time() {
        let p = strict_pool();
        let off = POff::new(4096);
        unsafe { p.write(off, &1u64) };
        p.clwb(off);
        unsafe { p.write(off, &2u64) }; // re-dirty before the fence
        p.sfence();
        let p2 = p.crash();
        assert_eq!(unsafe { p2.read::<u64>(off) }, 2);
    }

    #[test]
    fn crash_preserves_durable_across_two_crashes() {
        let p = strict_pool();
        let off = POff::new(4096);
        unsafe { p.write(off, &7u64) };
        p.persist_range(off, 8);
        let p2 = p.crash();
        let p3 = p2.crash();
        assert_eq!(unsafe { p3.read::<u64>(off) }, 7);
    }

    #[test]
    fn any_threads_fence_drains_pending_clwbs() {
        // CLWB write-backs are asynchronous: a later fence from *any* thread
        // covers them (the epoch advancer's boundary fence relies on this).
        let p = strict_pool();
        let off = POff::new(4096);
        unsafe { p.write(off, &9u64) };
        p.clwb(off);
        let p_clone = p.clone();
        std::thread::spawn(move || p_clone.sfence()).join().unwrap();
        let p2 = p.crash();
        assert_eq!(unsafe { p2.read::<u64>(off) }, 9);
    }

    #[test]
    fn clwb_never_fenced_is_lost() {
        let p = strict_pool();
        let off = POff::new(4096);
        unsafe { p.write(off, &9u64) };
        std::thread::scope(|s| {
            let p = p.clone();
            s.spawn(move || p.clwb(off)); // flushing thread exits, no fence anywhere
        });
        let p2 = p.crash();
        assert_eq!(unsafe { p2.read::<u64>(off) }, 0);
    }

    #[test]
    fn repeated_clwbs_of_one_line_drain_once() {
        let p = strict_pool();
        let off = POff::new(4096);
        unsafe { p.write(off, &3u64) };
        for _ in 0..5 {
            p.clwb(off);
        }
        p.sfence();
        let snap = p.stats().snapshot();
        let clwbs = snap.clwbs;
        let drained = snap.lines_drained;
        assert_eq!(clwbs, 5, "every issued clwb is counted");
        assert_eq!(drained, 1, "the fence drains the dirty line once");
        let p2 = p.crash();
        assert_eq!(unsafe { p2.read::<u64>(off) }, 3);
    }

    #[test]
    fn stats_count_flushes_and_fences() {
        let p = strict_pool();
        let off = POff::new(4096);
        unsafe { p.write(off, &1u64) };
        p.clwb_range(off, 200); // 4 lines
        p.sfence();
        let snap = p.stats().snapshot();
        let clwbs = snap.clwbs;
        let fences = snap.sfences;
        let drained = snap.lines_drained;
        assert_eq!(clwbs, 4);
        assert_eq!(fences, 1);
        assert_eq!(drained, 4);
    }

    #[test]
    fn chaos_mode_may_persist_unflushed_lines() {
        let p = PmemPool::new(PmemConfig {
            size: 1 << 20,
            mode: PmemMode::Strict,
            latency: crate::LatencyModel::ZERO,
            chaos: ChaosConfig {
                spontaneous_evict_permille: 1000, // evict everything
                seed: 1,
            },
        });
        let off = POff::new(4096);
        unsafe { p.write(off, &5u64) };
        let p2 = p.crash();
        assert_eq!(
            unsafe { p2.read::<u64>(off) },
            5,
            "100% eviction persists all lines"
        );
    }

    #[test]
    fn fast_mode_counts_but_does_not_shadow() {
        let p = PmemPool::new(PmemConfig::default());
        let off = POff::new(4096);
        unsafe { p.write(off, &1u64) };
        p.persist_range(off, 8);
        assert_eq!(p.stats().snapshot().clwbs, 1);
    }

    #[test]
    fn atomic_view_is_shared_with_plain_writes() {
        let p = strict_pool();
        let off = POff::new(4096);
        let a = unsafe { p.atomic_u64(off) };
        a.store(11, Ordering::SeqCst);
        assert_eq!(unsafe { p.read::<u64>(off) }, 11);
    }

    #[test]
    fn snapshot_roundtrips_across_processes() {
        let dir = std::env::temp_dir().join(format!("pmem-snap-{}", std::process::id()));
        let _ = std::fs::create_dir_all(&dir);
        let path = dir.join("pool.img");

        let p = strict_pool();
        let off = POff::new(4096);
        unsafe { p.write(off, &0xC0FFEEu64) };
        p.persist_range(off, 8);
        unsafe { p.write(off.add(8), &1u64) }; // never persisted
        p.save_to_file(&path).unwrap();

        let p2 = PmemPool::load_from_file(&path, PmemConfig::strict_for_test(1 << 20)).unwrap();
        assert_eq!(unsafe { p2.read::<u64>(off) }, 0xC0FFEE);
        assert_eq!(
            unsafe { p2.read::<u64>(off.add(8)) },
            0,
            "snapshot holds durable image only"
        );
        // And the restored pool has normal crash semantics.
        unsafe { p2.write(off, &7u64) };
        let p3 = p2.crash();
        assert_eq!(unsafe { p3.read::<u64>(off) }, 0xC0FFEE);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn snapshot_rejects_wrong_geometry() {
        let dir = std::env::temp_dir().join(format!("pmem-snap2-{}", std::process::id()));
        let _ = std::fs::create_dir_all(&dir);
        let path = dir.join("pool.img");
        strict_pool().save_to_file(&path).unwrap();
        assert!(PmemPool::load_from_file(&path, PmemConfig::strict_for_test(2 << 20)).is_err());
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn fresh_pool_is_zeroed() {
        let p = strict_pool();
        let mut buf = [1u8; 256];
        p.read_bytes(POff::new(12345 & !63), &mut buf);
        assert!(buf.iter().all(|&b| b == 0));
    }
}
