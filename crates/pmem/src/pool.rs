//! The pool: working image, durable image, flush/fence, crash.

use std::alloc::{alloc_zeroed, dealloc, Layout};
use std::cell::RefCell;
use std::collections::{HashMap, HashSet};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

use parking_lot::{Condvar, Mutex};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use crate::config::{PmemConfig, PmemMode};
use crate::fault::PmemFault;
use crate::layout::{line_of, lines_spanned, POff, CACHE_LINE};
#[cfg(feature = "persist-san")]
use crate::san::{ProbeGuard, SanReport, SanState};
use crate::stats::PmemStats;

/// Unique id per pool instance, used to key thread-local write-back queues.
static NEXT_POOL_ID: AtomicU64 = AtomicU64::new(1);

thread_local! {
    /// Fast-mode per-thread count of unfenced `clwb`s per pool, so a fence
    /// is charged per line it actually drains (matching hardware, where the
    /// flush itself is asynchronous and the fence pays the wait). Keyed by
    /// pool id: the count bump on every buffered `clwb` is O(1), and a fence
    /// *removes* the pool's entry, so the map only ever holds pools with
    /// write-backs currently outstanding — it does not grow with the number
    /// of pools a process creates over its lifetime (bench loops allocate
    /// thousands).
    static PENDING_COUNT: RefCell<HashMap<u64, u64>> = RefCell::new(HashMap::new());
}

fn count_add(id: u64, n: u64) {
    PENDING_COUNT.with(|c| *c.borrow_mut().entry(id).or_insert(0) += n);
}

fn count_take(id: u64) -> u64 {
    PENDING_COUNT.with(|c| c.borrow_mut().remove(&id).unwrap_or(0))
}

struct Working {
    ptr: *mut u8,
    layout: Layout,
}

impl Drop for Working {
    fn drop(&mut self) {
        // SAFETY: `ptr` came from `alloc_zeroed(self.layout)` in
        // `PmemPool::new` and is freed exactly once (Working is owned by the
        // pool's Arc'd Inner).
        unsafe { dealloc(self.ptr, self.layout) };
    }
}

// SAFETY: the working image models shared physical memory; concurrent access
// discipline is the responsibility of the code running on top of it (exactly
// as with real DAX-mapped NVM). The pointer itself is never reallocated.
unsafe impl Send for Working {}
unsafe impl Sync for Working {}

/// Parking state for the stall fault plan
/// ([`crate::ChaosConfig::stall_at_event`]).
#[derive(Default)]
struct StallState {
    /// Set (once) by the thread whose event charge crossed the threshold;
    /// guarantees exactly one victim parks per pool.
    claimed: AtomicBool,
    flags: Mutex<StallFlags>,
    cv: Condvar,
}

#[derive(Default)]
struct StallFlags {
    /// A victim is currently parked inside `charge_events`.
    parked: bool,
    /// [`PmemPool::release_stalled`] was called (sticky; a victim arriving
    /// after the release never parks).
    released: bool,
}

struct Inner {
    id: u64,
    config: PmemConfig,
    stats: PmemStats,
    working: Working,
    /// Durable shadow image, present only in [`PmemMode::Strict`].
    durable: Option<Mutex<Box<[u8]>>>,
    /// Strict mode: lines `clwb`'d but not yet made durable by a fence.
    ///
    /// This set is **pool-global**, not per-thread: `CLWB` initiates an
    /// asynchronous write-back that completes regardless of who fences, and
    /// Montage's epoch protocol depends on exactly that — workers issue
    /// incremental write-backs and the background advancer's fence at the
    /// epoch boundary "waits for the writes-back to complete" (paper
    /// Sec. 3.2). A fence therefore drains every pending line. Lines that
    /// are *never* followed by any fence before a crash are still lost,
    /// which is the pessimistic direction tests need.
    ///
    /// Kept as a set: re-`clwb`ing a dirty line before the next fence is
    /// idempotent on hardware, so duplicates would only inflate the fence's
    /// drain work (`lines_drained` counts unique lines made durable).
    pending: Mutex<HashSet<u64>>,
    /// Running persistence-event count. Only advanced while the fault plan
    /// ([`crate::ChaosConfig::crash_at_event`]) is armed; see
    /// [`PmemPool::persistence_events`].
    events: AtomicU64,
    /// Set once the event count reaches the fault plan's crash point. From
    /// then on flushes and fences are dropped (the durable image is frozen)
    /// and the checked operations report [`PmemFault::Crashed`].
    poisoned: AtomicBool,
    /// Parking state for the stall fault plan; see
    /// [`crate::ChaosConfig::stall_at_event`].
    stall: StallState,
    /// Timebase for the simulated device drain queue below.
    origin: Instant,
    /// Nanosecond (since `origin`) at which this pool's simulated NVM
    /// device finishes draining everything queued so far. Each fence
    /// *reserves* its drain time here and then blocks — sleeping, not
    /// spinning — until the reservation completes. On hardware an `SFENCE`
    /// stalls only the calling thread while the DIMM's write-pending queue
    /// drains; other threads keep executing, and independent DIMMs drain in
    /// parallel. Modeling the drain as per-pool serial *device* time (rather
    /// than a CPU busy-wait) reproduces both properties: concurrent fences
    /// on one pool queue behind each other, while fences on different pools
    /// overlap freely.
    device_busy: AtomicU64,
    /// Per-cache-line shadow persistency state (the `persist-san`
    /// sanitizer); see the [`crate::san`] module docs.
    #[cfg(feature = "persist-san")]
    san: SanState,
}

/// A simulated persistent-memory pool. Cheap to clone (it is an `Arc`).
///
/// See the [crate docs](crate) for the semantics. All accessor methods take
/// offsets ([`POff`]); raw-pointer access is available via [`PmemPool::at`]
/// for code that needs atomics or in-place structs, with the same aliasing
/// obligations as real shared memory.
#[derive(Clone)]
pub struct PmemPool {
    inner: Arc<Inner>,
}

impl PmemPool {
    /// Allocates a fresh, zero-filled pool.
    pub fn new(config: PmemConfig) -> Self {
        assert!(config.size >= crate::ROOT_AREA_SIZE, "pool too small");
        assert_eq!(
            config.size % CACHE_LINE,
            0,
            "pool size must be line-aligned"
        );
        let layout = Layout::from_size_align(config.size, 4096).expect("pool layout");
        // SAFETY: the layout has non-zero size (asserted >= ROOT_AREA_SIZE
        // above).
        let ptr = unsafe { alloc_zeroed(layout) };
        assert!(!ptr.is_null(), "pool allocation failed");
        let durable = match config.mode {
            PmemMode::Strict => Some(Mutex::new(vec![0u8; config.size].into_boxed_slice())),
            PmemMode::Fast => None,
        };
        PmemPool {
            inner: Arc::new(Inner {
                id: NEXT_POOL_ID.fetch_add(1, Ordering::Relaxed),
                config,
                stats: PmemStats::default(),
                working: Working { ptr, layout },
                durable,
                pending: Mutex::new(HashSet::new()),
                events: AtomicU64::new(0),
                poisoned: AtomicBool::new(false),
                stall: StallState::default(),
                origin: Instant::now(),
                device_busy: AtomicU64::new(0),
                #[cfg(feature = "persist-san")]
                san: SanState::new(config.size),
            }),
        }
    }

    /// Pool size in bytes.
    #[inline]
    pub fn size(&self) -> usize {
        self.inner.config.size
    }

    /// Process-unique pool id. Multi-pool front-ends (the sharded kv store)
    /// use this to tell shards' pools apart in reports and stats keys.
    #[inline]
    pub fn id(&self) -> u64 {
        self.inner.id
    }

    /// The pool's configuration.
    #[inline]
    pub fn config(&self) -> &PmemConfig {
        &self.inner.config
    }

    /// Persistence statistics.
    #[inline]
    pub fn stats(&self) -> &PmemStats {
        &self.inner.stats
    }

    // ---- fault plan ---------------------------------------------------------

    /// Charges `n` persistence events against the fault plans and returns
    /// how many of them take effect. With no plan armed, accounting is
    /// skipped and all `n` take effect. Once the running count reaches the
    /// crash plan's point the pool is poisoned and every later event is
    /// dropped — a partial charge models a crash landing *inside* a
    /// multi-line flush. The stall plan parks the thread whose charge
    /// crossed its threshold (after the crash-plan check, so a charge that
    /// crosses both poisons first and the park becomes a no-op); straggler
    /// mode injects a seeded per-event delay.
    #[inline]
    fn charge_events(&self, n: u64) -> u64 {
        let chaos = &self.inner.config.chaos;
        if chaos.crash_at_event.is_none()
            && chaos.stall_at_event.is_none()
            && chaos.straggler_permille == 0
        {
            return n;
        }
        if n == 0 {
            return 0;
        }
        let before = self.inner.events.fetch_add(n, Ordering::Relaxed);
        if chaos.straggler_permille > 0
            && event_roll(chaos.seed, before) < chaos.straggler_permille as u64
        {
            std::thread::sleep(std::time::Duration::from_micros(
                chaos.straggler_delay_us as u64,
            ));
        }
        let eff = match chaos.crash_at_event {
            None => n,
            Some(plan) => {
                if before.saturating_add(n) >= plan
                    && self
                        .inner
                        .poisoned
                        .compare_exchange(false, true, Ordering::AcqRel, Ordering::Acquire)
                        .is_ok()
                {
                    self.inner.stats.on_injected_crash();
                    // A parked victim belongs to the execution that just
                    // died; wake it so its thread can observe the fault and
                    // unwind instead of hanging past the crash.
                    self.wake_stalled();
                }
                if before >= plan {
                    0
                } else {
                    (plan - before).min(n)
                }
            }
        };
        if let Some(stall) = chaos.stall_at_event {
            if before < stall && before.saturating_add(n) >= stall {
                self.park_at_stall_point();
            }
        }
        eff
    }

    /// Parks the calling thread — the stall fault plan tripped on its event
    /// charge — until [`PmemPool::release_stalled`] or pool poisoning. Cold
    /// and outlined: fires at most once per pool. The park happens *inside*
    /// the flush/fence/store that crossed the threshold, before any pool
    /// lock is taken, so peers' persistence primitives keep working; any
    /// locks the victim holds in the layers above (a bucket mutex, an open
    /// operation's epoch reservation) stay held, which is exactly the
    /// adversarial schedule liveness tests need.
    #[cold]
    fn park_at_stall_point(&self) {
        let st = &self.inner.stall;
        if st
            .claimed
            .compare_exchange(false, true, Ordering::AcqRel, Ordering::Acquire)
            .is_err()
        {
            return;
        }
        self.inner.stats.on_stall();
        let mut flags = st.flags.lock();
        flags.parked = true;
        st.cv.notify_all(); // wake `await_stalled` watchers
        while !flags.released && !self.is_poisoned() {
            st.cv.wait(&mut flags);
        }
        flags.parked = false;
        st.cv.notify_all();
    }

    /// Wakes a parked stall victim so it can re-check its wait condition
    /// (used by the poisoning paths; does not itself release the stall).
    fn wake_stalled(&self) {
        let st = &self.inner.stall;
        let _flags = st.flags.lock();
        st.cv.notify_all();
    }

    /// Blocks until the stall fault plan has parked its victim or `timeout`
    /// elapses; returns whether a thread is parked. Harness entry point:
    /// arm [`crate::ChaosConfig::stall_at_event`], start the workload, and
    /// `await_stalled` before exercising the peers.
    pub fn await_stalled(&self, timeout: std::time::Duration) -> bool {
        let st = &self.inner.stall;
        let deadline = Instant::now() + timeout;
        let mut flags = st.flags.lock();
        while !flags.parked {
            if st.cv.wait_until(&mut flags, deadline).timed_out() {
                return flags.parked;
            }
        }
        true
    }

    /// Number of threads currently parked by the stall plan (0 or 1).
    pub fn stalled_count(&self) -> usize {
        usize::from(self.inner.stall.flags.lock().parked)
    }

    /// Releases a thread parked by the stall fault plan. Idempotent, and
    /// safe to call before the victim parks — the release is sticky, so a
    /// victim arriving later passes straight through.
    pub fn release_stalled(&self) {
        let st = &self.inner.stall;
        let mut flags = st.flags.lock();
        flags.released = true;
        st.cv.notify_all();
    }

    /// Persistence events charged so far. Counting happens only while a
    /// fault plan is armed (`chaos.crash_at_event` / `chaos.stall_at_event`
    /// is `Some`, or straggler mode is on); a sweep harness's counting pass
    /// arms `Some(u64::MAX)` to count without ever crashing.
    #[inline]
    pub fn persistence_events(&self) -> u64 {
        self.inner.events.load(Ordering::Relaxed)
    }

    /// Whether the fault plan has tripped.
    #[inline]
    pub fn is_poisoned(&self) -> bool {
        self.inner.poisoned.load(Ordering::Acquire)
    }

    /// The pending fault, if the fault plan has tripped.
    #[inline]
    pub fn fault(&self) -> Option<PmemFault> {
        if self.is_poisoned() {
            Some(PmemFault::Crashed {
                at_event: self.inner.config.chaos.crash_at_event.unwrap_or(0),
            })
        } else {
            None
        }
    }

    /// `Err` once the fault plan has tripped; for cooperative early exits in
    /// code that wants to stop doing doomed work.
    #[inline]
    pub fn check_fault(&self) -> Result<(), PmemFault> {
        match self.fault() {
            Some(f) => Err(f),
            None => Ok(()),
        }
    }

    #[inline]
    fn check(&self, off: POff, len: usize) {
        debug_assert!(
            (off.raw() as usize)
                .checked_add(len)
                .is_some_and(|end| end <= self.inner.config.size),
            "pmem access out of bounds: off={off:?} len={len}"
        );
    }

    /// Raw pointer to offset `off`, viewed as `T`.
    ///
    /// # Safety
    /// The caller must respect `T`'s alignment at `off`, stay in bounds, and
    /// coordinate concurrent access exactly as it would for shared memory.
    #[inline]
    pub unsafe fn at<T>(&self, off: POff) -> *mut T {
        self.check(off, std::mem::size_of::<T>());
        self.inner.working.ptr.add(off.raw() as usize).cast::<T>()
    }

    /// Reads a `Copy` value at `off`.
    ///
    /// # Safety
    /// As for [`PmemPool::at`]; additionally the bytes must be a valid `T`.
    #[inline]
    #[track_caller]
    pub unsafe fn read<T: Copy>(&self, off: POff) -> T {
        #[cfg(feature = "persist-san")]
        self.inner.san.on_read(
            off.raw(),
            std::mem::size_of::<T>(),
            std::panic::Location::caller(),
        );
        self.at::<T>(off).read()
    }

    /// Writes a `Copy` value at `off` (store only; not persistent until
    /// flushed and fenced).
    ///
    /// The store always reaches the *working* image, even on a poisoned
    /// pool: a real crash discards the caches (our working image) anyway,
    /// so letting the doomed execution keep storing is indistinguishable
    /// from the recovered pool's point of view, and it keeps in-memory
    /// structures coherent for threads that have not yet observed the
    /// fault. What a poisoned pool cuts off is *durability* (flush/fence).
    ///
    /// # Safety
    /// As for [`PmemPool::at`].
    #[inline]
    #[track_caller]
    pub unsafe fn write<T: Copy>(&self, off: POff, val: &T) {
        self.charge_events(1);
        #[cfg(feature = "persist-san")]
        self.inner.san.on_write(
            off.raw(),
            std::mem::size_of::<T>(),
            std::panic::Location::caller(),
        );
        self.at::<T>(off).write(*val);
    }

    /// Like [`PmemPool::write`], but declares the store *transient by
    /// design*: never flushed, reconstructed from scratch on recovery
    /// (allocator free-list links are the canonical case). Charges the same
    /// single persistence event as `write`, so fault-plan sweep points are
    /// identical whichever of the two a call site uses; under `persist-san`
    /// the line is exempt from the epoch-boundary check (unless it also
    /// holds an unflushed tracked store).
    ///
    /// # Safety
    /// As for [`PmemPool::at`].
    #[inline]
    pub unsafe fn write_transient<T: Copy>(&self, off: POff, val: &T) {
        self.charge_events(1);
        #[cfg(feature = "persist-san")]
        self.inner
            .san
            .on_write_transient(off.raw(), std::mem::size_of::<T>());
        self.at::<T>(off).write(*val);
    }

    /// Copies `src` into the pool at `off`. Like [`PmemPool::write`], the
    /// store lands in the working image even on a poisoned pool.
    #[track_caller]
    pub fn write_bytes(&self, off: POff, src: &[u8]) {
        self.charge_events(1);
        self.check(off, src.len());
        #[cfg(feature = "persist-san")]
        self.inner
            .san
            .on_write(off.raw(), src.len(), std::panic::Location::caller());
        // SAFETY: `check` verified `[off, off+len)` is in bounds; `src` is a
        // borrowed slice, so it cannot alias the working image.
        unsafe {
            std::ptr::copy_nonoverlapping(
                src.as_ptr(),
                self.inner.working.ptr.add(off.raw() as usize),
                src.len(),
            );
        }
    }

    /// Copies `dst.len()` bytes out of the pool at `off`.
    #[track_caller]
    pub fn read_bytes(&self, off: POff, dst: &mut [u8]) {
        self.check(off, dst.len());
        #[cfg(feature = "persist-san")]
        self.inner
            .san
            .on_read(off.raw(), dst.len(), std::panic::Location::caller());
        // SAFETY: `check` verified `[off, off+len)` is in bounds; `dst` is an
        // exclusive borrow, so it cannot alias the working image.
        unsafe {
            std::ptr::copy_nonoverlapping(
                self.inner.working.ptr.add(off.raw() as usize),
                dst.as_mut_ptr(),
                dst.len(),
            );
        }
    }

    /// An atomic `u64` view of the 8 bytes at `off` (must be 8-aligned).
    ///
    /// # Safety
    /// `off` must be 8-byte aligned and in bounds; all accesses to those
    /// bytes must go through atomics while this view is in use.
    #[inline]
    pub unsafe fn atomic_u64(&self, off: POff) -> &AtomicU64 {
        debug_assert_eq!(off.raw() % 8, 0, "atomic_u64 requires 8-byte alignment");
        &*(self.at::<u64>(off) as *const AtomicU64)
    }

    /// Models a dependent load that misses the CPU caches into NVM media.
    /// Pointer-chasing structures call this once per node dereference; it
    /// charges `media_read_ns` (a latency, not a bandwidth, cost).
    #[inline]
    pub fn touch(&self) {
        spin_ns(self.inner.config.latency.media_read_ns);
    }

    /// Models a bulk payload read of `len` bytes from NVM media: reserves
    /// `media_read_line_ns` per cache line on the pool's device queue, so
    /// large reads contend with fence drains for the DIMM's bandwidth.
    /// Free when the latency model's `media_read_line_ns` is zero.
    #[inline]
    pub fn media_read(&self, len: usize) {
        let per_line = self.inner.config.latency.media_read_line_ns;
        if per_line == 0 || len == 0 {
            return;
        }
        self.wait_device(per_line * lines_spanned(0, len));
    }

    // ---- persistence primitives -------------------------------------------

    /// `CLWB`: schedule write-back of the cache line containing `off`.
    /// Durability is guaranteed only after a subsequent [`PmemPool::sfence`]
    /// from the same thread.
    #[inline]
    #[track_caller]
    pub fn clwb(&self, off: POff) {
        self.check(off, 1);
        self.inner.stats.on_clwb();
        spin_ns(self.inner.config.latency.clwb_issue_ns);
        if self.charge_events(1) == 0 {
            return; // cut off by the fault plan: the write-back never starts
        }
        #[cfg(feature = "persist-san")]
        self.inner
            .san
            .on_clwb(line_of(off.raw()), 1, 1, std::panic::Location::caller());
        if self.inner.durable.is_some() {
            self.inner.pending.lock().insert(line_of(off.raw()));
        } else {
            count_add(self.inner.id, 1);
        }
    }

    /// `CLWB` every cache line in `[off, off+len)`. The issue latency for
    /// the whole range is charged in one spin (per-line spins would be
    /// dominated by timer overhead at nanosecond scales).
    #[track_caller]
    pub fn clwb_range(&self, off: POff, len: usize) {
        if len == 0 {
            return;
        }
        self.check(off, len);
        let n = lines_spanned(off.raw(), len);
        let first = line_of(off.raw());
        // One event per line, so a crash point can land *inside* the range:
        // the first `eff` lines get their write-back, the rest never start.
        let eff = self.charge_events(n);
        #[cfg(feature = "persist-san")]
        self.inner
            .san
            .on_clwb(first, n, eff, std::panic::Location::caller());
        if self.inner.durable.is_some() {
            let mut p = self.inner.pending.lock();
            for i in 0..eff {
                p.insert(first + i);
            }
        } else {
            count_add(self.inner.id, eff);
        }
        for _ in 0..n {
            self.inner.stats.on_clwb();
        }
        spin_ns(self.inner.config.latency.clwb_issue_ns * n);
    }

    /// `SFENCE`: drain this thread's pending write-backs to durable media.
    #[track_caller]
    pub fn sfence(&self) {
        let lat = &self.inner.config.latency;
        // A fence is a single event: either the whole drain happens before
        // the crash point or none of it does (pending lines die unfenced).
        if self.charge_events(1) == 0 {
            self.inner.stats.on_sfence(0);
            return;
        }
        #[cfg(feature = "persist-san")]
        self.inner.san.on_sfence(std::panic::Location::caller());
        let drained = if let Some(durable) = &self.inner.durable {
            let lines = std::mem::take(&mut *self.inner.pending.lock());
            let mut dur = durable.lock();
            for &line in &lines {
                self.drain_line(&mut dur, line);
            }
            lines.len() as u64
        } else {
            // Fast mode: drain the per-thread pending count.
            count_take(self.inner.id)
        };
        self.inner.stats.on_sfence(drained);
        // The fence instruction itself is CPU time for the calling thread;
        // the media drain is *device* time on this pool's write queue.
        spin_ns(lat.fence_base_ns);
        let media_ns = drained * (lat.fence_per_line_ns + lat.media_write_ns);
        if media_ns > 0 {
            self.wait_device(media_ns);
        }
    }

    /// Reserves `media_ns` of drain time on this pool's simulated NVM device
    /// and blocks until the reservation completes. The wait sleeps when the
    /// deadline is far enough out to make a syscall worthwhile and spins the
    /// final stretch for accuracy, so other threads — including fences on
    /// *other* pools — keep the CPU while this pool's queue drains. See the
    /// `device_busy` field docs for why this is a queue and not a spin.
    fn wait_device(&self, media_ns: u64) {
        let now = self.inner.origin.elapsed().as_nanos() as u64;
        let done = self
            .inner
            .device_busy
            .fetch_update(Ordering::AcqRel, Ordering::Acquire, |busy| {
                Some(busy.max(now) + media_ns)
            })
            .expect("device reservation always succeeds")
            .max(now)
            + media_ns;
        // OS sleeps overshoot by tens of microseconds (timer slack), so a
        // `sleep(remaining)` would charge a 6µs drain ~70µs of real blocking —
        // a 10x penalty that lands precisely on callers who batch their drain
        // work into one fence. Sleep only the stretch the OS can deliver
        // without running past the deadline, then spin the accurate tail.
        const SLEEP_SLACK_NS: u64 = 200_000;
        loop {
            let now = self.inner.origin.elapsed().as_nanos() as u64;
            if now >= done {
                return;
            }
            let remaining = done - now;
            if remaining > SLEEP_SLACK_NS {
                std::thread::sleep(std::time::Duration::from_nanos(remaining - SLEEP_SLACK_NS));
            } else {
                std::hint::spin_loop();
            }
        }
    }

    /// Convenience: `clwb_range` + `sfence`.
    #[track_caller]
    pub fn persist_range(&self, off: POff, len: usize) {
        self.clwb_range(off, len);
        self.sfence();
    }

    // ---- checked variants ---------------------------------------------------
    //
    // Same effects as the plain primitives, but they report
    // [`PmemFault::Crashed`] once the fault plan has tripped — including when
    // the call itself is what trips it — so cooperative code can unwind
    // instead of continuing a doomed execution. On an unpoisoned pool they
    // are exactly the plain primitives.

    /// Checked [`PmemPool::clwb`].
    #[track_caller]
    pub fn try_clwb(&self, off: POff) -> Result<(), PmemFault> {
        self.check_fault()?;
        self.clwb(off);
        self.check_fault()
    }

    /// Checked [`PmemPool::clwb_range`].
    #[track_caller]
    pub fn try_clwb_range(&self, off: POff, len: usize) -> Result<(), PmemFault> {
        self.check_fault()?;
        self.clwb_range(off, len);
        self.check_fault()
    }

    /// Checked [`PmemPool::sfence`].
    #[track_caller]
    pub fn try_sfence(&self) -> Result<(), PmemFault> {
        self.check_fault()?;
        self.sfence();
        self.check_fault()
    }

    /// Checked [`PmemPool::persist_range`].
    #[track_caller]
    pub fn try_persist_range(&self, off: POff, len: usize) -> Result<(), PmemFault> {
        self.check_fault()?;
        self.persist_range(off, len);
        self.check_fault()
    }

    /// Checked [`PmemPool::write_bytes`].
    #[track_caller]
    pub fn try_write_bytes(&self, off: POff, src: &[u8]) -> Result<(), PmemFault> {
        self.check_fault()?;
        self.write_bytes(off, src);
        self.check_fault()
    }

    fn drain_line(&self, durable: &mut [u8], line: u64) {
        self.drain_line_prefix(durable, line, CACHE_LINE);
    }

    /// Copies the first `bytes` bytes of `line` from the working image to
    /// the durable image (whole line for a normal drain, a prefix for a
    /// torn write-back).
    fn drain_line_prefix(&self, durable: &mut [u8], line: u64, bytes: usize) {
        let start = (line as usize) * CACHE_LINE;
        let end = (start + bytes.min(CACHE_LINE)).min(self.inner.config.size);
        // SAFETY: `start..end` is clamped to the pool size; `durable` is a
        // separate heap allocation of the same size.
        unsafe {
            std::ptr::copy_nonoverlapping(
                self.inner.working.ptr.add(start),
                durable.as_mut_ptr().add(start),
                end - start,
            );
        }
    }

    // ---- crash simulation --------------------------------------------------

    /// Simulates a whole-machine power failure and restart.
    ///
    /// Returns a new pool whose contents are exactly the durable image: only
    /// data that was `clwb`'d and fenced (plus chaos-mode spontaneous
    /// evictions) survives. Panics in [`PmemMode::Fast`], which has no
    /// durable image.
    ///
    /// All other threads must have stopped using the old pool; lingering
    /// writes after the crash point would be lost on real hardware too, but
    /// here they would race with the image copy.
    pub fn crash(&self) -> PmemPool {
        let durable = self
            .inner
            .durable
            .as_ref()
            .expect("crash() requires PmemMode::Strict");
        self.inner.stats.on_crash();

        let mut dur = durable.lock();
        let chaos = self.inner.config.chaos;
        // Chaos: the power cut may catch in-flight write-backs part-way
        // through a line. Each pending (clwb'd, unfenced) line may persist
        // only a prefix of itself, at 8-byte ECC-word granularity.
        if chaos.torn_line_permille > 0 {
            let crashes = self.inner.stats.crashes.load(Ordering::Relaxed);
            let mut rng =
                SmallRng::seed_from_u64(chaos.seed ^ crashes.wrapping_mul(0xA24BAED4963EE407));
            // HashSet iteration order is not deterministic; sort so the same
            // seed always tears the same lines the same way.
            let mut lines: Vec<u64> = self.inner.pending.lock().iter().copied().collect();
            lines.sort_unstable();
            for line in lines {
                if rng.gen_range(0..1000) < chaos.torn_line_permille as u32 {
                    let words = rng.gen_range(1u64..8); // strict prefix
                    self.drain_line_prefix(&mut dur, line, words as usize * 8);
                    self.inner.stats.on_torn_line();
                }
            }
        }
        // Chaos: arbitrary cache evictions may have persisted unflushed lines.
        if chaos.spontaneous_evict_permille > 0 {
            let crashes = self.inner.stats.crashes.load(Ordering::Relaxed);
            let mut rng =
                SmallRng::seed_from_u64(chaos.seed ^ crashes.wrapping_mul(0x9E3779B97F4A7C15));
            let nlines = self.inner.config.size / CACHE_LINE;
            for line in 0..nlines as u64 {
                if rng.gen_range(0..1000) < chaos.spontaneous_evict_permille as u32 {
                    self.drain_line(&mut dur, line);
                }
            }
        }

        // The restarted machine gets a disarmed fault plan: the plan applied
        // to the execution that just died, not to recovery code running
        // after the reboot (which would otherwise re-poison at event N).
        let mut cfg = self.inner.config;
        cfg.chaos.crash_at_event = None;
        cfg.chaos.stall_at_event = None;
        let new = PmemPool::new(cfg);
        // Raw image copy: machine-internal, not a program store — it must
        // not charge persistence events or perturb sanitizer shadow state.
        // SAFETY: both images are `config.size` bytes (same config) and live
        // in distinct allocations.
        unsafe {
            std::ptr::copy_nonoverlapping(dur.as_ptr(), new.inner.working.ptr, dur.len());
        }
        {
            let new_durable = new.inner.durable.as_ref().unwrap();
            new_durable.lock().copy_from_slice(&dur);
        }
        // Hand the restarted pool the crash cut's shadow knowledge: which
        // lines' contents were never made durable before the power failed.
        #[cfg(feature = "persist-san")]
        self.inner.san.arm_restart(&new.inner.san);
        // Pending-but-unfenced flushes die with the machine.
        self.inner.pending.lock().clear();
        // A thread parked by the stall plan belongs to the execution that
        // just died; release it so its (joinable) OS thread can unwind. Its
        // post-release activity lands only in the dead pool's images.
        self.release_stalled();
        new
    }

    // ---- cross-process persistence ------------------------------------------

    /// Writes the **durable image** to a file, making persistence survive
    /// process exit (standing in for the file that a DAX mapping would be
    /// backed by). Strict mode only. Format: `"PMEMSNAP"` magic, size, image.
    pub fn save_to_file(&self, path: &std::path::Path) -> std::io::Result<()> {
        use std::io::Write;
        let durable = self
            .inner
            .durable
            .as_ref()
            .expect("save_to_file requires PmemMode::Strict");
        let dur = durable.lock();
        let mut f = std::io::BufWriter::new(std::fs::File::create(path)?);
        f.write_all(b"PMEMSNAP")?;
        f.write_all(&(self.inner.config.size as u64).to_le_bytes())?;
        f.write_all(&dur)?;
        f.flush()?;
        Ok(())
    }

    /// Loads a pool from a [`PmemPool::save_to_file`] snapshot. The restored
    /// pool starts from the snapshot in both images (as if freshly rebooted
    /// from that persistent state).
    pub fn load_from_file(path: &std::path::Path, config: PmemConfig) -> std::io::Result<PmemPool> {
        use std::io::Read;
        let mut f = std::io::BufReader::new(std::fs::File::open(path)?);
        let mut magic = [0u8; 8];
        f.read_exact(&mut magic)?;
        if &magic != b"PMEMSNAP" {
            return Err(std::io::Error::new(
                std::io::ErrorKind::InvalidData,
                "not a pmem snapshot",
            ));
        }
        let mut szb = [0u8; 8];
        f.read_exact(&mut szb)?;
        let size = u64::from_le_bytes(szb) as usize;
        if size != config.size {
            return Err(std::io::Error::new(
                std::io::ErrorKind::InvalidData,
                format!("snapshot is {size} B but config.size is {} B", config.size),
            ));
        }
        let mut image = vec![0u8; size];
        f.read_exact(&mut image)?;
        let pool = PmemPool::new(config);
        // Raw image copy, as in `crash()`: not a program store.
        // SAFETY: `image.len() == size == config.size` was checked above;
        // the snapshot buffer and the working image are distinct allocations.
        unsafe {
            std::ptr::copy_nonoverlapping(image.as_ptr(), pool.inner.working.ptr, image.len());
        }
        if let Some(durable) = &pool.inner.durable {
            durable.lock().copy_from_slice(&image);
        }
        // Everything in a snapshot is by definition the durable image, so a
        // recovery-time read of any of it is legitimate prefix semantics.
        #[cfg(feature = "persist-san")]
        pool.inner.san.mark_all_durable();
        Ok(pool)
    }

    // ---- persistency sanitizer ----------------------------------------------
    //
    // The `san_*` methods below exist unconditionally so instrumentation
    // points in higher crates (the epoch system, recovery, the allocator)
    // need no feature gates of their own; without the `persist-san` feature
    // they compile to nothing.

    /// Asserts the epoch-boundary invariant: every tracked store from before
    /// the *previous* boundary has been flushed by now. The epoch advancer
    /// calls this right after its boundary fence, before bumping the clock.
    /// No-op without the `persist-san` feature.
    #[inline]
    #[track_caller]
    pub fn san_epoch_boundary(&self) {
        #[cfg(feature = "persist-san")]
        {
            // Once the fault plan trips, flushes and fences are dropped —
            // including the boundary fence this call follows — so the
            // boundary never actually declared anything durable. Unflushed
            // lines are not protocol violations then; they are the crash.
            if self.is_poisoned() {
                return;
            }
            self.inner
                .san
                .on_epoch_boundary(std::panic::Location::caller());
        }
    }

    /// Declares `[off, off+len)` stored-to by an untracked mechanism (an
    /// atomic store through [`PmemPool::atomic_u64`], a raw write through
    /// [`PmemPool::at`], a pool-to-pool copy), so the sanitizer sees the
    /// store that a following flush is for. No-op without the feature.
    #[inline]
    #[track_caller]
    pub fn san_mark_dirty(&self, off: POff, len: usize) {
        #[cfg(not(feature = "persist-san"))]
        let _ = (off, len);
        #[cfg(feature = "persist-san")]
        self.inner
            .san
            .on_write(off.raw(), len, std::panic::Location::caller());
    }

    /// Runs `f` in a *probe scope*: recovery-time reads inside it are exempt
    /// from the dirty-read check, for recovery code that validates before it
    /// trusts (checksummed header probes over a block sweep). A transparent
    /// wrapper without the feature.
    #[inline]
    pub fn san_probe<R>(&self, f: impl FnOnce() -> R) -> R {
        #[cfg(feature = "persist-san")]
        let _guard = ProbeGuard::enter();
        f()
    }

    /// Opens the recovery window: until [`PmemPool::san_end_recovery`],
    /// reads are checked against the set of lines whose pre-crash content
    /// never became durable. No-op without the feature.
    #[inline]
    pub fn san_begin_recovery(&self) {
        #[cfg(feature = "persist-san")]
        self.inner.san.begin_recovery();
    }

    /// Closes the recovery window opened by [`PmemPool::san_begin_recovery`].
    #[inline]
    pub fn san_end_recovery(&self) {
        #[cfg(feature = "persist-san")]
        self.inner.san.end_recovery();
    }

    /// Snapshot of everything the sanitizer has recorded so far.
    #[cfg(feature = "persist-san")]
    pub fn san_report(&self) -> SanReport {
        self.inner.san.report()
    }

    /// Enables or disables deny mode: panic at the violation site for the
    /// correctness classes ([`crate::SanClass::is_correctness`]). On by
    /// default.
    #[cfg(feature = "persist-san")]
    pub fn san_set_deny(&self, deny: bool) {
        self.inner.san.set_deny(deny);
    }

    /// Clears recorded violations and counters; shadow line states are kept.
    /// Audits use this to delimit a measurement window.
    #[cfg(feature = "persist-san")]
    pub fn san_reset_counts(&self) {
        self.inner.san.reset_counts();
    }
}

/// Deterministic per-event roll in `0..1000` for straggler injection
/// (splitmix64 finalizer over `seed ^ event`): a given (seed, workload)
/// pair delays the same events on every run.
#[inline]
fn event_roll(seed: u64, event: u64) -> u64 {
    let mut z = seed ^ event.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    (z ^ (z >> 31)) % 1000
}

/// Busy-wait for approximately `ns` nanoseconds (0 = free).
#[inline]
fn spin_ns(ns: u64) {
    if ns == 0 {
        return;
    }
    let start = Instant::now();
    while (start.elapsed().as_nanos() as u64) < ns {
        std::hint::spin_loop();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::ChaosConfig;

    fn strict_pool() -> PmemPool {
        PmemPool::new(PmemConfig::strict_for_test(1 << 20))
    }

    /// Test-only safe store. Every offset used in this module is a
    /// hardcoded, in-bounds, 8-aligned scratch slot — exactly the contract
    /// the unsafe accessor asks the caller to uphold.
    #[track_caller]
    fn w(p: &PmemPool, off: POff, v: u64) {
        // SAFETY: see the doc comment — in-bounds, aligned, plain data.
        unsafe { p.write(off, &v) }
    }

    /// Test-only safe load; same contract as [`w`].
    #[track_caller]
    fn r(p: &PmemPool, off: POff) -> u64 {
        // SAFETY: see `w`.
        unsafe { p.read::<u64>(off) }
    }

    #[test]
    fn write_read_roundtrip() {
        let p = strict_pool();
        let off = POff::new(8192);
        w(&p, off, 0xDEADBEEFu64);
        assert_eq!(r(&p, off), 0xDEADBEEF);
    }

    #[test]
    fn unflushed_data_lost_on_crash() {
        let p = strict_pool();
        let off = POff::new(4096);
        w(&p, off, 42u64);
        let p2 = p.crash();
        assert_eq!(r(&p2, off), 0, "unflushed line must not survive");
    }

    #[test]
    fn flushed_but_unfenced_data_lost_on_crash() {
        let p = strict_pool();
        let off = POff::new(4096);
        w(&p, off, 42u64);
        p.clwb(off);
        // No sfence.
        let p2 = p.crash();
        assert_eq!(r(&p2, off), 0, "clwb without fence is not durable");
    }

    #[test]
    fn flushed_and_fenced_data_survives() {
        let p = strict_pool();
        let off = POff::new(4096);
        w(&p, off, 42u64);
        p.persist_range(off, 8);
        let p2 = p.crash();
        assert_eq!(r(&p2, off), 42);
    }

    #[test]
    fn flush_granularity_is_whole_lines() {
        let p = strict_pool();
        let a = POff::new(4096); // same line
        let b = POff::new(4096 + 32);
        w(&p, a, 1);
        w(&p, b, 2);
        p.persist_range(a, 8); // flushing a's line also captures b
        let p2 = p.crash();
        assert_eq!(r(&p2, a), 1);
        assert_eq!(r(&p2, b), 2);
    }

    #[test]
    fn fence_captures_value_at_fence_time() {
        let p = strict_pool();
        let off = POff::new(4096);
        w(&p, off, 1u64);
        p.clwb(off);
        w(&p, off, 2u64); // re-dirty before the fence
        p.sfence();
        let p2 = p.crash();
        assert_eq!(r(&p2, off), 2);
    }

    #[test]
    fn crash_preserves_durable_across_two_crashes() {
        let p = strict_pool();
        let off = POff::new(4096);
        w(&p, off, 7u64);
        p.persist_range(off, 8);
        let p2 = p.crash();
        let p3 = p2.crash();
        assert_eq!(r(&p3, off), 7);
    }

    #[test]
    fn any_threads_fence_drains_pending_clwbs() {
        // CLWB write-backs are asynchronous: a later fence from *any* thread
        // covers them (the epoch advancer's boundary fence relies on this).
        let p = strict_pool();
        let off = POff::new(4096);
        w(&p, off, 9u64);
        p.clwb(off);
        let p_clone = p.clone();
        std::thread::spawn(move || p_clone.sfence()).join().unwrap();
        let p2 = p.crash();
        assert_eq!(r(&p2, off), 9);
    }

    #[test]
    fn clwb_never_fenced_is_lost() {
        let p = strict_pool();
        let off = POff::new(4096);
        w(&p, off, 9u64);
        std::thread::scope(|s| {
            let p = p.clone();
            s.spawn(move || p.clwb(off)); // flushing thread exits, no fence anywhere
        });
        let p2 = p.crash();
        assert_eq!(r(&p2, off), 0);
    }

    #[test]
    fn repeated_clwbs_of_one_line_drain_once() {
        let p = strict_pool();
        let off = POff::new(4096);
        w(&p, off, 3u64);
        for _ in 0..5 {
            p.clwb(off);
        }
        p.sfence();
        let snap = p.stats().snapshot();
        let clwbs = snap.clwbs;
        let drained = snap.lines_drained;
        assert_eq!(clwbs, 5, "every issued clwb is counted");
        assert_eq!(drained, 1, "the fence drains the dirty line once");
        let p2 = p.crash();
        assert_eq!(r(&p2, off), 3);
    }

    #[test]
    fn stats_count_flushes_and_fences() {
        let p = strict_pool();
        let off = POff::new(4096);
        w(&p, off, 1u64);
        p.clwb_range(off, 200); // 4 lines
        p.sfence();
        let snap = p.stats().snapshot();
        let clwbs = snap.clwbs;
        let fences = snap.sfences;
        let drained = snap.lines_drained;
        assert_eq!(clwbs, 4);
        assert_eq!(fences, 1);
        assert_eq!(drained, 4);
    }

    #[test]
    fn chaos_mode_may_persist_unflushed_lines() {
        let p = PmemPool::new(PmemConfig {
            size: 1 << 20,
            mode: PmemMode::Strict,
            latency: crate::LatencyModel::ZERO,
            chaos: ChaosConfig {
                spontaneous_evict_permille: 1000, // evict everything
                seed: 1,
                ..Default::default()
            },
        });
        let off = POff::new(4096);
        w(&p, off, 5u64);
        let p2 = p.crash();
        assert_eq!(r(&p2, off), 5, "100% eviction persists all lines");
    }

    #[test]
    fn fast_mode_counts_but_does_not_shadow() {
        let p = PmemPool::new(PmemConfig::default());
        let off = POff::new(4096);
        w(&p, off, 1u64);
        p.persist_range(off, 8);
        assert_eq!(p.stats().snapshot().clwbs, 1);
    }

    #[test]
    fn atomic_view_is_shared_with_plain_writes() {
        let p = strict_pool();
        let off = POff::new(4096);
        // SAFETY: `off` is 8-aligned and in bounds; the view is only used
        // from this thread.
        let a = unsafe { p.atomic_u64(off) };
        a.store(11, Ordering::SeqCst);
        assert_eq!(r(&p, off), 11);
    }

    #[test]
    fn snapshot_roundtrips_across_processes() {
        let dir = std::env::temp_dir().join(format!("pmem-snap-{}", std::process::id()));
        let _ = std::fs::create_dir_all(&dir);
        let path = dir.join("pool.img");

        let p = strict_pool();
        let off = POff::new(4096);
        w(&p, off, 0xC0FFEEu64);
        p.persist_range(off, 8);
        w(&p, off.add(8), 1u64); // never persisted
        p.save_to_file(&path).unwrap();

        let p2 = PmemPool::load_from_file(&path, PmemConfig::strict_for_test(1 << 20)).unwrap();
        assert_eq!(r(&p2, off), 0xC0FFEE);
        assert_eq!(r(&p2, off.add(8)), 0, "snapshot holds durable image only");
        // And the restored pool has normal crash semantics.
        w(&p2, off, 7u64);
        let p3 = p2.crash();
        assert_eq!(r(&p3, off), 0xC0FFEE);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn snapshot_rejects_wrong_geometry() {
        let dir = std::env::temp_dir().join(format!("pmem-snap2-{}", std::process::id()));
        let _ = std::fs::create_dir_all(&dir);
        let path = dir.join("pool.img");
        strict_pool().save_to_file(&path).unwrap();
        assert!(PmemPool::load_from_file(&path, PmemConfig::strict_for_test(2 << 20)).is_err());
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn fresh_pool_is_zeroed() {
        let p = strict_pool();
        let mut buf = [1u8; 256];
        p.read_bytes(POff::new(12345 & !63), &mut buf);
        assert!(buf.iter().all(|&b| b == 0));
    }

    // ---- fault plan ---------------------------------------------------------

    fn faulted_pool(crash_at: u64) -> PmemPool {
        let mut cfg = PmemConfig::strict_for_test(1 << 20);
        cfg.chaos.crash_at_event = Some(crash_at);
        PmemPool::new(cfg)
    }

    #[test]
    fn event_counting_is_free_until_armed() {
        let p = strict_pool();
        w(&p, POff::new(4096), 1u64);
        p.persist_range(POff::new(4096), 8);
        assert_eq!(p.persistence_events(), 0, "no plan, no accounting");
        assert!(p.fault().is_none());
    }

    #[test]
    fn counting_pass_counts_without_crashing() {
        let p = faulted_pool(u64::MAX);
        let off = POff::new(4096);
        w(&p, off, 1u64); // 1 event
        p.clwb_range(off, 200); // 4 lines = 4 events
        p.sfence(); // 1 event
        assert_eq!(p.persistence_events(), 6);
        assert!(!p.is_poisoned());
        let p2 = p.crash();
        assert_eq!(r(&p2, off), 1);
    }

    #[test]
    fn poisoned_pool_freezes_durable_image() {
        // Plan: write(1) + clwb(1) + sfence(1) = 3 events make `a` durable;
        // everything after event 3 must be dropped.
        let p = faulted_pool(3);
        let a = POff::new(4096);
        let b = POff::new(8192);
        w(&p, a, 7u64);
        p.clwb(a);
        p.sfence();
        assert!(p.is_poisoned(), "plan trips exactly at event N");
        assert_eq!(p.fault(), Some(PmemFault::Crashed { at_event: 3 }));
        w(&p, b, 9u64);
        p.persist_range(b, 8); // dropped: pool already crashed
        let p2 = p.crash();
        assert_eq!(r(&p2, a), 7, "events 1..=3 took effect");
        assert_eq!(r(&p2, b), 0, "post-crash events dropped");
        assert!(p2.fault().is_none(), "restarted pool has a clean plan");
        assert_eq!(p2.stats().snapshot().injected_crashes, 0);
    }

    #[test]
    fn crash_point_can_land_inside_a_range_flush() {
        // write a (1) + write b (1) = 2 events; plan 3 lets exactly one of
        // the four clwb_range lines start its write-back.
        let p = faulted_pool(3);
        let a = POff::new(4096);
        let b = POff::new(4096 + 64);
        w(&p, a, 1);
        w(&p, b, 2);
        p.clwb_range(a, 256); // 4 lines, only the first survives the plan
        p.sfence(); // dropped (pool poisoned)
        let p2 = p.crash();
        assert_eq!(r(&p2, a), 0, "line flushed, never fenced");
        assert_eq!(r(&p2, b), 0);
    }

    #[test]
    fn dropped_fence_leaves_lines_pending_not_durable() {
        let p = faulted_pool(2); // write + clwb allowed, fence dropped
        let a = POff::new(4096);
        w(&p, a, 5u64);
        p.clwb(a);
        p.sfence();
        assert!(p.is_poisoned());
        let p2 = p.crash();
        assert_eq!(r(&p2, a), 0);
    }

    #[test]
    fn checked_ops_report_the_fault() {
        let p = faulted_pool(1);
        let a = POff::new(4096);
        assert!(p.try_write_bytes(a, &[1, 2, 3]).is_err(), "trips the plan");
        assert_eq!(
            p.try_clwb(a),
            Err(PmemFault::Crashed { at_event: 1 }),
            "already poisoned"
        );
        assert!(p.try_sfence().is_err());
        assert!(p.try_persist_range(a, 8).is_err());
        // The store itself still landed in the working image (caches).
        // SAFETY: `a` is in bounds; u8 has no alignment requirement.
        assert_eq!(unsafe { p.read::<u8>(a) }, 1);
    }

    #[test]
    fn torn_line_persists_a_prefix_only() {
        let mut cfg = PmemConfig::strict_for_test(1 << 20);
        cfg.chaos.torn_line_permille = 1000; // tear every pending line
        cfg.chaos.seed = 42;
        let p = PmemPool::new(cfg);
        let off = POff::new(4096); // line-aligned
        let full = [0xABu8; 64];
        p.write_bytes(off, &full);
        p.clwb(off);
        // No fence: the line is pending at crash time, so it tears.
        let p2 = p.crash();
        let mut got = [0u8; 64];
        p2.read_bytes(off, &mut got);
        let persisted = got.iter().take_while(|&&b| b == 0xAB).count();
        assert!(
            (8..64).contains(&persisted),
            "a torn line persists a strict, non-empty prefix (got {persisted} bytes)"
        );
        assert_eq!(persisted % 8, 0, "tears happen at ECC-word granularity");
        assert!(got[persisted..].iter().all(|&b| b == 0), "suffix lost");
        assert_eq!(p.stats().snapshot().torn_lines, 1);
    }

    #[test]
    fn fenced_lines_do_not_tear() {
        let mut cfg = PmemConfig::strict_for_test(1 << 20);
        cfg.chaos.torn_line_permille = 1000;
        let p = PmemPool::new(cfg);
        let off = POff::new(4096);
        p.write_bytes(off, &[0xCDu8; 64]);
        p.persist_range(off, 64); // fence drains it: no longer pending
        let p2 = p.crash();
        let mut got = [0u8; 64];
        p2.read_bytes(off, &mut got);
        assert!(got.iter().all(|&b| b == 0xCD), "fenced data is whole");
        assert_eq!(p.stats().snapshot().torn_lines, 0);
    }

    #[test]
    fn sweep_points_are_deterministic() {
        // Identical plans + identical single-threaded workloads must leave
        // identical durable images.
        let run = |crash_at: u64| -> Vec<u8> {
            let p = faulted_pool(crash_at);
            for i in 0..8u64 {
                let off = POff::new(4096 + i * 64);
                w(&p, off, i + 1);
                p.clwb(off);
                if i % 3 == 2 {
                    p.sfence();
                }
            }
            p.sfence();
            let crashed = p.crash();
            let mut img = vec![0u8; 4096];
            crashed.read_bytes(POff::new(4096), &mut img);
            img
        };
        for point in [0, 1, 5, 9, 13, 20] {
            assert_eq!(run(point), run(point), "crash point {point} not replayable");
        }
    }

    #[test]
    fn stall_parks_exactly_one_thread_and_releases() {
        let mut cfg = PmemConfig::strict_for_test(1 << 20);
        cfg.chaos.stall_at_event = Some(3);
        let p = PmemPool::new(cfg);
        let p2 = p.clone();
        let victim = std::thread::spawn(move || {
            let off = POff::new(4096);
            w(&p2, off, 1); // event 1
            p2.clwb(off); // event 2
            p2.sfence(); // event 3: parks inside the fence
            7u64
        });
        assert!(p.await_stalled(std::time::Duration::from_secs(10)));
        assert_eq!(p.stalled_count(), 1);
        // Peers keep full use of the pool while the victim is parked —
        // including the fence path the victim is parked inside of.
        let off2 = POff::new(8192);
        w(&p, off2, 9);
        p.persist_range(off2, 8);
        assert_eq!(p.stalled_count(), 1, "peer traffic must not unpark");
        p.release_stalled();
        assert_eq!(victim.join().unwrap(), 7);
        assert_eq!(p.stalled_count(), 0);
        assert_eq!(p.stats().snapshot().stalls_injected, 1);
        // Once released, the victim's fence completed normally: its line is
        // durable alongside the peer's.
        let crashed = p.crash();
        assert_eq!(r(&crashed, POff::new(4096)), 1);
        assert_eq!(r(&crashed, off2), 9);
    }

    #[test]
    fn poisoning_releases_a_parked_victim() {
        let mut cfg = PmemConfig::strict_for_test(1 << 20);
        cfg.chaos.stall_at_event = Some(2);
        cfg.chaos.crash_at_event = Some(5);
        let p = PmemPool::new(cfg);
        let p2 = p.clone();
        let victim = std::thread::spawn(move || {
            let off = POff::new(4096);
            w(&p2, off, 1);
            p2.clwb(off); // crosses event 2: parks
        });
        assert!(p.await_stalled(std::time::Duration::from_secs(10)));
        // Peer activity trips the crash plan; the victim must come back on
        // its own (a dead execution's threads cannot stay parked forever).
        for i in 0..4u64 {
            w(&p, POff::new(8192 + i * 8), i);
        }
        assert!(p.is_poisoned());
        victim.join().unwrap();
        assert_eq!(p.stalled_count(), 0);
    }

    #[test]
    fn explicit_crash_releases_a_parked_victim() {
        let mut cfg = PmemConfig::strict_for_test(1 << 20);
        cfg.chaos.stall_at_event = Some(1);
        let p = PmemPool::new(cfg);
        let p2 = p.clone();
        let victim = std::thread::spawn(move || w(&p2, POff::new(4096), 1));
        assert!(p.await_stalled(std::time::Duration::from_secs(10)));
        let crashed = p.crash();
        victim.join().unwrap();
        assert!(
            crashed.config().chaos.stall_at_event.is_none(),
            "the restarted machine must not inherit the stall plan"
        );
    }

    #[test]
    fn straggler_rolls_are_deterministic_and_calibrated() {
        assert_eq!(event_roll(42, 7), event_roll(42, 7));
        let hits = (0..10_000u64).filter(|&e| event_roll(42, e) < 100).count();
        assert!(
            (700..1300).contains(&hits),
            "a 100-permille plan should hit ~10% of events (got {hits}/10000)"
        );
    }

    #[test]
    fn straggler_mode_counts_events_and_stays_functional() {
        let mut cfg = PmemConfig::strict_for_test(1 << 20);
        cfg.chaos.straggler_permille = 1000;
        cfg.chaos.straggler_delay_us = 0;
        let p = PmemPool::new(cfg);
        let off = POff::new(4096);
        w(&p, off, 5);
        p.persist_range(off, 8);
        assert!(p.persistence_events() >= 3, "straggler mode arms counting");
        let p2 = p.crash();
        assert_eq!(r(&p2, off), 5);
    }
}
