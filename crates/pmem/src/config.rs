//! Pool configuration: size, crash-semantics mode, latency model, chaos.

/// Crash-semantics fidelity of the pool.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum PmemMode {
    /// Keep a durable shadow image: data survives [`crate::PmemPool::crash`]
    /// only if it was `clwb`'d and a subsequent `sfence` was issued by the
    /// same thread. Used by all crash-consistency tests.
    Strict,
    /// No shadow image; `clwb`/`sfence` only charge latency and update the
    /// statistics counters. Used by throughput benchmarks, where the cost of
    /// persistence instructions (not crash recovery) is the object of study.
    Fast,
}

/// Latency charged to persistence instructions, in nanoseconds.
///
/// Defaults approximate published Optane DC measurements (Izraelevitz et al.,
/// "Basic Performance Measurements of the Intel Optane DC Persistent Memory
/// Module"): a `CLWB` costs little to *issue* but the fence that drains it
/// pays the media write. We charge a small issue cost per flush plus a drain
/// cost per outstanding line at the fence, which reproduces the key behaviour
/// Montage exploits: batching flushes and moving the fence off the critical
/// path is much cheaper than flush+fence per operation.
///
/// Two kinds of cost are charged differently. Issue costs (`clwb_issue_ns`,
/// `fence_base_ns`, `media_read_ns`) are CPU time: the calling thread
/// busy-waits, exactly as the instruction would occupy its core. Drain costs
/// (`fence_per_line_ns` + `media_write_ns` per outstanding line) are *device*
/// time: the fence reserves that much time on the pool's serial drain queue
/// and sleeps until the reservation completes. On hardware an `SFENCE` stalls
/// only its thread while the DIMM's write-pending queue drains — other
/// threads keep running, and distinct DIMMs drain in parallel. Consequently
/// concurrent fences on one pool serialize behind its queue (shared write
/// bandwidth), while fences on different pools — e.g. the shards of a
/// multi-pool store — overlap fully.
#[derive(Clone, Copy, Debug)]
pub struct LatencyModel {
    /// Cost to issue one `clwb` (ns).
    pub clwb_issue_ns: u64,
    /// Cost per pending line drained by an `sfence` (ns).
    pub fence_per_line_ns: u64,
    /// Fixed cost of an `sfence` (ns), even with nothing pending.
    pub fence_base_ns: u64,
    /// Extra write cost per cache line written to NVM media, charged at
    /// drain time in addition to `fence_per_line_ns` (models Optane's
    /// ~3x-DRAM write latency / limited write bandwidth).
    pub media_write_ns: u64,
    /// Cost of a dependent read that misses CPU caches into NVM media
    /// (Optane reads are ~2-4x DRAM latency). Charged by
    /// [`crate::PmemPool::touch`], which pointer-chasing structures call
    /// once per node dereference.
    pub media_read_ns: u64,
    /// Device occupancy per 64-byte line of *bulk* payload reads, charged
    /// on the pool's drain queue by [`crate::PmemPool::media_read`]. Models
    /// a single DIMM's finite read bandwidth; bulk reads and fence drains
    /// contend for the same device, as they do on Optane hardware. Distinct
    /// from `media_read_ns`, the per-miss *latency* of a dependent pointer
    /// chase (a CPU stall, not queue occupancy).
    pub media_read_line_ns: u64,
}

impl LatencyModel {
    /// Latency model used for transient-DRAM baselines: everything free.
    pub const DRAM: LatencyModel = LatencyModel {
        clwb_issue_ns: 0,
        fence_per_line_ns: 0,
        fence_base_ns: 0,
        media_write_ns: 0,
        media_read_ns: 0,
        media_read_line_ns: 0,
    };

    /// Optane-like defaults.
    pub const OPTANE: LatencyModel = LatencyModel {
        clwb_issue_ns: 20,
        fence_per_line_ns: 60,
        fence_base_ns: 30,
        media_write_ns: 100,
        media_read_ns: 150,
        // ~2.5 GB/s of single-DIMM read bandwidth.
        media_read_line_ns: 25,
    };

    /// Zero-cost model (functional testing only).
    pub const ZERO: LatencyModel = LatencyModel {
        clwb_issue_ns: 0,
        fence_per_line_ns: 0,
        fence_base_ns: 0,
        media_write_ns: 0,
        media_read_ns: 0,
        media_read_line_ns: 0,
    };
}

impl Default for LatencyModel {
    fn default() -> Self {
        LatencyModel::OPTANE
    }
}

/// Optional adversarial behaviour for crash testing.
///
/// Real CPU caches may evict (and therefore persist) *any* dirty line at any
/// time, so recovery code must tolerate data reaching NVM that was never
/// explicitly flushed. With `spontaneous_evict_permille > 0`, a [`crate::PmemPool::crash`]
/// in `Strict` mode additionally persists a random subset of lines from the
/// working image before discarding it, modelling arbitrary evictions.
#[derive(Clone, Copy, Debug, Default)]
pub struct ChaosConfig {
    /// Per-line probability (in 1/1000) that an unflushed line is persisted
    /// anyway at crash time.
    pub spontaneous_evict_permille: u16,
    /// Per-line probability (in 1/1000) that a **pending** line (`clwb`'d
    /// but not yet fenced) is *torn* at crash time: only a prefix of the
    /// line, at 8-byte ECC-word granularity, reaches durable media. Models
    /// a power cut catching a write-back part-way through a line.
    pub torn_line_permille: u16,
    /// RNG seed for eviction and tearing choices (deterministic replay).
    pub seed: u64,
    /// Fault plan: `Some(n)` arms the persistence-event counter and poisons
    /// the pool once `n` events (stores, per-line flushes, fences) have
    /// taken effect. After that, flushes and fences are dropped — the
    /// durable image is frozen exactly as of event `n` — and the checked
    /// `try_*` pool operations return [`crate::PmemFault::Crashed`].
    /// `Some(u64::MAX)` counts events without ever crashing (used by sweep
    /// harnesses for their counting pass). Event accounting is skipped
    /// entirely when neither this nor [`ChaosConfig::stall_at_event`] is
    /// armed, keeping the hot path free of the counter.
    pub crash_at_event: Option<u64>,
    /// Stall plan: `Some(n)` parks the thread whose persistence-event charge
    /// crosses `n` — it blocks *inside* the flush/fence/store that crossed
    /// the threshold, mid-operation, until [`crate::PmemPool::release_stalled`]
    /// is called or the pool is poisoned by [`crate::PmemPool::crash`] / the
    /// crash plan tripping. Models a thread descheduled (page fault, signal,
    /// preemption) at the worst possible moment; liveness tests use it to
    /// prove other threads' `sync` completes while the victim is parked.
    /// Exactly one thread parks per pool (the first to cross).
    pub stall_at_event: Option<u64>,
    /// Straggler mode: per-event probability (in 1/1000) that the charging
    /// thread sleeps [`ChaosConfig::straggler_delay_us`] before proceeding.
    /// A randomized, milder cousin of [`ChaosConfig::stall_at_event`]: ops
    /// become slow rather than stuck, exercising the grace-window bypass in
    /// the epoch advance without ever requiring an external release. Rolls
    /// are seeded by [`ChaosConfig::seed`] and the event index, so a given
    /// (seed, workload) pair delays the same events on every run.
    pub straggler_permille: u16,
    /// Sleep duration, in microseconds, for each straggler roll that hits.
    pub straggler_delay_us: u32,
}

/// Full pool configuration.
#[derive(Clone, Copy, Debug)]
pub struct PmemConfig {
    /// Pool size in bytes (includes the root area).
    pub size: usize,
    /// Crash-semantics mode.
    pub mode: PmemMode,
    /// Latency model for persistence instructions.
    pub latency: LatencyModel,
    /// Adversarial eviction model (Strict mode only).
    pub chaos: ChaosConfig,
}

impl Default for PmemConfig {
    fn default() -> Self {
        PmemConfig {
            size: 64 << 20,
            mode: PmemMode::Fast,
            latency: LatencyModel::ZERO,
            chaos: ChaosConfig::default(),
        }
    }
}

impl PmemConfig {
    /// Strict-mode config with zero latency — the standard test configuration.
    pub fn strict_for_test(size: usize) -> Self {
        PmemConfig {
            size,
            mode: PmemMode::Strict,
            latency: LatencyModel::ZERO,
            chaos: ChaosConfig::default(),
        }
    }

    /// Fast-mode config with the Optane latency model — the standard
    /// benchmark configuration.
    pub fn bench_nvm(size: usize) -> Self {
        PmemConfig {
            size,
            mode: PmemMode::Fast,
            latency: LatencyModel::OPTANE,
            chaos: ChaosConfig::default(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_fast_and_free() {
        let c = PmemConfig::default();
        assert_eq!(c.mode, PmemMode::Fast);
        assert_eq!(c.latency.clwb_issue_ns, 0);
    }

    #[test]
    fn presets() {
        assert_eq!(PmemConfig::strict_for_test(1024).mode, PmemMode::Strict);
        let b = PmemConfig::bench_nvm(1024);
        assert_eq!(b.mode, PmemMode::Fast);
        assert!(b.latency.media_write_ns > 0);
    }
}
