//! Offset-based addressing for the persistent region.

use std::fmt;

/// Cache-line size assumed by the simulator (x86-64).
pub const CACHE_LINE: usize = 64;

/// Size of the reserved root area at the start of every pool.
///
/// Subsystems (allocator metadata, the Montage epoch clock, application roots)
/// store their persistent anchors here at well-known offsets so they can be
/// found again after a crash, playing the role of `pmemobj`-style root
/// objects.
///
/// Slot conventions in this workspace (one cache line each): 0 = Montage
/// format magic, 1 = Montage epoch clock, 2 = Montage application root,
/// 9 = Friedman-queue anchor, 10 = Pronto log/checkpoint anchor (baselines
/// assume a dedicated pool, so their slots may alias each other but never
/// Montage's).
pub const ROOT_AREA_SIZE: usize = 4096;

/// Number of 64-byte root slots in the root area.
pub const ROOT_SLOTS: usize = ROOT_AREA_SIZE / CACHE_LINE;

/// A persistent offset: the address of a byte *within* a [`crate::PmemPool`].
///
/// All pointers stored in persistent memory must be `POff`s (never virtual
/// addresses): after a crash the pool may be mapped at a different base, but
/// offsets remain meaningful. `POff(0)` is reserved as the persistent null.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct POff(u64);

impl POff {
    /// The persistent null pointer.
    pub const NULL: POff = POff(0);

    /// Creates an offset. Offset 0 is the null sentinel; constructing it via
    /// `new` is allowed but compares equal to [`POff::NULL`].
    #[inline]
    pub const fn new(off: u64) -> Self {
        POff(off)
    }

    /// Raw offset value.
    #[inline]
    pub const fn raw(self) -> u64 {
        self.0
    }

    /// True iff this is the persistent null.
    #[inline]
    pub const fn is_null(self) -> bool {
        self.0 == 0
    }

    /// Offset `bytes` past `self`.
    #[inline]
    pub const fn add(self, bytes: u64) -> Self {
        POff(self.0 + bytes)
    }

    /// Root-slot `i`'s offset (each slot is one cache line).
    #[inline]
    pub const fn root_slot(i: usize) -> Self {
        assert!(i < ROOT_SLOTS);
        POff((i * CACHE_LINE) as u64)
    }
}

impl fmt::Debug for POff {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_null() {
            write!(f, "POff(NULL)")
        } else {
            write!(f, "POff({:#x})", self.0)
        }
    }
}

/// Index of the cache line containing offset `off`.
#[inline]
pub fn line_of(off: u64) -> u64 {
    off / CACHE_LINE as u64
}

/// Number of cache lines spanned by `[off, off + len)`.
#[inline]
pub fn lines_spanned(off: u64, len: usize) -> u64 {
    if len == 0 {
        return 0;
    }
    let first = line_of(off);
    let last = line_of(off + len as u64 - 1);
    last - first + 1
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn null_is_zero() {
        assert!(POff::NULL.is_null());
        assert!(POff::new(0).is_null());
        assert!(!POff::new(64).is_null());
    }

    #[test]
    fn add_advances() {
        let p = POff::new(128);
        assert_eq!(p.add(64).raw(), 192);
    }

    #[test]
    fn root_slots_are_line_aligned() {
        for i in 0..ROOT_SLOTS {
            assert_eq!(POff::root_slot(i).raw() % CACHE_LINE as u64, 0);
        }
    }

    #[test]
    fn lines_spanned_boundaries() {
        assert_eq!(lines_spanned(0, 0), 0);
        assert_eq!(lines_spanned(0, 1), 1);
        assert_eq!(lines_spanned(0, 64), 1);
        assert_eq!(lines_spanned(0, 65), 2);
        assert_eq!(lines_spanned(63, 2), 2);
        assert_eq!(lines_spanned(64, 64), 1);
        assert_eq!(lines_spanned(60, 8), 2);
    }

    #[test]
    fn line_of_maps_within_line() {
        assert_eq!(line_of(0), 0);
        assert_eq!(line_of(63), 0);
        assert_eq!(line_of(64), 1);
    }
}
