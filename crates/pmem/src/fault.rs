//! Typed faults surfaced by a poisoned pool.

use std::fmt;

/// The error returned by the checked (`try_*`) pool operations once the
/// fault plan in [`crate::ChaosConfig`] has tripped.
///
/// A tripped plan models a power failure at a precise point in the
/// instruction stream: the durable image is frozen as of the crash point and
/// nothing issued afterwards can become durable. Execution on top of the
/// pool is allowed to continue (stores still land in the *working* image,
/// which a real crash would discard anyway), but cooperative code should
/// treat this error as "the machine is gone" and unwind without panicking.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum PmemFault {
    /// The pool reached `crash_at_event` persistence events and is poisoned.
    Crashed {
        /// The crash point from the fault plan (first `at_event` persistence
        /// events took effect; everything later was dropped).
        at_event: u64,
    },
}

impl fmt::Display for PmemFault {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PmemFault::Crashed { at_event } => {
                write!(f, "pool crashed at persistence event {at_event}")
            }
        }
    }
}

impl std::error::Error for PmemFault {}
