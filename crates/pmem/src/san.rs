//! `persist-san`: a pmemcheck/PMTest-style persistency sanitizer.
//!
//! Compiled only under the `persist-san` feature. Every cache line of the
//! pool carries a shadow state driven by the tracked entry points
//! ([`crate::PmemPool::write`], `clwb`, `clwb_range`, `sfence`):
//!
//! ```text
//! Clean ──write──▶ DirtyUnflushed ──clwb──▶ FlushedUnfenced ──sfence──▶ Durable
//!   ▲                                                                     │
//!   └───────────────────────── (restart) ────────────────────────────────┘
//! ```
//!
//! plus a `TransientDirty` state for stores declared non-durable by design
//! (allocator free-list links — see [`crate::PmemPool::write_transient`]),
//! which are exempt from the epoch-boundary check.
//!
//! Four violation classes are detected, each attributed to the offending
//! call site via `#[track_caller]` on the pool entry points:
//!
//! * [`SanClass::DirtyAtEpochBoundary`] — a tracked store was still
//!   `DirtyUnflushed` at an epoch boundary that should have made its epoch
//!   durable (the epoch advancer calls
//!   [`crate::PmemPool::san_epoch_boundary`] after its boundary fence). The
//!   check is generation-stamped: a line dirtied *before the previous*
//!   boundary must have been flushed by this one, which is exactly Montage's
//!   "epoch `e−1` is durable once the clock reads `e+1`" discipline.
//! * [`SanClass::RedundantClwb`] — `clwb` of a line that holds no unflushed
//!   store (already `FlushedUnfenced`/`Durable`, or never written). Not a
//!   correctness bug, but the dominant persistence *cost* per the MOD paper;
//!   reported with per-site counts for flush audits.
//! * [`SanClass::EmptySfence`] — a fence with no `FlushedUnfenced` line to
//!   drain anywhere in the pool. Pure overhead (also recorded, not denied:
//!   an idle epoch advance legitimately issues one).
//! * [`SanClass::RecoveryDirtyRead`] — during an explicitly declared
//!   recovery window ([`crate::PmemPool::san_begin_recovery`]), a read of a
//!   line whose content was **never made durable** before the crash cut
//!   (it was `DirtyUnflushed`/`FlushedUnfenced` when [`crate::PmemPool::crash`]
//!   ran and no earlier fence ever drained it). Recovery code that *validates*
//!   before trusting — checksummed header probes — opts out per read scope
//!   via [`crate::PmemPool::san_probe`].
//!
//! Deny mode (the default when the feature is on; per-pool
//! [`crate::PmemPool::san_set_deny`]) panics at the violation site for the
//! two correctness classes. The two cost classes are always report-only,
//! queryable through [`SanReport`].

use std::cell::Cell;
use std::collections::{HashMap, HashSet};
use std::panic::Location;
use std::sync::atomic::{AtomicBool, Ordering};

use parking_lot::Mutex;

use crate::layout::CACHE_LINE;

/// Violation classes, in decreasing severity.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum SanClass {
    /// A store was still unflushed at an epoch boundary that declared its
    /// epoch durable. Correctness: the store can be lost after the epoch it
    /// belongs to is advertised as recoverable.
    DirtyAtEpochBoundary,
    /// Recovery-time read of a line whose pre-crash content never became
    /// durable. Correctness: recovery is consuming garbage.
    RecoveryDirtyRead,
    /// `clwb` of a line with no unflushed store. Cost only.
    RedundantClwb,
    /// `sfence` with nothing to drain. Cost only.
    EmptySfence,
}

impl SanClass {
    /// Whether deny mode panics on this class.
    pub fn is_correctness(self) -> bool {
        matches!(
            self,
            SanClass::DirtyAtEpochBoundary | SanClass::RecoveryDirtyRead
        )
    }
}

/// A source location captured from `#[track_caller]` metadata.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct SanSite {
    pub file: &'static str,
    pub line: u32,
    pub column: u32,
}

impl SanSite {
    fn from_caller(loc: &'static Location<'static>) -> SanSite {
        SanSite {
            file: loc.file(),
            line: loc.line(),
            column: loc.column(),
        }
    }
}

impl std::fmt::Display for SanSite {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}:{}:{}", self.file, self.line, self.column)
    }
}

/// One recorded violation.
#[derive(Clone, Copy, Debug)]
pub struct SanViolation {
    pub class: SanClass,
    /// Cache-line index (`offset / 64`) of the affected line.
    pub line: u64,
    /// The offending call site: the unflushed store for
    /// [`SanClass::DirtyAtEpochBoundary`], the reading site for
    /// [`SanClass::RecoveryDirtyRead`], the flush/fence site for the cost
    /// classes.
    pub site: SanSite,
    /// A related site, when one exists: the previous flush for
    /// [`SanClass::RedundantClwb`], the never-durable store for
    /// [`SanClass::RecoveryDirtyRead`].
    pub related: Option<SanSite>,
}

/// Point-in-time copy of everything the sanitizer knows. Obtained from
/// [`crate::PmemPool::san_report`].
#[derive(Clone, Debug)]
pub struct SanReport {
    /// Recorded violations, capped at [`MAX_VIOLATIONS`]; counts keep
    /// accumulating past the cap.
    pub violations: Vec<SanViolation>,
    counts: [(SanClass, u64); 4],
    /// Redundant-`clwb` occurrences keyed by flush call site (uncapped) —
    /// the raw material of a flush audit.
    pub redundant_by_site: Vec<(SanSite, u64)>,
}

impl SanReport {
    /// Total occurrences of `class` (not capped).
    pub fn count(&self, class: SanClass) -> u64 {
        self.counts
            .iter()
            .find(|(c, _)| *c == class)
            .map_or(0, |&(_, n)| n)
    }

    /// True when no *correctness-class* violation was recorded. Cost
    /// classes (redundant flushes, empty fences) do not fail this.
    pub fn correctness_clean(&self) -> bool {
        self.count(SanClass::DirtyAtEpochBoundary) == 0
            && self.count(SanClass::RecoveryDirtyRead) == 0
    }

    /// Violations of one class.
    pub fn of(&self, class: SanClass) -> impl Iterator<Item = &SanViolation> {
        self.violations.iter().filter(move |v| v.class == class)
    }
}

/// Recorded-violation cap (counts are exact past it; details are dropped).
pub const MAX_VIOLATIONS: usize = 256;

// Shadow states.
const CLEAN: u8 = 0;
const TRANSIENT: u8 = 1;
const DIRTY: u8 = 2;
const FLUSHED: u8 = 3;
const DURABLE: u8 = 4;

/// Site id 0 is reserved for "unknown".
const SITE_UNKNOWN: u16 = 0;

#[derive(Clone, Copy)]
struct LineShadow {
    state: u8,
    /// The line has been durable (fenced) at least once in this pool's
    /// history — its durable-image content is a meaningful previous version,
    /// so a post-crash read of it is prefix semantics, not garbage.
    ever_durable: bool,
    /// Boundary generation of the last tracked store.
    gen: u32,
    write_site: u16,
    flush_site: u16,
}

const LINE_INIT: LineShadow = LineShadow {
    state: CLEAN,
    ever_durable: false,
    gen: 0,
    write_site: SITE_UNKNOWN,
    flush_site: SITE_UNKNOWN,
};

struct SanInner {
    lines: Box<[LineShadow]>,
    /// Current boundary generation (bumped by `san_epoch_boundary`).
    gen: u32,
    /// Interned call sites; `LineShadow` stores u16 indices into this.
    sites: Vec<SanSite>,
    site_ids: HashMap<SanSite, u16>,
    /// Lines currently in state `DIRTY` (removed once reported, so a stale
    /// store is named once per offending write, not once per boundary).
    dirty: HashSet<u64>,
    /// Lines currently in state `FLUSHED` (drained wholesale by a fence,
    /// mirroring the pool's asynchronous-write-back pending set).
    flushed: HashSet<u64>,
    /// Lines whose content was never durable at the last crash cut; armed by
    /// `for_restart`, consumed by recovery-window reads.
    suspects: HashSet<u64>,
    counts: [u64; 4],
    violations: Vec<SanViolation>,
    redundant_by_site: HashMap<u16, u64>,
}

impl SanInner {
    fn intern(&mut self, site: SanSite) -> u16 {
        if let Some(&id) = self.site_ids.get(&site) {
            return id;
        }
        if self.sites.len() >= u16::MAX as usize {
            return SITE_UNKNOWN;
        }
        let id = self.sites.len() as u16;
        self.sites.push(site);
        self.site_ids.insert(site, id);
        id
    }

    fn site(&self, id: u16) -> Option<SanSite> {
        if id == SITE_UNKNOWN {
            None
        } else {
            self.sites.get(id as usize).copied()
        }
    }

    fn class_idx(class: SanClass) -> usize {
        match class {
            SanClass::DirtyAtEpochBoundary => 0,
            SanClass::RecoveryDirtyRead => 1,
            SanClass::RedundantClwb => 2,
            SanClass::EmptySfence => 3,
        }
    }

    fn record(&mut self, v: SanViolation) {
        self.counts[Self::class_idx(v.class)] += 1;
        if self.violations.len() < MAX_VIOLATIONS {
            self.violations.push(v);
        }
    }
}

/// Per-pool sanitizer state. Lives in the pool's `Inner`.
pub(crate) struct SanState {
    inner: Mutex<SanInner>,
    /// Panic on correctness-class violations (default on).
    deny: AtomicBool,
    /// A recovery window is open (suspect reads are checked).
    recovery: AtomicBool,
}

thread_local! {
    /// Probe-scope nesting depth: reads inside a probe scope are exempt from
    /// the recovery dirty-read check (the caller validates before trusting).
    static PROBE_DEPTH: Cell<u32> = const { Cell::new(0) };
}

pub(crate) fn in_probe_scope() -> bool {
    PROBE_DEPTH.with(|d| d.get() > 0)
}

/// RAII guard for a probe scope; see [`crate::PmemPool::san_probe`].
pub(crate) struct ProbeGuard;

impl ProbeGuard {
    pub(crate) fn enter() -> ProbeGuard {
        PROBE_DEPTH.with(|d| d.set(d.get() + 1));
        ProbeGuard
    }
}

impl Drop for ProbeGuard {
    fn drop(&mut self) {
        PROBE_DEPTH.with(|d| d.set(d.get() - 1));
    }
}

impl SanState {
    pub(crate) fn new(pool_size: usize) -> SanState {
        let nlines = pool_size / CACHE_LINE;
        SanState {
            inner: Mutex::new(SanInner {
                lines: vec![LINE_INIT; nlines].into_boxed_slice(),
                gen: 1,
                sites: vec![SanSite {
                    file: "<unknown>",
                    line: 0,
                    column: 0,
                }],
                site_ids: HashMap::new(),
                dirty: HashSet::new(),
                flushed: HashSet::new(),
                suspects: HashSet::new(),
                counts: [0; 4],
                violations: Vec::new(),
                redundant_by_site: HashMap::new(),
            }),
            deny: AtomicBool::new(true),
            recovery: AtomicBool::new(false),
        }
    }

    pub(crate) fn set_deny(&self, deny: bool) {
        self.deny.store(deny, Ordering::Relaxed);
    }

    fn denies(&self) -> bool {
        self.deny.load(Ordering::Relaxed)
    }

    pub(crate) fn begin_recovery(&self) {
        self.recovery.store(true, Ordering::Release);
    }

    pub(crate) fn end_recovery(&self) {
        self.recovery.store(false, Ordering::Release);
    }

    pub(crate) fn in_recovery(&self) -> bool {
        self.recovery.load(Ordering::Acquire)
    }

    /// Tracked store of `[off, off+len)`.
    pub(crate) fn on_write(&self, off: u64, len: usize, loc: &'static Location<'static>) {
        if len == 0 {
            return;
        }
        let site = SanSite::from_caller(loc);
        let mut s = self.inner.lock();
        let id = s.intern(site);
        let gen = s.gen;
        for line in span(off, len) {
            let Some(sh) = s.lines.get(line as usize) else {
                continue;
            };
            if sh.state == FLUSHED {
                s.flushed.remove(&line);
            }
            let sh = &mut s.lines[line as usize];
            sh.state = DIRTY;
            sh.gen = gen;
            sh.write_site = id;
            s.dirty.insert(line);
            // Fresh content: reading it post-crash is no longer a stale read
            // of the pre-crash cut.
            s.suspects.remove(&line);
        }
    }

    /// Store that is non-durable *by design* (never flushed, reconstructed
    /// on recovery): exempt from the boundary check unless the line also
    /// holds an unflushed tracked store.
    pub(crate) fn on_write_transient(&self, off: u64, len: usize) {
        if len == 0 {
            return;
        }
        let mut s = self.inner.lock();
        for line in span(off, len) {
            let Some(sh) = s.lines.get(line as usize) else {
                continue;
            };
            // A pending tracked store on the same line still has to reach
            // its flush — keep DIRTY. Everything else becomes transient.
            if sh.state != DIRTY {
                if sh.state == FLUSHED {
                    s.flushed.remove(&line);
                }
                s.lines[line as usize].state = TRANSIENT;
            }
        }
    }

    /// `clwb` of `n` lines starting at `first`, of which the first `eff`
    /// actually take effect (the rest were cut off by the fault plan).
    pub(crate) fn on_clwb(&self, first: u64, n: u64, eff: u64, loc: &'static Location<'static>) {
        let site = SanSite::from_caller(loc);
        let mut s = self.inner.lock();
        let id = s.intern(site);
        for i in 0..eff.min(n) {
            let line = first + i;
            let Some(&sh) = s.lines.get(line as usize) else {
                continue;
            };
            match sh.state {
                DIRTY | TRANSIENT => {
                    s.dirty.remove(&line);
                }
                // No unflushed store on this line: the flush is pure cost.
                CLEAN | FLUSHED | DURABLE => {
                    let related = s.site(sh.flush_site);
                    s.record(SanViolation {
                        class: SanClass::RedundantClwb,
                        line,
                        site,
                        related,
                    });
                    *s.redundant_by_site.entry(id).or_insert(0) += 1;
                }
                _ => unreachable!(),
            }
            let sh = &mut s.lines[line as usize];
            sh.state = FLUSHED;
            sh.flush_site = id;
            s.flushed.insert(line);
        }
    }

    /// Effective `sfence`: drains every `FlushedUnfenced` line (the pool's
    /// pending set is global — see the `pending` field docs in `pool.rs`).
    pub(crate) fn on_sfence(&self, loc: &'static Location<'static>) {
        let site = SanSite::from_caller(loc);
        let mut s = self.inner.lock();
        if s.flushed.is_empty() {
            s.record(SanViolation {
                class: SanClass::EmptySfence,
                line: 0,
                site,
                related: None,
            });
            return;
        }
        let drained = std::mem::take(&mut s.flushed);
        for line in drained {
            let sh = &mut s.lines[line as usize];
            sh.state = DURABLE;
            sh.ever_durable = true;
        }
    }

    /// The epoch advancer's boundary assertion: every tracked store stamped
    /// before the *previous* boundary must have been flushed by now.
    pub(crate) fn on_epoch_boundary(&self, loc: &'static Location<'static>) {
        let mut s = self.inner.lock();
        let gen = s.gen;
        let mut stale: Vec<u64> = s
            .dirty
            .iter()
            .copied()
            .filter(|&l| s.lines[l as usize].gen < gen)
            .collect();
        // HashSet order is nondeterministic; report in line order so the
        // named violation is stable run to run.
        stale.sort_unstable();
        let mut first: Option<(u64, SanSite)> = None;
        for line in stale {
            // Report each offending store once, not once per boundary.
            s.dirty.remove(&line);
            let site = s
                .site(s.lines[line as usize].write_site)
                .unwrap_or(SanSite::from_caller(loc));
            if first.is_none() {
                first = Some((line, site));
            }
            s.record(SanViolation {
                class: SanClass::DirtyAtEpochBoundary,
                line,
                site,
                related: None,
            });
        }
        s.gen += 1;
        drop(s);
        if let Some((line, site)) = first {
            if self.denies() {
                panic!(
                    "persist-san: line {line} (offset {:#x}) was written at {site} \
                     but never flushed before the epoch boundary declared it durable",
                    line * CACHE_LINE as u64
                );
            }
        }
    }

    /// Read of `[off, off+len)`. Only checked inside a recovery window,
    /// outside probe scopes.
    pub(crate) fn on_read(&self, off: u64, len: usize, loc: &'static Location<'static>) {
        if len == 0 || !self.in_recovery() || in_probe_scope() {
            return;
        }
        let site = SanSite::from_caller(loc);
        let mut first: Option<(u64, Option<SanSite>)> = None;
        {
            let mut s = self.inner.lock();
            for line in span(off, len) {
                if !s.suspects.remove(&line) {
                    continue;
                }
                let related = s.site(s.lines.get(line as usize).map_or(0, |sh| sh.write_site));
                if first.is_none() {
                    first = Some((line, related));
                }
                s.record(SanViolation {
                    class: SanClass::RecoveryDirtyRead,
                    line,
                    site,
                    related,
                });
            }
        }
        if let Some((line, related)) = first {
            if self.denies() {
                let wrote = related.map_or(String::from("an untracked site"), |s| s.to_string());
                panic!(
                    "persist-san: recovery-time read at {site} of line {line} (offset {:#x}), \
                     whose pre-crash content was never durable (last written at {wrote})",
                    line * CACHE_LINE as u64
                );
            }
        }
    }

    /// Arms the shadow state of the pool that replaces this one after a
    /// crash: everything starts clean, and lines that were `DirtyUnflushed`
    /// or `FlushedUnfenced` at the cut — and had *never* been fenced before —
    /// become recovery-read suspects (their durable-image bytes are not any
    /// committed version, they are whatever was there before the store).
    pub(crate) fn arm_restart(&self, new: &SanState) {
        let s = self.inner.lock();
        {
            let mut n = new.inner.lock();
            for (i, sh) in s.lines.iter().enumerate() {
                if i >= n.lines.len() {
                    break;
                }
                let lost = sh.state == DIRTY || sh.state == FLUSHED;
                let carried = s.suspects.contains(&(i as u64));
                if (lost || carried) && !sh.ever_durable {
                    n.suspects.insert(i as u64);
                    // Carry the doomed store's site so the eventual
                    // dirty-read report can name it.
                    if let Some(site) = s.site(sh.write_site) {
                        let id = n.intern(site);
                        n.lines[i].write_site = id;
                    }
                }
                // Durable-image content carries over; so does the fact that
                // a line has (n)ever held a fenced version.
                n.lines[i].ever_durable = sh.ever_durable;
            }
        }
        new.set_deny(self.denies());
    }

    /// Marks every line as having held a durable version (used when a pool
    /// is materialized from a snapshot file, whose entire content *is* the
    /// durable image).
    pub(crate) fn mark_all_durable(&self) {
        let mut s = self.inner.lock();
        for sh in s.lines.iter_mut() {
            sh.ever_durable = true;
        }
        s.suspects.clear();
    }

    pub(crate) fn report(&self) -> SanReport {
        let s = self.inner.lock();
        let mut by_site: Vec<(SanSite, u64)> = s
            .redundant_by_site
            .iter()
            .map(|(&id, &n)| (s.site(id).unwrap_or(s.sites[0]), n))
            .collect();
        by_site.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.file.cmp(b.0.file)));
        SanReport {
            violations: s.violations.clone(),
            counts: [
                (SanClass::DirtyAtEpochBoundary, s.counts[0]),
                (SanClass::RecoveryDirtyRead, s.counts[1]),
                (SanClass::RedundantClwb, s.counts[2]),
                (SanClass::EmptySfence, s.counts[3]),
            ],
            redundant_by_site: by_site,
        }
    }

    /// Clears recorded violations and counters (shadow line states are
    /// kept). Audits use this to delimit a measurement window.
    pub(crate) fn reset_counts(&self) {
        let mut s = self.inner.lock();
        s.counts = [0; 4];
        s.violations.clear();
        s.redundant_by_site.clear();
    }
}

fn span(off: u64, len: usize) -> std::ops::RangeInclusive<u64> {
    let first = off / CACHE_LINE as u64;
    let last = (off + len as u64 - 1) / CACHE_LINE as u64;
    first..=last
}
