//! Persistence-instruction statistics.

use std::sync::atomic::{AtomicU64, Ordering};

/// Counters for persistence activity on a pool.
///
/// All counters are monotonically increasing and updated with relaxed
/// atomics; they are approximate under heavy concurrency but exact enough for
/// the flush/fence accounting the benchmarks report.
#[derive(Debug, Default)]
pub struct PmemStats {
    /// Number of `clwb` instructions issued.
    pub clwbs: AtomicU64,
    /// Number of `sfence` instructions issued.
    pub sfences: AtomicU64,
    /// Number of cache lines actually drained to durable media.
    pub lines_drained: AtomicU64,
    /// Number of simulated crashes.
    pub crashes: AtomicU64,
}

impl PmemStats {
    pub(crate) fn on_clwb(&self) {
        self.clwbs.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn on_sfence(&self, drained: u64) {
        self.sfences.fetch_add(1, Ordering::Relaxed);
        self.lines_drained.fetch_add(drained, Ordering::Relaxed);
    }

    pub(crate) fn on_crash(&self) {
        self.crashes.fetch_add(1, Ordering::Relaxed);
    }

    /// A labelled point-in-time copy of all counters.
    pub fn snapshot(&self) -> StatsSnapshot {
        StatsSnapshot {
            clwbs: self.clwbs.load(Ordering::Relaxed),
            sfences: self.sfences.load(Ordering::Relaxed),
            lines_drained: self.lines_drained.load(Ordering::Relaxed),
            crashes: self.crashes.load(Ordering::Relaxed),
        }
    }
}

/// A point-in-time copy of [`PmemStats`], with every counter named (the
/// former positional `(u64, u64, u64)` tuple silently omitted `crashes`).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct StatsSnapshot {
    pub clwbs: u64,
    pub sfences: u64,
    pub lines_drained: u64,
    pub crashes: u64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate() {
        let s = PmemStats::default();
        s.on_clwb();
        s.on_clwb();
        s.on_sfence(5);
        s.on_crash();
        assert_eq!(
            s.snapshot(),
            StatsSnapshot {
                clwbs: 2,
                sfences: 1,
                lines_drained: 5,
                crashes: 1,
            }
        );
    }
}
