//! Persistence-instruction statistics.

use std::sync::atomic::{AtomicU64, Ordering};

/// Counters for persistence activity on a pool.
///
/// All counters are monotonically increasing and updated with relaxed
/// atomics; they are approximate under heavy concurrency but exact enough for
/// the flush/fence accounting the benchmarks report.
#[derive(Debug, Default)]
pub struct PmemStats {
    /// Number of `clwb` instructions issued.
    pub clwbs: AtomicU64,
    /// Number of `sfence` instructions issued.
    pub sfences: AtomicU64,
    /// Number of cache lines actually drained to durable media.
    pub lines_drained: AtomicU64,
    /// Number of simulated crashes.
    pub crashes: AtomicU64,
    /// Crashes injected by a fault plan tripping (as opposed to explicit
    /// [`crate::PmemPool::crash`] calls, which `crashes` counts).
    pub injected_crashes: AtomicU64,
    /// Pending lines torn (partially persisted) at crash time by
    /// [`crate::ChaosConfig::torn_line_permille`].
    pub torn_lines: AtomicU64,
    /// Threads parked by the stall fault plan
    /// ([`crate::ChaosConfig::stall_at_event`]).
    pub stalls_injected: AtomicU64,
    /// Payloads quarantined by recovery code running on top of the pool
    /// (reported via [`PmemStats::on_quarantine`]).
    pub quarantined_payloads: AtomicU64,
}

impl PmemStats {
    pub(crate) fn on_clwb(&self) {
        self.clwbs.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn on_sfence(&self, drained: u64) {
        self.sfences.fetch_add(1, Ordering::Relaxed);
        self.lines_drained.fetch_add(drained, Ordering::Relaxed);
    }

    pub(crate) fn on_crash(&self) {
        self.crashes.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn on_injected_crash(&self) {
        self.injected_crashes.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn on_torn_line(&self) {
        self.torn_lines.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn on_stall(&self) {
        self.stalls_injected.fetch_add(1, Ordering::Relaxed);
    }

    /// Records `n` payloads quarantined by a recovery pass. Public because
    /// the quarantining happens in the layers above the pool (Montage
    /// recovery), but the counter lives here so every consumer of pool
    /// statistics — benches, the kv server's `stats` command — sees it.
    pub fn on_quarantine(&self, n: u64) {
        self.quarantined_payloads.fetch_add(n, Ordering::Relaxed);
    }

    /// A labelled point-in-time copy of all counters.
    pub fn snapshot(&self) -> StatsSnapshot {
        StatsSnapshot {
            clwbs: self.clwbs.load(Ordering::Relaxed),
            sfences: self.sfences.load(Ordering::Relaxed),
            lines_drained: self.lines_drained.load(Ordering::Relaxed),
            crashes: self.crashes.load(Ordering::Relaxed),
            injected_crashes: self.injected_crashes.load(Ordering::Relaxed),
            torn_lines: self.torn_lines.load(Ordering::Relaxed),
            stalls_injected: self.stalls_injected.load(Ordering::Relaxed),
            quarantined_payloads: self.quarantined_payloads.load(Ordering::Relaxed),
        }
    }
}

/// A point-in-time copy of [`PmemStats`], with every counter named (the
/// former positional `(u64, u64, u64)` tuple silently omitted `crashes`).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct StatsSnapshot {
    pub clwbs: u64,
    pub sfences: u64,
    pub lines_drained: u64,
    pub crashes: u64,
    pub injected_crashes: u64,
    pub torn_lines: u64,
    pub stalls_injected: u64,
    pub quarantined_payloads: u64,
}

impl std::ops::Add for StatsSnapshot {
    type Output = StatsSnapshot;

    fn add(self, rhs: StatsSnapshot) -> StatsSnapshot {
        StatsSnapshot {
            clwbs: self.clwbs + rhs.clwbs,
            sfences: self.sfences + rhs.sfences,
            lines_drained: self.lines_drained + rhs.lines_drained,
            crashes: self.crashes + rhs.crashes,
            injected_crashes: self.injected_crashes + rhs.injected_crashes,
            torn_lines: self.torn_lines + rhs.torn_lines,
            stalls_injected: self.stalls_injected + rhs.stalls_injected,
            quarantined_payloads: self.quarantined_payloads + rhs.quarantined_payloads,
        }
    }
}

impl std::iter::Sum for StatsSnapshot {
    /// Merges per-pool snapshots into fleet-wide counters — the sharded
    /// store's `stats` fan-out aggregates one snapshot per shard pool.
    fn sum<I: Iterator<Item = StatsSnapshot>>(iter: I) -> StatsSnapshot {
        iter.fold(StatsSnapshot::default(), |a, b| a + b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate() {
        let s = PmemStats::default();
        s.on_clwb();
        s.on_clwb();
        s.on_sfence(5);
        s.on_crash();
        s.on_injected_crash();
        s.on_torn_line();
        s.on_stall();
        s.on_quarantine(3);
        assert_eq!(
            s.snapshot(),
            StatsSnapshot {
                clwbs: 2,
                sfences: 1,
                lines_drained: 5,
                crashes: 1,
                injected_crashes: 1,
                torn_lines: 1,
                stalls_injected: 1,
                quarantined_payloads: 3,
            }
        );
    }
}
