//! # pmem — simulated byte-addressable persistent memory
//!
//! This crate stands in for the Intel Optane DC persistent-memory DIMMs (plus
//! ext4-DAX mapping) used by the Montage paper. It provides:
//!
//! * a [`PmemPool`]: a large region of memory addressed by **offsets**
//!   ([`POff`]) rather than virtual addresses, so "pointers" stored inside the
//!   region remain valid when the region is re-mapped after a crash;
//! * explicit persistence primitives — [`PmemPool::clwb`] (cache-line
//!   write-back) and [`PmemPool::sfence`] (store fence / write-back drain) —
//!   matching the x86 instructions persistent-memory code must issue;
//! * a **crash simulator**: in [`PmemMode::Strict`] the pool keeps a separate
//!   *durable image* that only receives data through `clwb` + `sfence`.
//!   [`PmemPool::crash`] discards everything else, exactly as a power failure
//!   discards the contents of volatile CPU caches;
//! * an **Optane-style latency model** charging configurable costs to flushes
//!   and fences, so that throughput benchmarks built on the simulator show the
//!   same *relative* cost of persistence instructions as real hardware.
//!
//! ## Why this substitution is faithful
//!
//! Montage's contribution is about *where* write-backs and fences are placed
//! (off the application's critical path) and *what* must be persistent at all
//! (only semantic payloads). Both properties are observable on this simulator:
//! the latency model charges for every `clwb`/`sfence` exactly where it is
//! issued, and `Strict` mode loses any line that was never flushed, so the
//! crash-consistency tests exercise real recovery logic rather than trusting
//! the implementation.
//!
//! ## Example
//!
//! ```
//! use pmem::{PmemPool, PmemConfig, PmemMode, POff, CACHE_LINE};
//!
//! let pool = PmemPool::new(PmemConfig { size: 1 << 20, mode: PmemMode::Strict, ..Default::default() });
//! let off = POff::new(4096);
//! unsafe { pool.write(off, &1234u64) };
//! pool.clwb_range(off, 8);
//! pool.sfence();
//! let pool = pool.crash();                 // power failure
//! let v: u64 = unsafe { pool.read(off) };  // survives: it was flushed + fenced
//! assert_eq!(v, 1234);
//! ```

mod config;
mod fault;
mod layout;
mod pool;
#[cfg(feature = "persist-san")]
pub mod san;
mod stats;

pub use config::{ChaosConfig, LatencyModel, PmemConfig, PmemMode};
pub use fault::PmemFault;
pub use layout::{line_of, lines_spanned, POff, CACHE_LINE, ROOT_AREA_SIZE, ROOT_SLOTS};
pub use pool::PmemPool;
#[cfg(feature = "persist-san")]
pub use san::{SanClass, SanReport, SanSite, SanViolation, MAX_VIOLATIONS};
pub use stats::{PmemStats, StatsSnapshot};
