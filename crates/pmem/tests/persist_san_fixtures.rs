//! Seeded-bug fixtures for the `persist-san` sanitizer: four deliberately
//! broken mini-protocols, one per violation class, each asserted to be
//! detected with the correct class *and* the correct call site — plus the
//! negative space (correct protocols, probe scopes, transient stores) that
//! must stay quiet.

#![cfg(feature = "persist-san")]

use pmem::{POff, PmemConfig, PmemPool, SanClass};

fn pool() -> PmemPool {
    let p = PmemPool::new(PmemConfig::strict_for_test(1 << 20));
    // Fixtures inspect reports; deny mode gets its own dedicated tests.
    p.san_set_deny(false);
    p
}

const FIXTURE_FILE: &str = "persist_san_fixtures.rs";

// ---- fixture 1: missing flush ----------------------------------------------

#[test]
fn missing_flush_is_dirty_at_the_boundary_and_names_the_store() {
    let p = pool();
    let off = POff::new(4096);
    let write_line = line!() + 2;
    // SAFETY: `off` is 8-aligned, in bounds, and the pool is not shared.
    unsafe { p.write(off, &1u64) };
    // Bug: no clwb. The store's epoch ends at the first boundary; the second
    // boundary declares that epoch durable, which is when the check fires.
    p.san_epoch_boundary();
    let r = p.san_report();
    assert_eq!(
        r.count(SanClass::DirtyAtEpochBoundary),
        0,
        "one boundary later the store may still be legitimately in flight"
    );
    p.san_epoch_boundary();
    let r = p.san_report();
    assert_eq!(r.count(SanClass::DirtyAtEpochBoundary), 1);
    let v = r.of(SanClass::DirtyAtEpochBoundary).next().unwrap();
    assert!(v.site.file.ends_with(FIXTURE_FILE), "site = {}", v.site);
    assert_eq!(
        v.site.line, write_line,
        "violation names the unflushed store"
    );

    // Reported once per offending store, not once per boundary.
    p.san_epoch_boundary();
    assert_eq!(p.san_report().count(SanClass::DirtyAtEpochBoundary), 1);
}

#[test]
fn flushed_in_time_store_is_not_flagged() {
    let p = pool();
    let off = POff::new(4096);
    // SAFETY: `off` is 8-aligned, in bounds, and the pool is not shared.
    unsafe { p.write(off, &1u64) };
    p.san_epoch_boundary();
    // Flushed during the grace epoch — exactly how Montage's buffered
    // write-backs behave — so the declaring boundary finds it clean.
    p.persist_range(off, 8);
    p.san_epoch_boundary();
    p.san_epoch_boundary();
    let r = p.san_report();
    assert_eq!(r.count(SanClass::DirtyAtEpochBoundary), 0);
}

#[test]
fn transient_stores_are_exempt_from_the_boundary_check() {
    let p = pool();
    let off = POff::new(8192);
    // SAFETY: `off` is 8-aligned, in bounds, and the pool is not shared.
    unsafe { p.write_transient(off, &7u64) };
    p.san_epoch_boundary();
    p.san_epoch_boundary();
    assert_eq!(p.san_report().count(SanClass::DirtyAtEpochBoundary), 0);
}

// ---- fixture 2: double flush -----------------------------------------------

#[test]
// lint: allow(flush-no-fence): the fixture exercises flush tracking only and deliberately never fences
fn double_flush_is_redundant_and_names_both_sites() {
    let p = pool();
    let off = POff::new(4096);
    // SAFETY: `off` is 8-aligned, in bounds, and the pool is not shared.
    unsafe { p.write(off, &1u64) };
    let first_line = line!() + 1;
    p.clwb(off);
    let second_line = line!() + 2;
    // Bug: nothing dirtied the line since the flush above.
    p.clwb(off);
    let r = p.san_report();
    assert_eq!(r.count(SanClass::RedundantClwb), 1);
    let v = r.of(SanClass::RedundantClwb).next().unwrap();
    assert!(v.site.file.ends_with(FIXTURE_FILE), "site = {}", v.site);
    assert_eq!(v.site.line, second_line, "the *second* flush is the waste");
    let related = v.related.expect("previous flush site is attached");
    assert_eq!(related.line, first_line);

    // The per-site audit counter sees it too.
    let (site, n) = r.redundant_by_site[0];
    assert_eq!(site.line, second_line);
    assert_eq!(n, 1);
}

#[test]
// lint: allow(flush-no-fence): the fixture exercises flush tracking only and deliberately never fences
fn rewrite_between_flushes_is_not_redundant() {
    let p = pool();
    let off = POff::new(4096);
    // SAFETY: `off` is 8-aligned, in bounds, and the pool is not shared.
    unsafe { p.write(off, &1u64) };
    p.clwb(off);
    // SAFETY: as above.
    unsafe { p.write(off, &2u64) }; // re-dirtied: the second flush is earned
    p.clwb(off);
    assert_eq!(p.san_report().count(SanClass::RedundantClwb), 0);
}

// ---- fixture 3: empty fence ------------------------------------------------

#[test]
fn empty_fence_is_flagged_with_its_site() {
    let p = pool();
    let fence_line = line!() + 2;
    // Bug: nothing was clwb'd since the last drain — pure ordering overhead.
    p.sfence();
    let r = p.san_report();
    assert_eq!(r.count(SanClass::EmptySfence), 1);
    let v = r.of(SanClass::EmptySfence).next().unwrap();
    assert!(v.site.file.ends_with(FIXTURE_FILE), "site = {}", v.site);
    assert_eq!(v.site.line, fence_line);
}

#[test]
fn fence_with_pending_writeback_is_not_empty() {
    let p = pool();
    let off = POff::new(4096);
    // SAFETY: `off` is 8-aligned, in bounds, and the pool is not shared.
    unsafe { p.write(off, &1u64) };
    p.clwb(off);
    p.sfence();
    assert_eq!(p.san_report().count(SanClass::EmptySfence), 0);
}

// ---- fixture 4: recovery-time dirty read -----------------------------------

#[test]
fn recovery_read_of_never_durable_line_is_flagged_at_the_read() {
    let p = pool();
    let off = POff::new(4096);
    let write_line = line!() + 2;
    // SAFETY: `off` is 8-aligned, in bounds, and the pool is not shared.
    unsafe { p.write(off, &0xBADu64) };
    // Bug: the store never reached a fence, yet recovery consumes the line.
    let p2 = p.crash();
    p2.san_begin_recovery();
    let read_line = line!() + 2;
    // SAFETY: `off` is 8-aligned and in bounds; u64 is valid for any bytes.
    let _garbage: u64 = unsafe { p2.read(off) };
    p2.san_end_recovery();
    let r = p2.san_report();
    assert_eq!(r.count(SanClass::RecoveryDirtyRead), 1);
    let v = r.of(SanClass::RecoveryDirtyRead).next().unwrap();
    assert!(v.site.file.ends_with(FIXTURE_FILE), "site = {}", v.site);
    assert_eq!(v.site.line, read_line, "violation names the reading site");
    let related = v.related.expect("the never-durable store is attached");
    assert_eq!(related.line, write_line);
}

#[test]
fn recovery_read_of_durable_line_is_clean() {
    let p = pool();
    let off = POff::new(4096);
    // SAFETY: `off` is 8-aligned, in bounds, and the pool is not shared.
    unsafe { p.write(off, &42u64) };
    p.persist_range(off, 8);
    // SAFETY: as above — a second, *unpersisted* version of the same line.
    unsafe { p.write(off, &43u64) };
    let p2 = p.crash();
    p2.san_begin_recovery();
    // Reading the previous durable version is buffered-durability prefix
    // semantics, not a bug: the line HAS a committed version to fall back to.
    // SAFETY: `off` is 8-aligned and in bounds; u64 is valid for any bytes.
    let v: u64 = unsafe { p2.read(off) };
    p2.san_end_recovery();
    assert_eq!(v, 42);
    assert_eq!(p2.san_report().count(SanClass::RecoveryDirtyRead), 0);
}

#[test]
fn probe_scope_exempts_validating_reads() {
    let p = pool();
    let off = POff::new(4096);
    // SAFETY: `off` is 8-aligned, in bounds, and the pool is not shared.
    unsafe { p.write(off, &0xBADu64) };
    let p2 = p.crash();
    p2.san_begin_recovery();
    // A sweep probe that validates before trusting may read anything.
    // SAFETY: `off` is 8-aligned and in bounds; u64 is valid for any bytes.
    let _probed: u64 = p2.san_probe(|| unsafe { p2.read(off) });
    p2.san_end_recovery();
    assert_eq!(p2.san_report().count(SanClass::RecoveryDirtyRead), 0);
}

#[test]
fn reads_outside_a_recovery_window_are_never_checked() {
    let p = pool();
    let off = POff::new(4096);
    // SAFETY: `off` is 8-aligned, in bounds, and the pool is not shared.
    unsafe { p.write(off, &0xBADu64) };
    let p2 = p.crash();
    // Post-crash reads by *tests* (asserting what was lost) are not recovery.
    // SAFETY: `off` is 8-aligned and in bounds; u64 is valid for any bytes.
    assert_eq!(unsafe { p2.read::<u64>(off) }, 0);
    assert_eq!(p2.san_report().count(SanClass::RecoveryDirtyRead), 0);
}

// ---- deny mode ---------------------------------------------------------------

#[test]
fn deny_mode_panics_on_missing_flush_naming_the_store() {
    let p = PmemPool::new(PmemConfig::strict_for_test(1 << 20)); // deny is on
    let off = POff::new(4096);
    // SAFETY: `off` is 8-aligned, in bounds, and the pool is not shared.
    unsafe { p.write(off, &1u64) };
    let err = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        p.san_epoch_boundary();
        p.san_epoch_boundary();
    }))
    .unwrap_err();
    let msg = err
        .downcast_ref::<String>()
        .expect("panic carries a message");
    assert!(msg.contains("persist-san"), "msg = {msg}");
    assert!(msg.contains("never flushed"), "msg = {msg}");
    assert!(
        msg.contains(FIXTURE_FILE),
        "msg names the store site: {msg}"
    );
}

#[test]
fn deny_mode_panics_on_recovery_dirty_read() {
    let p = PmemPool::new(PmemConfig::strict_for_test(1 << 20)); // deny is on
    let off = POff::new(4096);
    // SAFETY: `off` is 8-aligned, in bounds, and the pool is not shared.
    unsafe { p.write(off, &1u64) };
    let p2 = p.crash(); // deny carries over to the restarted pool
    p2.san_begin_recovery();
    let err = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        // SAFETY: `off` is 8-aligned and in bounds; u64 is valid bytes.
        let _: u64 = unsafe { p2.read(off) };
    }))
    .unwrap_err();
    let msg = err
        .downcast_ref::<String>()
        .expect("panic carries a message");
    assert!(msg.contains("recovery-time read"), "msg = {msg}");
    assert!(msg.contains(FIXTURE_FILE), "msg names the read site: {msg}");
}

#[test]
fn deny_mode_never_panics_on_cost_classes() {
    let p = PmemPool::new(PmemConfig::strict_for_test(1 << 20)); // deny is on
    let off = POff::new(4096);
    // SAFETY: `off` is 8-aligned, in bounds, and the pool is not shared.
    unsafe { p.write(off, &1u64) };
    p.clwb(off);
    p.clwb(off); // redundant
    p.sfence();
    p.sfence(); // empty
    let r = p.san_report();
    assert_eq!(r.count(SanClass::RedundantClwb), 1);
    assert_eq!(r.count(SanClass::EmptySfence), 1);
    assert!(r.correctness_clean());
}

// ---- a fully correct protocol stays silent ----------------------------------

#[test]
fn correct_write_flush_fence_cycle_reports_nothing() {
    let p = pool();
    for i in 0..32u64 {
        let off = POff::new(4096 + i * 64);
        // SAFETY: `off` is 8-aligned, in bounds, and the pool is not shared.
        unsafe { p.write(off, &i) };
        p.clwb(off);
        if i % 4 == 3 {
            p.sfence();
            p.san_epoch_boundary();
        }
    }
    p.san_epoch_boundary();
    p.san_epoch_boundary();
    let r = p.san_report();
    assert_eq!(r.count(SanClass::DirtyAtEpochBoundary), 0);
    assert_eq!(r.count(SanClass::RedundantClwb), 0);
    assert_eq!(r.count(SanClass::EmptySfence), 0);
    assert!(r.correctness_clean());
}
