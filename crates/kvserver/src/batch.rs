//! Epoch-aligned group commit: executing one worker sweep's request batch.
//!
//! A worker hands this module everything it framed in one sweep — requests
//! from *all* of its readable connections. The batch executes inside one
//! epoch window: the first mutation routed to a shard pins that shard's
//! epoch ([`kvstore::StoreBatch`]), every later mutation in the batch rides
//! the same pin, and only after the last request executes do the pins drop
//! and — when the `sync_every` counter crossed a multiple of N — the touched
//! shards get **one** epoch sync each for the whole batch.
//!
//! The ordering invariant that makes this group commit rather than ack
//! batching: replies are only *queued* here, into each connection's output
//! buffer; the worker flushes those buffers strictly after this function
//! returns, i.e. after the shared fence. No client ever reads an ack whose
//! durability point has not passed. (The pins must drop before the fence:
//! an epoch advance waits out every registered thread, so fencing while the
//! worker's own pin is registered would wait on itself.)

use montage::sync::uninstrumented::{AtomicU64, Ordering};
use std::panic::AssertUnwindSafe;
use std::sync::Arc;

use kvstore::protocol::Session;
use kvstore::{ShardedKvStore, StoreLease};

use crate::frame::Request;
use crate::server::Shared;
use crate::worker::Conn;

/// Batch-size histogram bucket floors (powers of two, last is open-ended):
/// bucket `i` counts batches of size in `[HIST_BUCKETS[i], HIST_BUCKETS[i+1])`.
pub(crate) const HIST_BUCKETS: [usize; 7] = [1, 2, 4, 8, 16, 32, 64];

/// One worker's group-commit counters, written only by that worker and read
/// by `stats` from any connection.
#[derive(Default)]
pub(crate) struct WorkerStats {
    /// Sweeps that executed at least one request.
    pub batches: AtomicU64,
    /// Requests executed inside batches.
    pub requests: AtomicU64,
    /// Group fences issued (one per batch that crossed the sync threshold,
    /// regardless of how many shards it touched).
    pub fences: AtomicU64,
    /// Per-shard fence attempts that blew the `fence_deadline` budget —
    /// each one severed the straggling shard's connections for the batch.
    pub fence_timeouts: AtomicU64,
    /// Replies queued behind those fences.
    pub acks: AtomicU64,
    /// Range scans served (`scan` verb) — the only multi-record read.
    pub scans: AtomicU64,
    /// Batch-size histogram over [`HIST_BUCKETS`].
    pub hist: [AtomicU64; HIST_BUCKETS.len()],
}

/// Fence-latency histogram resolution: bucket `i` counts per-shard fences
/// whose wall time fell in `[2^i, 2^(i+1))` microseconds; the last bucket
/// is open-ended (≈ half a second and beyond).
pub(crate) const FENCE_HIST_BUCKETS: usize = 20;

/// One shard's fence-latency histogram, fed by every worker that fences
/// the shard (so the counters are shared, unlike [`WorkerStats`]). This is
/// the data behind the `stats` p50/p99 lines operators use to pick a
/// `fence_deadline` from evidence instead of folklore.
#[derive(Default)]
pub(crate) struct ShardFenceStats {
    pub hist: [AtomicU64; FENCE_HIST_BUCKETS],
}

impl ShardFenceStats {
    pub fn record_us(&self, us: u64) {
        self.hist[fence_bucket(us)].fetch_add(1, Ordering::Relaxed);
    }
}

/// Histogram bucket for a fence that took `us` microseconds.
pub(crate) fn fence_bucket(us: u64) -> usize {
    ((63 - us.max(1).leading_zeros()) as usize).min(FENCE_HIST_BUCKETS - 1)
}

/// The `q`th percentile of a fence-latency histogram, reported as the
/// floor of the bucket holding that rank — quantiles never overstate.
/// `None` when no fence has been recorded.
pub(crate) fn fence_quantile_us(hist: &[u64], q: u64) -> Option<u64> {
    let total: u64 = hist.iter().sum();
    if total == 0 {
        return None;
    }
    let rank = (total * q).div_ceil(100).max(1);
    let mut seen = 0u64;
    for (i, count) in hist.iter().enumerate() {
        seen += count;
        if seen >= rank {
            return Some(1u64 << i);
        }
    }
    None
}

pub(crate) struct ServerStats {
    pub workers: Box<[WorkerStats]>,
    /// Indexed by shard, not worker: fence latency is a property of the
    /// shard's medium and epoch system, whichever worker pays it.
    pub shard_fences: Box<[ShardFenceStats]>,
}

impl ServerStats {
    pub fn new(workers: usize, shards: usize) -> ServerStats {
        ServerStats {
            workers: (0..workers).map(|_| WorkerStats::default()).collect(),
            shard_fences: (0..shards).map(|_| ShardFenceStats::default()).collect(),
        }
    }
}

/// Histogram bucket for a batch of `n` requests.
pub(crate) fn bucket(n: usize) -> usize {
    let n = n.max(1);
    ((usize::BITS - 1 - n.leading_zeros()) as usize).min(HIST_BUCKETS.len() - 1)
}

/// Executes one sweep's batch and queues replies; see the module docs for
/// the fence/ack ordering contract. `conns` indices in `batch` refer to the
/// worker's connection table.
#[allow(clippy::too_many_arguments)]
pub(crate) fn execute(
    widx: usize,
    conns: &mut [Conn],
    batch: Vec<(usize, Request)>,
    session: &Session,
    store: &Arc<ShardedKvStore>,
    lease: &StoreLease,
    shared: &Shared,
) {
    let ws = &shared.stats.workers[widx];
    ws.batches.fetch_add(1, Ordering::Relaxed);
    ws.requests.fetch_add(batch.len() as u64, Ordering::Relaxed);
    ws.hist[bucket(batch.len())].fetch_add(1, Ordering::Relaxed);

    let mut sb = store.batch(lease);
    // Shards owed a fence this batch — tracked independently of the pins,
    // because a pin is best-effort (a faulted or id-exhausted shard runs
    // unpinned) while the periodic barrier is a promise.
    let mut fence_shards: Vec<usize> = Vec::new();
    // Connections that queued replies this batch: if the group fence fails,
    // these are the conns whose queued acks must never escape.
    let mut batch_cis: Vec<usize> = Vec::new();
    // (connection, shard) pairs for this batch's mutations: when one
    // shard's fence blows its deadline, only the connections that routed
    // mutations to *that* shard are severed — the rest of the group commit
    // proceeds.
    let mut conn_shards: Vec<(usize, usize)> = Vec::new();
    let mut batch_muts: u64 = 0;
    let mut acks: u64 = 0;

    for (ci, req) in batch {
        let c = &mut conns[ci];
        if c.dead || c.closing {
            continue; // a quit/fatal error already cut this conn's stream
        }
        if !batch_cis.contains(&ci) {
            batch_cis.push(ci);
        }
        match req {
            Request::Cmd {
                line,
                data,
                noreply,
            } => {
                let cmd = line.split_whitespace().next().unwrap_or("");
                if cmd == "quit" {
                    c.closing = true;
                    continue;
                }
                if cmd == "session" {
                    // Durable session attach: the client's exactly-once
                    // identity, carried across reconnects. It lives on the
                    // connection, not in the store — descriptors appear only
                    // once a rid-carrying mutation lands in a shard.
                    // `session close` detaches; attaches are counted against
                    // `max_sessions` (one slot per attached connection, held
                    // until detach or disconnect) so an adversarial client
                    // mix cannot grow the descriptor tables without bound.
                    let out = match line.split_whitespace().nth(1) {
                        Some("close") => {
                            if c.session.take().is_some() {
                                shared.detach_session();
                            }
                            "CLOSED\r\n".to_string()
                        }
                        Some(arg) => match arg.parse::<u64>() {
                            // Re-attaching rides the slot the connection
                            // already holds; only a fresh attach claims one.
                            Ok(sid) if c.session.is_some() || shared.try_attach_session() => {
                                c.session = Some(sid);
                                format!("SESSION {sid}\r\n")
                            }
                            Ok(_) => {
                                c.closing = true;
                                "SERVER_ERROR too many sessions\r\n".to_string()
                            }
                            Err(_) => "CLIENT_ERROR bad session id\r\n".into(),
                        },
                        None => "CLIENT_ERROR bad session id\r\n".into(),
                    };
                    if !noreply {
                        c.out.extend_from_slice(out.as_bytes());
                        acks += 1;
                    }
                    continue;
                }
                if cmd == "stats" {
                    if !noreply {
                        c.out
                            .extend_from_slice(crate::server::stats_reply(shared).as_bytes());
                        acks += 1;
                    }
                    continue;
                }
                if cmd == "sync" {
                    // An explicit barrier is a batch-cut point: drop our own
                    // pins first (syncing a shard we pinned would wait on
                    // ourselves), sync every shard, then let the rest of the
                    // batch re-pin lazily.
                    let _ = sb.finish();
                    fence_shards.clear();
                    conn_shards.clear();
                    let out = match store.sync() {
                        Ok(()) => "SYNCED\r\n".into(),
                        Err(e) => format!("SERVER_ERROR {e}\r\n"),
                    };
                    if !noreply {
                        c.out.extend_from_slice(out.as_bytes());
                        acks += 1;
                    }
                    continue;
                }
                if cmd == "scan" {
                    ws.scans.fetch_add(1, Ordering::Relaxed);
                }
                let is_mutation = matches!(
                    cmd,
                    "set" | "add" | "replace" | "cas" | "delete" | "touch" | "incr" | "decr"
                );
                if is_mutation {
                    if let Some(shard) = line
                        .split_whitespace()
                        .nth(1)
                        .and_then(|k| store.shard_of_bytes(k.as_bytes()))
                    {
                        let _ = sb.pin_shard(shard);
                        if !fence_shards.contains(&shard) {
                            fence_shards.push(shard);
                        }
                        if !conn_shards.contains(&(ci, shard)) {
                            conn_shards.push((ci, shard));
                        }
                    }
                }
                let conn_session = c.session;
                let out = match std::panic::catch_unwind(AssertUnwindSafe(|| {
                    if shared.cfg.panic_on_cmd.as_deref() == Some(cmd) {
                        panic!("injected handler panic on '{cmd}'");
                    }
                    session.execute_with(&line, &data, conn_session)
                })) {
                    Ok(out) => out,
                    Err(_) => {
                        // The handler died mid-command; its state may be
                        // inconsistent, so answer, then drop only this
                        // connection. The unwind stops here — the worker and
                        // its other connections never notice.
                        c.out.extend_from_slice(b"SERVER_ERROR internal error\r\n");
                        acks += 1;
                        c.closing = true;
                        continue;
                    }
                };
                if is_mutation {
                    batch_muts += 1;
                }
                if !noreply {
                    c.out.extend_from_slice(out.as_bytes());
                    c.out.extend_from_slice(b"\r\n");
                    acks += 1;
                }
            }
            Request::BadDataChunk => {
                c.out.extend_from_slice(b"CLIENT_ERROR bad data chunk\r\n");
                acks += 1;
            }
            Request::TooLarge => {
                c.out
                    .extend_from_slice(b"SERVER_ERROR object too large for cache\r\n");
                acks += 1;
            }
            Request::LineTooLong => {
                c.out.extend_from_slice(b"CLIENT_ERROR line too long\r\n");
                acks += 1;
                c.closing = true;
            }
        }
    }

    // Group commit: pins drop first (see module docs), then the periodic
    // barrier — one sync per touched shard for the *whole* batch, where the
    // thread-per-connection server paid one per mutation.
    drop(sb);
    if batch_muts > 0 {
        let before = shared.mutations.fetch_add(batch_muts, Ordering::AcqRel);
        if let Some(n) = shared.cfg.sync_every {
            if (before + batch_muts) / n > before / n {
                let mut fence_failed = false;
                let mut timed_out: Vec<usize> = Vec::new();
                for shard in fence_shards {
                    let fence_start = std::time::Instant::now();
                    match shared.cfg.fence_deadline {
                        // The epoch-window deadline: a shard that cannot
                        // certify durability inside the budget is a
                        // straggler, and the group commit proceeds without
                        // its unfenced ops rather than holding every other
                        // shard's acks hostage.
                        Some(budget) => match store.sync_shard_deadline(shard, budget) {
                            Ok(true) => {}
                            Ok(false) => timed_out.push(shard),
                            Err(_) => fence_failed = true,
                        },
                        None => {
                            if store.sync_shard(shard).is_err() {
                                fence_failed = true;
                            }
                        }
                    }
                    // Timeouts and faults count too: a deadline that fires
                    // is exactly the tail the p99 line is for.
                    shared.stats.shard_fences[shard]
                        .record_us(fence_start.elapsed().as_micros() as u64);
                }
                ws.fences.fetch_add(1, Ordering::Relaxed);
                if fence_failed {
                    // The fence is the batch's durability point; if it
                    // failed, the queued acks would promise durability the
                    // pool can no longer deliver. Discard the batch's
                    // unflushed output and sever its connections — to the
                    // clients it looks like a crash, and their retry path
                    // (session + rid replay) gives the truthful answer.
                    for &ci in &batch_cis {
                        let c = &mut conns[ci];
                        c.out.truncate(c.sent);
                        c.dead = true;
                    }
                } else if !timed_out.is_empty() {
                    // Straggler degradation: withhold the acks that were
                    // promised behind the late fence (they would claim a
                    // durability point that never arrived) and sever those
                    // connections with an explicit error — the retry path
                    // (session + rid replay) then tells each client the
                    // truth. Connections whose mutations all landed on
                    // healthy shards keep their acks.
                    ws.fence_timeouts
                        .fetch_add(timed_out.len() as u64, Ordering::Relaxed);
                    let mut severed: Vec<usize> = Vec::new();
                    for &(ci, shard) in &conn_shards {
                        if timed_out.contains(&shard) && !severed.contains(&ci) {
                            severed.push(ci);
                            let c = &mut conns[ci];
                            c.out.truncate(c.sent);
                            c.out.extend_from_slice(b"SERVER_ERROR timeout\r\n");
                            c.closing = true;
                        }
                    }
                }
            }
        }
    }
    ws.acks.fetch_add(acks, Ordering::Relaxed);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fence_buckets_and_quantiles() {
        assert_eq!(fence_bucket(0), 0);
        assert_eq!(fence_bucket(1), 0);
        assert_eq!(fence_bucket(2), 1);
        assert_eq!(fence_bucket(1023), 9);
        assert_eq!(fence_bucket(u64::MAX), FENCE_HIST_BUCKETS - 1);

        let mut hist = [0u64; FENCE_HIST_BUCKETS];
        assert_eq!(fence_quantile_us(&hist, 50), None);
        // 98 fences in [4, 8) us, 2 in [1024, 2048) us.
        hist[2] = 98;
        hist[10] = 2;
        assert_eq!(fence_quantile_us(&hist, 50), Some(4));
        assert_eq!(fence_quantile_us(&hist, 98), Some(4));
        assert_eq!(fence_quantile_us(&hist, 99), Some(1024));
        assert_eq!(fence_quantile_us(&hist, 100), Some(1024));
    }

    #[test]
    fn histogram_buckets_are_log2() {
        assert_eq!(bucket(1), 0);
        assert_eq!(bucket(2), 1);
        assert_eq!(bucket(3), 1);
        assert_eq!(bucket(4), 2);
        assert_eq!(bucket(7), 2);
        assert_eq!(bucket(63), 5);
        assert_eq!(bucket(64), 6);
        assert_eq!(bucket(100_000), 6);
    }
}
