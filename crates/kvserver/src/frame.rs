//! memcached text-protocol request framing.
//!
//! Bytes arrive from the socket in arbitrary chunks; this module reassembles
//! them into complete requests. It tolerates everything a real client (or
//! `printf | nc`) throws at it: several pipelined commands in one packet, a
//! command line or data block split across packets, a CRLF split exactly
//! between the `\r` and the `\n`, bare-`\n` line endings, data blocks whose
//! length does not match the announced byte count, and announced byte counts
//! far beyond the configured cap (those are discarded as they stream in —
//! the value never accumulates in memory).

/// Commands that carry a data block after the command line.
const STORAGE_CMDS: [&str; 4] = ["set", "add", "replace", "cas"];

/// Command lines longer than this are rejected (memcached caps at 1024 too;
/// keys are ≤ 32 bytes here, so this is generous).
pub const MAX_LINE: usize = 1024;

/// One framed request, ready for execution.
#[derive(Debug, PartialEq, Eq)]
pub enum Request {
    /// A complete command line (CRLF stripped, `noreply` stripped) plus its
    /// data block (empty for non-storage commands).
    Cmd {
        line: String,
        data: Vec<u8>,
        noreply: bool,
    },
    /// A storage command whose data block was not terminated by CRLF where
    /// the announced length said it would end. The stream has been resynced
    /// to the next line; reply `CLIENT_ERROR bad data chunk`.
    BadDataChunk,
    /// A storage command whose announced length exceeded the configured
    /// maximum. The value bytes were discarded; reply `SERVER_ERROR object
    /// too large for cache`.
    TooLarge,
    /// A command line exceeded [`MAX_LINE`] without a newline. The
    /// connection should be closed after replying.
    LineTooLong,
}

/// Streaming reassembler: feed raw socket bytes in, pull [`Request`]s out.
pub struct RequestReader {
    buf: Vec<u8>,
    /// Remaining value bytes of an oversized storage command being discarded.
    skip: usize,
    /// When true, a discard is waiting for its trailing newline.
    skip_trailer: bool,
    /// Whether the active discard is an oversized value (reported as
    /// [`Request::TooLarge`]) rather than a silent length-mismatch resync.
    skip_oversize: bool,
    max_value: usize,
}

impl RequestReader {
    pub fn new(max_value: usize) -> Self {
        RequestReader {
            buf: Vec::new(),
            skip: 0,
            skip_trailer: false,
            skip_oversize: false,
            max_value,
        }
    }

    /// Appends raw bytes read from the socket.
    pub fn feed(&mut self, bytes: &[u8]) {
        self.buf.extend_from_slice(bytes);
    }

    /// Bytes buffered but not yet consumed (for tests / introspection).
    pub fn buffered(&self) -> usize {
        self.buf.len()
    }

    /// Extracts the next complete request, or `None` if more bytes are
    /// needed. Call repeatedly to drain pipelined commands.
    pub fn next_request(&mut self) -> Option<Request> {
        // Finish any discard in progress first (oversized value or
        // length-mismatch resync).
        if self.skip > 0 || self.skip_trailer {
            let n = self.skip.min(self.buf.len());
            self.buf.drain(..n);
            self.skip -= n;
            if self.skip > 0 {
                return None; // more value bytes still in flight
            }
            self.skip_trailer = true;
            // Consume through the terminating newline.
            match self.buf.iter().position(|&b| b == b'\n') {
                Some(i) => {
                    self.buf.drain(..=i);
                    self.skip_trailer = false;
                    if self.skip_oversize {
                        self.skip_oversize = false;
                        return Some(Request::TooLarge);
                    }
                    // Resync complete; fall through to the next command.
                }
                None => {
                    self.buf.clear(); // mismatch garbage; keep discarding
                    return None;
                }
            }
        }

        let nl = match self.buf.iter().position(|&b| b == b'\n') {
            Some(i) => i,
            None if self.buf.len() > MAX_LINE => return Some(Request::LineTooLong),
            None => return None,
        };
        let mut line_end = nl;
        if line_end > 0 && self.buf[line_end - 1] == b'\r' {
            line_end -= 1;
        }
        let line = String::from_utf8_lossy(&self.buf[..line_end]).into_owned();
        let mut tokens: Vec<String> = line.split_whitespace().map(str::to_owned).collect();
        let noreply = tokens.last().is_some_and(|t| t == "noreply");
        if noreply {
            tokens.pop();
        }

        let is_storage = tokens
            .first()
            .is_some_and(|c| STORAGE_CMDS.contains(&c.as_str()));
        let nbytes = if is_storage && tokens.len() >= 5 {
            tokens[4].parse::<usize>().ok()
        } else {
            None
        };

        let Some(nbytes) = nbytes else {
            // No data block follows: either a non-storage command, or a
            // malformed storage line the session will answer with
            // CLIENT_ERROR. Consume the line only.
            self.buf.drain(..=nl);
            return Some(Request::Cmd {
                line: tokens.join(" "),
                data: Vec::new(),
                noreply,
            });
        };

        if nbytes > self.max_value {
            // Discard the value as it streams in; never buffer it whole.
            self.buf.drain(..=nl);
            self.skip = nbytes;
            self.skip_trailer = false;
            self.skip_oversize = true;
            return self.next_request();
        }

        // Wait until the whole data block plus at least one terminator byte
        // is buffered.
        let data_start = nl + 1;
        let data_end = data_start + nbytes;
        if self.buf.len() < data_end + 1 {
            return None;
        }
        match self.buf[data_end] {
            b'\n' => {
                let data = self.buf[data_start..data_end].to_vec();
                self.buf.drain(..=data_end);
                Some(Request::Cmd {
                    line: tokens.join(" "),
                    data,
                    noreply,
                })
            }
            b'\r' => {
                // CRLF possibly split across packets: need one more byte.
                if self.buf.len() < data_end + 2 {
                    return None;
                }
                if self.buf[data_end + 1] == b'\n' {
                    let data = self.buf[data_start..data_end].to_vec();
                    self.buf.drain(..=data_end + 1);
                    Some(Request::Cmd {
                        line: tokens.join(" "),
                        data,
                        noreply,
                    })
                } else {
                    self.resync_after(data_end);
                    Some(Request::BadDataChunk)
                }
            }
            _ => {
                self.resync_after(data_end);
                Some(Request::BadDataChunk)
            }
        }
    }

    /// Length mismatch: drop everything through the next newline at or after
    /// `from`, so the reader realigns on the next command. If the newline is
    /// not buffered yet, arrange to keep discarding as bytes arrive.
    fn resync_after(&mut self, from: usize) {
        match self.buf[from..].iter().position(|&b| b == b'\n') {
            Some(i) => {
                self.buf.drain(..from + i + 1);
            }
            None => {
                self.buf.clear();
                self.skip = 0;
                self.skip_trailer = true;
                self.skip_oversize = false;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cmd(line: &str, data: &[u8], noreply: bool) -> Request {
        Request::Cmd {
            line: line.into(),
            data: data.to_vec(),
            noreply,
        }
    }

    #[test]
    fn whole_request_in_one_chunk() {
        let mut r = RequestReader::new(1024);
        r.feed(b"set k 0 0 5\r\nhello\r\n");
        assert_eq!(r.next_request(), Some(cmd("set k 0 0 5", b"hello", false)));
        assert_eq!(r.next_request(), None);
        assert_eq!(r.buffered(), 0);
    }

    #[test]
    fn command_line_split_across_reads() {
        let mut r = RequestReader::new(1024);
        r.feed(b"get gre");
        assert_eq!(r.next_request(), None);
        r.feed(b"eting\r\n");
        assert_eq!(r.next_request(), Some(cmd("get greeting", b"", false)));
    }

    #[test]
    fn data_block_split_across_reads() {
        let mut r = RequestReader::new(1024);
        r.feed(b"set k 0 0 11\r\nhell");
        assert_eq!(r.next_request(), None);
        r.feed(b"o worl");
        assert_eq!(r.next_request(), None);
        r.feed(b"d\r\n");
        assert_eq!(
            r.next_request(),
            Some(cmd("set k 0 0 11", b"hello world", false))
        );
    }

    #[test]
    fn crlf_split_between_cr_and_lf() {
        let mut r = RequestReader::new(1024);
        r.feed(b"set k 0 0 2\r\nab\r");
        assert_eq!(r.next_request(), None, "CR buffered, LF in flight");
        r.feed(b"\n");
        assert_eq!(r.next_request(), Some(cmd("set k 0 0 2", b"ab", false)));
    }

    #[test]
    fn bare_lf_line_endings_accepted() {
        let mut r = RequestReader::new(1024);
        r.feed(b"set k 0 0 2\nhi\nget k\n");
        assert_eq!(r.next_request(), Some(cmd("set k 0 0 2", b"hi", false)));
        assert_eq!(r.next_request(), Some(cmd("get k", b"", false)));
    }

    #[test]
    fn pipelined_commands_drain_in_order() {
        let mut r = RequestReader::new(1024);
        r.feed(b"set a 0 0 1\r\nA\r\nset b 0 0 1\r\nB\r\nget a b\r\ndelete a\r\n");
        assert_eq!(r.next_request(), Some(cmd("set a 0 0 1", b"A", false)));
        assert_eq!(r.next_request(), Some(cmd("set b 0 0 1", b"B", false)));
        assert_eq!(r.next_request(), Some(cmd("get a b", b"", false)));
        assert_eq!(r.next_request(), Some(cmd("delete a", b"", false)));
        assert_eq!(r.next_request(), None);
    }

    #[test]
    fn noreply_is_stripped_and_flagged() {
        let mut r = RequestReader::new(1024);
        r.feed(b"set k 1 0 1 noreply\r\nx\r\ndelete k noreply\r\n");
        assert_eq!(r.next_request(), Some(cmd("set k 1 0 1", b"x", true)));
        assert_eq!(r.next_request(), Some(cmd("delete k", b"", true)));
    }

    #[test]
    fn value_longer_than_announced_is_bad_chunk_and_resyncs() {
        let mut r = RequestReader::new(1024);
        r.feed(b"set k 0 0 2\r\nabcdef\r\nget k\r\n");
        assert_eq!(r.next_request(), Some(Request::BadDataChunk));
        // Stream realigned on the next command.
        assert_eq!(r.next_request(), Some(cmd("get k", b"", false)));
    }

    #[test]
    fn bad_chunk_with_trailer_not_yet_arrived() {
        let mut r = RequestReader::new(1024);
        r.feed(b"set k 0 0 2\r\nabZ");
        assert_eq!(r.next_request(), Some(Request::BadDataChunk));
        // Garbage continues; everything up to the newline is discarded and
        // the command after it parses normally.
        r.feed(b"ZZZ\r\nget k\r\n");
        assert_eq!(r.next_request(), Some(cmd("get k", b"", false)));
    }

    #[test]
    fn oversized_value_is_discarded_streaming() {
        let mut r = RequestReader::new(8);
        r.feed(b"set big 0 0 1000\r\n");
        assert_eq!(r.next_request(), None);
        // Value streams in over several packets; buffer must not grow.
        for _ in 0..100 {
            r.feed(&[b'x'; 10]);
            assert!(r.buffered() <= 10, "oversize value accumulated");
            let _ = r.next_request();
        }
        r.feed(b"\r\nget k\r\n");
        assert_eq!(r.next_request(), Some(Request::TooLarge));
        assert_eq!(r.next_request(), Some(cmd("get k", b"", false)));
    }

    #[test]
    fn malformed_storage_line_has_no_data_block() {
        let mut r = RequestReader::new(1024);
        r.feed(b"set k zero 0 nope\r\nget k\r\n");
        // Passed through for the session to answer CLIENT_ERROR; the next
        // line is a fresh command, not swallowed as data.
        assert_eq!(r.next_request(), Some(cmd("set k zero 0 nope", b"", false)));
        assert_eq!(r.next_request(), Some(cmd("get k", b"", false)));
    }

    #[test]
    fn unterminated_giant_line_rejected() {
        let mut r = RequestReader::new(1024);
        r.feed(&[b'a'; MAX_LINE + 1]);
        assert_eq!(r.next_request(), Some(Request::LineTooLong));
    }

    #[test]
    fn empty_line_is_a_command() {
        let mut r = RequestReader::new(1024);
        r.feed(b"\r\n");
        assert_eq!(r.next_request(), Some(cmd("", b"", false)));
    }
}
