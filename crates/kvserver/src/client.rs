//! Closed-loop memcached text-protocol client over a blocking socket.
//!
//! Used by the wire tests and the Fig. 10 wire benchmark; issues one request
//! and waits for its reply (except `*_noreply`, which streams).

use std::io::{BufRead, BufReader, ErrorKind, Read, Write};
use std::net::{TcpStream, ToSocketAddrs};
use std::time::Duration;

/// One socket, one fd: reads go through the buffer, writes through
/// [`BufReader::get_mut`]. The connection-scale test holds ten thousand of
/// these in one process, so a cloned-fd reader would double the bill.
pub struct WireClient {
    stream: BufReader<TcpStream>,
}

/// One request in a pipelined [`WireClient::round`].
pub enum PipeOp<'a> {
    Get(&'a str),
    Set(&'a str, &'a [u8]),
    /// `scan <lo> <hi>` — the multi-record reply is drained and discarded
    /// (framing-checked) so scans can interleave with gets/sets in flight.
    Scan(&'a str, &'a str),
}

fn bad_reply(context: &str, got: &str) -> std::io::Error {
    std::io::Error::new(
        ErrorKind::InvalidData,
        format!("{context}: unexpected reply {got:?}"),
    )
}

impl WireClient {
    pub fn connect<A: ToSocketAddrs>(addr: A) -> std::io::Result<WireClient> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        stream.set_read_timeout(Some(Duration::from_secs(10)))?;
        stream.set_write_timeout(Some(Duration::from_secs(10)))?;
        Ok(WireClient {
            stream: BufReader::new(stream),
        })
    }

    /// Sends raw bytes verbatim — the escape hatch the framing tests use to
    /// split requests at hostile offsets.
    pub fn send_raw(&mut self, bytes: &[u8]) -> std::io::Result<()> {
        self.stream.get_mut().write_all(bytes)
    }

    /// Overrides the socket read timeout (`None` blocks forever). The
    /// robustness tests poll with short timeouts while dripping bytes.
    pub fn set_read_timeout(&mut self, dur: Option<Duration>) -> std::io::Result<()> {
        self.stream.get_ref().set_read_timeout(dur)
    }

    /// Reads whatever reply bytes are available into `buf`, returning the
    /// count (0 = peer closed). Load generators use this to drain pipelined
    /// replies in bulk instead of line-by-line.
    pub fn read_some(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
        self.stream.read(buf)
    }

    /// Reads one CRLF-terminated reply line (terminator stripped).
    pub fn read_line(&mut self) -> std::io::Result<String> {
        let mut line = String::new();
        let n = self.stream.read_line(&mut line)?;
        if n == 0 {
            return Err(ErrorKind::UnexpectedEof.into());
        }
        while line.ends_with('\n') || line.ends_with('\r') {
            line.pop();
        }
        Ok(line)
    }

    /// `set` and wait for the one-line reply (`STORED`, an error, …).
    pub fn set(&mut self, key: &str, flags: u32, value: &[u8]) -> std::io::Result<String> {
        self.send_raw(format!("set {key} {flags} 0 {}\r\n", value.len()).as_bytes())?;
        self.send_raw(value)?;
        self.send_raw(b"\r\n")?;
        self.read_line()
    }

    /// Fire-and-forget `set`: no reply is read (none is sent).
    pub fn set_noreply(&mut self, key: &str, flags: u32, value: &[u8]) -> std::io::Result<()> {
        self.send_raw(format!("set {key} {flags} 0 {} noreply\r\n", value.len()).as_bytes())?;
        self.send_raw(value)?;
        self.send_raw(b"\r\n")
    }

    /// `get`, returning `(flags, value)` for a hit and `None` for a miss.
    pub fn get(&mut self, key: &str) -> std::io::Result<Option<(u32, Vec<u8>)>> {
        self.send_raw(format!("get {key}\r\n").as_bytes())?;
        let head = self.read_line()?;
        if head == "END" {
            return Ok(None);
        }
        let mut parts = head.split_whitespace();
        let (Some("VALUE"), Some(_k), Some(flags), Some(len)) =
            (parts.next(), parts.next(), parts.next(), parts.next())
        else {
            return Err(bad_reply("get", &head));
        };
        let flags: u32 = flags.parse().map_err(|_| bad_reply("get flags", &head))?;
        let len: usize = len.parse().map_err(|_| bad_reply("get len", &head))?;
        let mut data = vec![0u8; len + 2]; // value + CRLF
        self.stream.read_exact(&mut data)?;
        data.truncate(len);
        let tail = self.read_line()?;
        if tail != "END" {
            return Err(bad_reply("get tail", &tail));
        }
        Ok(Some((flags, data)))
    }

    /// One pipelined round: writes every request in a single burst, then
    /// reads every reply in order. This is the shape under which a server's
    /// request batching (and group commit) can actually form batches — the
    /// one-op-per-RTT methods above never leave two requests in flight.
    pub fn round(&mut self, ops: &[PipeOp<'_>]) -> std::io::Result<()> {
        let mut buf = Vec::with_capacity(ops.len() * 32);
        for op in ops {
            match op {
                PipeOp::Get(k) => {
                    buf.extend_from_slice(b"get ");
                    buf.extend_from_slice(k.as_bytes());
                    buf.extend_from_slice(b"\r\n");
                }
                PipeOp::Set(k, v) => {
                    buf.extend_from_slice(format!("set {k} 0 0 {}\r\n", v.len()).as_bytes());
                    buf.extend_from_slice(v);
                    buf.extend_from_slice(b"\r\n");
                }
                PipeOp::Scan(lo, hi) => {
                    buf.extend_from_slice(format!("scan {lo} {hi}\r\n").as_bytes());
                }
            }
        }
        self.stream.get_mut().write_all(&buf)?;
        for op in ops {
            match op {
                PipeOp::Set(..) => {
                    let line = self.read_line()?;
                    if line != "STORED" {
                        return Err(bad_reply("pipelined set", &line));
                    }
                }
                PipeOp::Get(..) => {
                    let head = self.read_line()?;
                    if head == "END" {
                        continue;
                    }
                    let len: usize = head
                        .split_whitespace()
                        .nth(3)
                        .and_then(|l| l.parse().ok())
                        .ok_or_else(|| bad_reply("pipelined get", &head))?;
                    let mut data = vec![0u8; len + 2];
                    self.stream.read_exact(&mut data)?;
                    let tail = self.read_line()?;
                    if tail != "END" {
                        return Err(bad_reply("pipelined get tail", &tail));
                    }
                }
                PipeOp::Scan(..) => {
                    self.read_scan_records()?;
                }
            }
        }
        Ok(())
    }

    /// `scan <lo> <hi> [<limit>]`: collects the `(key, flags, value)`
    /// records of the reply, in server (key) order.
    pub fn scan(
        &mut self,
        lo: &str,
        hi: &str,
        limit: Option<usize>,
    ) -> std::io::Result<Vec<(String, u32, Vec<u8>)>> {
        let line = match limit {
            Some(n) => format!("scan {lo} {hi} {n}\r\n"),
            None => format!("scan {lo} {hi}\r\n"),
        };
        self.send_raw(line.as_bytes())?;
        self.read_scan_records()
    }

    /// Drains one scan reply (`VALUE` records up to `END`), validating the
    /// announced lengths against the stream.
    fn read_scan_records(&mut self) -> std::io::Result<Vec<(String, u32, Vec<u8>)>> {
        let mut out = Vec::new();
        loop {
            let head = self.read_line()?;
            if head == "END" {
                return Ok(out);
            }
            let mut parts = head.split_whitespace();
            let (Some("VALUE"), Some(key), Some(flags), Some(len)) =
                (parts.next(), parts.next(), parts.next(), parts.next())
            else {
                return Err(bad_reply("scan", &head));
            };
            let flags: u32 = flags.parse().map_err(|_| bad_reply("scan flags", &head))?;
            let len: usize = len.parse().map_err(|_| bad_reply("scan len", &head))?;
            let mut data = vec![0u8; len + 2]; // value + CRLF
            self.stream.read_exact(&mut data)?;
            if &data[len..] != b"\r\n" {
                return Err(bad_reply("scan record tail", &head));
            }
            data.truncate(len);
            out.push((key.to_string(), flags, data));
        }
    }

    /// `delete`, returning the reply line (`DELETED` / `NOT_FOUND`).
    pub fn delete(&mut self, key: &str) -> std::io::Result<String> {
        self.send_raw(format!("delete {key}\r\n").as_bytes())?;
        self.read_line()
    }

    // ---- detectable operations (exactly-once retries) -------------------
    //
    // Wire contract: at most ONE outstanding rid-carrying mutation per
    // session — wait for rid n's reply before sending rid n+1. The server
    // durably retains only the newest rid per (session, shard); pipelining
    // two rid mutations and crashing before either ack loses the earlier
    // reply, and its replay gets `SERVER_ERROR stale request id` instead.
    // This client is synchronous (every rid method reads its reply before
    // returning), so it satisfies the contract by construction.

    /// Attaches a durable session id: subsequent mutations sent with a
    /// `rid=<n>` token dedupe against the server's descriptor table. Call
    /// again after reconnecting to resume the same identity.
    pub fn session(&mut self, sid: u64) -> std::io::Result<()> {
        self.send_raw(format!("session {sid}\r\n").as_bytes())?;
        let line = self.read_line()?;
        if line == format!("SESSION {sid}") {
            Ok(())
        } else {
            Err(bad_reply("session", &line))
        }
    }

    /// Detaches the durable session id attached by [`WireClient::session`],
    /// releasing its slot against the server's session cap. Subsequent
    /// mutations are sessionless until a new attach.
    pub fn session_close(&mut self) -> std::io::Result<()> {
        self.send_raw(b"session close\r\n")?;
        let line = self.read_line()?;
        if line == "CLOSED" {
            Ok(())
        } else {
            Err(bad_reply("session close", &line))
        }
    }

    /// `set` carrying a request id; safe to blindly resend after a crash.
    pub fn set_rid(
        &mut self,
        key: &str,
        flags: u32,
        value: &[u8],
        rid: u64,
    ) -> std::io::Result<String> {
        self.send_raw(format!("set {key} {flags} 0 {} rid={rid}\r\n", value.len()).as_bytes())?;
        self.send_raw(value)?;
        self.send_raw(b"\r\n")?;
        self.read_line()
    }

    /// `cas` (compare-and-swap on the id from [`WireClient::gets`]),
    /// returning the reply line (`STORED` / `EXISTS` / `NOT_FOUND`).
    /// `rid` tags the request for exactly-once retry.
    pub fn cas(
        &mut self,
        key: &str,
        flags: u32,
        value: &[u8],
        casid: u64,
        rid: Option<u64>,
    ) -> std::io::Result<String> {
        let tag = rid.map(|r| format!(" rid={r}")).unwrap_or_default();
        self.send_raw(format!("cas {key} {flags} 0 {} {casid}{tag}\r\n", value.len()).as_bytes())?;
        self.send_raw(value)?;
        self.send_raw(b"\r\n")?;
        self.read_line()
    }

    /// `gets`: like [`WireClient::get`] but returns `(flags, cas, value)`.
    pub fn gets(&mut self, key: &str) -> std::io::Result<Option<(u32, u64, Vec<u8>)>> {
        self.send_raw(format!("gets {key}\r\n").as_bytes())?;
        let head = self.read_line()?;
        if head == "END" {
            return Ok(None);
        }
        let mut parts = head.split_whitespace();
        let (Some("VALUE"), Some(_k), Some(flags), Some(len), Some(cas)) = (
            parts.next(),
            parts.next(),
            parts.next(),
            parts.next(),
            parts.next(),
        ) else {
            return Err(bad_reply("gets", &head));
        };
        let flags: u32 = flags.parse().map_err(|_| bad_reply("gets flags", &head))?;
        let cas: u64 = cas.parse().map_err(|_| bad_reply("gets cas", &head))?;
        let len: usize = len.parse().map_err(|_| bad_reply("gets len", &head))?;
        let mut data = vec![0u8; len + 2]; // value + CRLF
        self.stream.read_exact(&mut data)?;
        data.truncate(len);
        let tail = self.read_line()?;
        if tail != "END" {
            return Err(bad_reply("gets tail", &tail));
        }
        Ok(Some((flags, cas, data)))
    }

    /// `incr`/`decr` by `delta`, optionally carrying a request id. Returns
    /// the reply line: the new value in decimal, or `NOT_FOUND` / an error.
    pub fn arith(
        &mut self,
        incr: bool,
        key: &str,
        delta: u64,
        rid: Option<u64>,
    ) -> std::io::Result<String> {
        let verb = if incr { "incr" } else { "decr" };
        let tag = rid.map(|r| format!(" rid={r}")).unwrap_or_default();
        self.send_raw(format!("{verb} {key} {delta}{tag}\r\n").as_bytes())?;
        self.read_line()
    }

    /// `stats`, parsed into `(name, value)` pairs.
    pub fn stats(&mut self) -> std::io::Result<Vec<(String, u64)>> {
        self.send_raw(b"stats\r\n")?;
        let mut out = Vec::new();
        loop {
            let line = self.read_line()?;
            if line == "END" {
                return Ok(out);
            }
            let mut parts = line.split_whitespace();
            let (Some("STAT"), Some(name), Some(value)) =
                (parts.next(), parts.next(), parts.next())
            else {
                return Err(bad_reply("stats", &line));
            };
            let value: u64 = value.parse().map_err(|_| bad_reply("stats value", &line))?;
            out.push((name.to_string(), value));
        }
    }

    /// Epoch-sync barrier: when this returns `Ok`, every mutation this
    /// server acked before the call is persistent.
    pub fn sync(&mut self) -> std::io::Result<()> {
        self.send_raw(b"sync\r\n")?;
        let line = self.read_line()?;
        if line == "SYNCED" {
            Ok(())
        } else {
            Err(bad_reply("sync", &line))
        }
    }

    /// Polite hang-up.
    pub fn quit(mut self) -> std::io::Result<()> {
        self.send_raw(b"quit\r\n")
    }
}
