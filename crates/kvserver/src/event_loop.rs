//! The accept loop and connection handoff for the event-driven core.
//!
//! One thread owns the nonblocking listener. Each accepted socket is either
//! shed immediately (`SERVER_ERROR busy` when the connection cap is
//! reached — admission happens *here*, before any worker sees the socket)
//! or admitted, registered for [`crate::server::ServerHandle::crash`]'s
//! benefit, and round-robined into a worker's inbox. Workers adopt their
//! inbox at the top of every sweep; the inbox mutex is the only lock a
//! connection ever crosses, once, at birth.

use montage::sync::uninstrumented::Ordering;
use std::io::{ErrorKind, Write};
use std::net::{Shutdown, TcpListener, TcpStream};
use std::panic::AssertUnwindSafe;
use std::sync::Arc;
use std::time::Duration;

use parking_lot::Mutex;

use crate::server::Shared;

/// A freshly accepted, already-admitted connection in flight to its worker.
pub(crate) struct NewConn {
    pub stream: TcpStream,
}

/// Handoff queue from the accept thread to one worker.
#[derive(Default)]
pub(crate) struct Inbox {
    queue: Mutex<Vec<NewConn>>,
}

impl Inbox {
    fn push(&self, conn: NewConn) {
        self.queue.lock().push(conn);
    }

    pub(crate) fn drain(&self) -> Vec<NewConn> {
        let mut q = self.queue.lock();
        if q.is_empty() {
            Vec::new()
        } else {
            std::mem::take(&mut *q)
        }
    }
}

pub(crate) fn run(listener: TcpListener, shared: Arc<Shared>) {
    let n_workers = shared.stats.workers.len();
    let inboxes: Vec<Arc<Inbox>> = (0..n_workers).map(|_| Arc::new(Inbox::default())).collect();
    let mut workers = Vec::with_capacity(n_workers);
    for (widx, inbox) in inboxes.iter().enumerate() {
        let inbox = Arc::clone(inbox);
        let shared = Arc::clone(&shared);
        workers.push(
            std::thread::Builder::new()
                .name(format!("kvserver-worker-{widx}"))
                .spawn(move || {
                    // Per-request panics are contained inside the batch; this
                    // outer guard is a backstop so a worker bug degrades the
                    // server instead of unwinding across the join.
                    let _ = std::panic::catch_unwind(AssertUnwindSafe(|| {
                        crate::worker::run(widx, inbox, shared);
                    }));
                })
                .expect("spawn kvserver worker"),
        );
    }

    let mut next_id: u64 = 0;
    while !shared.shutdown.load(Ordering::Acquire) {
        match listener.accept() {
            Ok((mut stream, _)) => {
                if !shared.registry.try_admit() {
                    // Over capacity: shed with a clean refusal. The socket is
                    // blocking here (accepted sockets don't inherit the
                    // listener's nonblocking flag), so the error line lands
                    // before the close.
                    let _ = stream.set_nodelay(true);
                    let _ = stream.write_all(b"SERVER_ERROR busy\r\n");
                    let _ = stream.shutdown(Shutdown::Both);
                    continue;
                }
                let widx = (next_id % n_workers as u64) as usize;
                next_id += 1;
                inboxes[widx].push(NewConn { stream });
            }
            Err(e) if e.kind() == ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(1));
            }
            Err(_) => std::thread::sleep(Duration::from_millis(1)),
        }
    }
    for handle in workers {
        let _ = handle.join();
    }
}
