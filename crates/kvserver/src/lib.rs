//! # kvserver — a networked persistent KV front-end over Montage
//!
//! The paper validates Montage by porting a protected-library Memcached and
//! driving it with YCSB (Sec. 6.2 / Fig. 10); [`kvstore`] reproduces that
//! cache as an in-process library. This crate puts a socket in front of it:
//! a TCP server speaking the memcached **text protocol** (`std::net` +
//! threads, no async runtime) that delegates command execution to
//! [`kvstore::protocol::Session`], plus a closed-loop wire client used by
//! tests and benches.
//!
//! Three things distinguish a server from a library and shape this crate:
//!
//! * **Session registry** ([`registry`]) — Montage hands out `ThreadId`s
//!   from a fixed `max_threads` table. Connections churn, so the registry
//!   leases ids per connection and returns them on disconnect; an
//!   over-capacity connect is answered with `SERVER_ERROR` instead of a
//!   panic.
//! * **Request framing** ([`frame`]) — pipelined commands, command lines and
//!   data blocks split across packets, bare-`\n` line endings, length
//!   mismatches, and oversized values (discarded in a streaming fashion, so
//!   a hostile length field cannot balloon memory) are all handled before a
//!   command reaches the session.
//! * **The durability boundary** ([`server`]) — a reply must not promise
//!   more durability than the epoch system has provided. Ordinary replies
//!   promise buffered durability only (a crash may lose the last two
//!   epochs); the `sync` admin command replies `SYNCED` only after
//!   `EpochSys::sync` returns, and the sync-every-N-ops mode (mirroring
//!   Fig. 9) inserts that same barrier every N mutations.

pub mod client;
pub mod frame;
pub mod registry;
pub mod server;

pub use client::WireClient;
pub use frame::{Request, RequestReader};
pub use registry::{SessionLease, SessionRegistry};
pub use server::{KvServer, ServerConfig, ServerHandle};
