//! # kvserver — a networked persistent KV front-end over Montage
//!
//! The paper validates Montage by porting a protected-library Memcached and
//! driving it with YCSB (Sec. 6.2 / Fig. 10); [`kvstore`] reproduces that
//! cache as an in-process library. This crate puts a socket in front of it:
//! a TCP server speaking the memcached **text protocol** (`std::net` +
//! nonblocking sockets, no async runtime) that delegates command execution
//! to [`kvstore::protocol::Session`], plus a closed-loop wire client (with
//! a pipelined mode) used by tests and benches.
//!
//! The core is **event-driven**: an accept thread sheds over-capacity
//! connects (`SERVER_ERROR busy`) and round-robins admitted sockets onto a
//! small pool of workers, each multiplexing its connections with a
//! nonblocking sweep loop. Everything a worker frames in one sweep executes
//! as one batch inside a shared epoch window, and the batch ends with
//! **epoch-aligned group commit**: one epoch sync per touched shard covers
//! every mutation in the batch, and replies flush only after that fence.
//!
//! The pieces:
//!
//! * **Connection registry** ([`registry`]) — admission control. Montage
//!   `ThreadId`s are a per-*worker* resource here (each worker owns one
//!   lazily filled [`kvstore::StoreLease`]); connections only count against
//!   `max_conns`, so ten thousand sockets need four ids, not ten thousand.
//! * **Request framing** ([`frame`]) — pipelined commands, command lines and
//!   data blocks split across packets, bare-`\n` line endings, length
//!   mismatches, and oversized values (discarded in a streaming fashion, so
//!   a hostile length field cannot balloon memory) are all handled before a
//!   command reaches the session.
//! * **The durability boundary** ([`server`], [`batch`](crate::server)) — a
//!   reply must not promise more durability than the epoch system has
//!   provided. Ordinary replies promise buffered durability only (a crash
//!   may lose the last two epochs); the `sync` admin command replies
//!   `SYNCED` only after `EpochSys::sync` returns, and the
//!   sync-every-N-ops mode (mirroring Fig. 9) fences each batch that
//!   crosses a multiple of N — before any of that batch's acks reach a
//!   socket.

mod batch;
pub mod client;
mod event_loop;
pub mod frame;
pub mod registry;
pub mod server;
mod worker;

pub use client::{PipeOp, WireClient};
pub use frame::{Request, RequestReader};
pub use registry::SessionRegistry;
pub use server::{KvServer, ServerConfig, ServerHandle};
