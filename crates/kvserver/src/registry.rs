//! Session registry: leases Montage thread ids to connections.
//!
//! Montage sizes its per-thread state (write-back buffers, epoch tracker
//! slots) to a fixed `max_threads` at pool creation — per shard. A server
//! accepts and drops connections indefinitely, so it cannot burn one id per
//! connection lifetime; and on a sharded store it cannot even afford one id
//! per shard per connection up front (N shards would exhaust the tables N
//! times sooner). So leasing is two-level and lazy: the registry enforces
//! its own `max_sessions` cap at connect (an over-capacity connect is
//! refused with a protocol error), and the connection's [`StoreLease`]
//! registers on a shard's epoch system only when an operation first routes
//! there. Every leased id returns to its shard's free list on disconnect;
//! if a shard's table is momentarily exhausted, operations routed there get
//! `SERVER_ERROR out of worker ids` until a peer disconnects — the
//! connection itself survives.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

use kvstore::{KvStore, ShardedKvStore, StoreLease};

/// Hands out per-connection [`SessionLease`]s, bounded by `max_sessions`.
pub struct SessionRegistry {
    store: Arc<ShardedKvStore>,
    max_sessions: usize,
    active: AtomicUsize,
}

impl SessionRegistry {
    pub fn new(store: Arc<ShardedKvStore>, max_sessions: usize) -> Arc<Self> {
        Arc::new(SessionRegistry {
            store,
            max_sessions,
            active: AtomicUsize::new(0),
        })
    }

    /// Registry over a single-pool store (the unsharded server surface).
    pub fn single(store: Arc<KvStore>, max_sessions: usize) -> Arc<Self> {
        Self::new(ShardedKvStore::single(store), max_sessions)
    }

    /// Number of live leases.
    pub fn active(&self) -> usize {
        self.active.load(Ordering::Acquire)
    }

    pub fn store(&self) -> &Arc<ShardedKvStore> {
        &self.store
    }

    /// Leases a session slot for one connection, or `None` when the server
    /// is at its session cap. Worker ids are *not* acquired here — the
    /// returned lease picks them up shard-by-shard as operations route.
    pub fn lease(self: &Arc<Self>) -> Option<SessionLease> {
        let mut cur = self.active.load(Ordering::Acquire);
        loop {
            if cur >= self.max_sessions {
                return None;
            }
            match self.active.compare_exchange_weak(
                cur,
                cur + 1,
                Ordering::AcqRel,
                Ordering::Acquire,
            ) {
                Ok(_) => break,
                Err(seen) => cur = seen,
            }
        }
        Some(SessionLease {
            registry: Arc::clone(self),
            lease: Arc::new(self.store.lease()),
        })
    }
}

/// A leased session slot plus its lazily-filled per-shard worker ids; both
/// are returned on drop, so disconnect-heavy workloads never leak either.
pub struct SessionLease {
    registry: Arc<SessionRegistry>,
    lease: Arc<StoreLease>,
}

impl SessionLease {
    /// The per-shard worker-id lease, shared with the connection's session.
    pub fn store_lease(&self) -> &Arc<StoreLease> {
        &self.lease
    }
}

impl Drop for SessionLease {
    fn drop(&mut self) {
        // The StoreLease itself unregisters ids when its last Arc drops
        // (the session holds the other clone, dropped alongside this).
        self.registry.active.fetch_sub(1, Ordering::AcqRel);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kvstore::{make_key, KvBackend, KvStore};

    fn dram_store() -> Arc<KvStore> {
        Arc::new(KvStore::new(KvBackend::Dram, 4, 1024))
    }

    #[test]
    fn cap_is_enforced_and_slots_recycle() {
        let reg = SessionRegistry::single(dram_store(), 2);
        let a = reg.lease().expect("first lease");
        let _b = reg.lease().expect("second lease");
        assert!(reg.lease().is_none(), "third lease must be refused");
        assert_eq!(reg.active(), 2);
        drop(a);
        assert_eq!(reg.active(), 1);
        let _c = reg.lease().expect("slot freed by drop");
    }

    #[test]
    fn montage_ids_are_leased_lazily_and_returned_on_drop() {
        let pool = pmem::PmemPool::new(pmem::PmemConfig::strict_for_test(1 << 20));
        let esys = montage::EpochSys::format(
            pool,
            montage::EsysConfig {
                max_threads: 2,
                ..Default::default()
            },
        );
        let store =
            ShardedKvStore::single(Arc::new(KvStore::new(KvBackend::Montage(esys), 4, 1024)));
        // Session cap above the id-table size: connects beyond the table
        // are *accepted*; the table binds at first operation, and churn
        // must still never exhaust it.
        let reg = SessionRegistry::new(store.clone(), 8);
        let key = make_key(1);
        for _ in 0..100 {
            let a = reg.lease().expect("lease a");
            let b = reg.lease().expect("lease b");
            let c = reg.lease().expect("connects are cheap now");
            store.set(a.store_lease(), key, b"1").expect("a gets an id");
            store.set(b.store_lease(), key, b"2").expect("b gets an id");
            // Both ids are held; the third session's first op is refused.
            assert!(
                store.set(c.store_lease(), key, b"3").is_err(),
                "id table exhausted, op must be refused"
            );
            drop(a);
            // a's id returned: c can now operate.
            store
                .set(c.store_lease(), key, b"3")
                .expect("freed id reused");
            drop(b);
            drop(c);
        }
        assert_eq!(reg.active(), 0);
    }
}
