//! Connection admission and the shared store handle.
//!
//! Montage sizes its per-thread state (write-back buffers, epoch tracker
//! slots) to a fixed `max_threads` at pool creation — per shard. The old
//! thread-per-connection server leased one Montage id per live connection;
//! the event-driven core needs far fewer: each *worker* owns one lazily
//! filled [`kvstore::StoreLease`] for its whole lifetime, and every
//! connection multiplexed onto that worker rides it. What remains per
//! connection is pure admission control: the registry counts live sockets
//! against `max_conns`, and an over-capacity connect is shed at accept with
//! `SERVER_ERROR busy` instead of queueing unboundedly.

use montage::sync::uninstrumented::{AtomicUsize, Ordering};
use std::sync::Arc;

use kvstore::{KvStore, ShardedKvStore};

/// Counts live connections against `max_conns` and hands workers the store.
pub struct SessionRegistry {
    store: Arc<ShardedKvStore>,
    max_conns: usize,
    active: AtomicUsize,
}

impl SessionRegistry {
    pub fn new(store: Arc<ShardedKvStore>, max_conns: usize) -> Arc<Self> {
        Arc::new(SessionRegistry {
            store,
            max_conns,
            active: AtomicUsize::new(0),
        })
    }

    /// Registry over a single-pool store (the unsharded server surface).
    pub fn single(store: Arc<KvStore>, max_conns: usize) -> Arc<Self> {
        Self::new(ShardedKvStore::single(store), max_conns)
    }

    /// Number of live connections.
    pub fn active(&self) -> usize {
        self.active.load(Ordering::Acquire)
    }

    pub fn store(&self) -> &Arc<ShardedKvStore> {
        &self.store
    }

    /// Claims a connection slot; `false` means the server is at capacity and
    /// the connect must be shed. Pair every successful admit with exactly
    /// one [`SessionRegistry::release`].
    pub fn try_admit(&self) -> bool {
        let mut cur = self.active.load(Ordering::Acquire);
        loop {
            if cur >= self.max_conns {
                return false;
            }
            match self.active.compare_exchange_weak(
                cur,
                cur + 1,
                Ordering::AcqRel,
                Ordering::Acquire,
            ) {
                Ok(_) => return true,
                Err(seen) => cur = seen,
            }
        }
    }

    /// Returns a slot claimed by [`SessionRegistry::try_admit`].
    pub fn release(&self) {
        self.active.fetch_sub(1, Ordering::AcqRel);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kvstore::{make_key, KvBackend, KvStore};

    fn dram_store() -> Arc<KvStore> {
        Arc::new(KvStore::new(KvBackend::Dram, 4, 1024))
    }

    #[test]
    fn cap_is_enforced_and_slots_recycle() {
        let reg = SessionRegistry::single(dram_store(), 2);
        assert!(reg.try_admit(), "first admit");
        assert!(reg.try_admit(), "second admit");
        assert!(!reg.try_admit(), "third connect must be shed");
        assert_eq!(reg.active(), 2);
        reg.release();
        assert_eq!(reg.active(), 1);
        assert!(reg.try_admit(), "slot freed by release");
    }

    #[test]
    fn montage_ids_bind_to_workers_not_connections() {
        let pool = pmem::PmemPool::new(pmem::PmemConfig::strict_for_test(1 << 20));
        let esys = montage::EpochSys::format(
            pool,
            montage::EsysConfig {
                max_threads: 2,
                ..Default::default()
            },
        );
        let store =
            ShardedKvStore::single(Arc::new(KvStore::new(KvBackend::Montage(esys), 4, 1024)));
        // The connection cap is far above the id-table size: ids are a
        // per-*worker* resource, acquired lazily at a worker's first op on a
        // shard and held for the worker's lifetime, so admission never
        // consumes them.
        let reg = SessionRegistry::new(store.clone(), 64);
        for _ in 0..32 {
            assert!(reg.try_admit(), "connects are cheap now");
        }
        let key = make_key(1);
        let a = store.lease();
        let b = store.lease();
        store.set(&a, key, b"1").expect("worker a gets an id");
        store.set(&b, key, b"2").expect("worker b gets an id");
        // Both ids are held by live workers; a third worker's first op is
        // refused until one of them retires.
        let c = store.lease();
        assert!(
            store.set(&c, key, b"3").is_err(),
            "id table exhausted, op must be refused"
        );
        drop(a);
        store.set(&c, key, b"3").expect("freed id reused");
        for _ in 0..32 {
            reg.release();
        }
        assert_eq!(reg.active(), 0);
    }
}
