//! Session registry: leases Montage thread ids to connections.
//!
//! Montage sizes its per-thread state (write-back buffers, epoch tracker
//! slots) to a fixed `max_threads` at pool creation. A server accepts and
//! drops connections indefinitely, so it cannot burn one id per connection
//! lifetime — it leases an id when a connection arrives and returns it to
//! the epoch system's free list on disconnect. The registry also enforces
//! its own session cap so an over-capacity connect is refused with a
//! protocol error instead of exhausting the id table (or panicking, as
//! `EpochSys::register_thread` would).

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

use kvstore::KvStore;

/// Hands out per-connection [`SessionLease`]s, bounded by `max_sessions`.
pub struct SessionRegistry {
    store: Arc<KvStore>,
    max_sessions: usize,
    active: AtomicUsize,
}

impl SessionRegistry {
    pub fn new(store: Arc<KvStore>, max_sessions: usize) -> Arc<Self> {
        Arc::new(SessionRegistry {
            store,
            max_sessions,
            active: AtomicUsize::new(0),
        })
    }

    /// Number of live leases.
    pub fn active(&self) -> usize {
        self.active.load(Ordering::Acquire)
    }

    pub fn store(&self) -> &Arc<KvStore> {
        &self.store
    }

    /// Leases a thread id for one connection, or `None` when the server is
    /// at capacity (either the session cap or the epoch system's id table).
    pub fn lease(self: &Arc<Self>) -> Option<SessionLease> {
        // Reserve a session slot first; only then touch the id table, so a
        // refused connect leaves the epoch system untouched.
        let mut cur = self.active.load(Ordering::Acquire);
        loop {
            if cur >= self.max_sessions {
                return None;
            }
            match self.active.compare_exchange_weak(
                cur,
                cur + 1,
                Ordering::AcqRel,
                Ordering::Acquire,
            ) {
                Ok(_) => break,
                Err(seen) => cur = seen,
            }
        }
        match self.store.try_register_thread() {
            Some(tid) => Some(SessionLease {
                registry: Arc::clone(self),
                tid,
            }),
            None => {
                self.active.fetch_sub(1, Ordering::AcqRel);
                None
            }
        }
    }
}

/// A leased thread id; returned to the registry (and the epoch system's
/// free list) on drop, so disconnect-heavy workloads never leak ids.
pub struct SessionLease {
    registry: Arc<SessionRegistry>,
    tid: usize,
}

impl SessionLease {
    pub fn tid(&self) -> usize {
        self.tid
    }
}

impl Drop for SessionLease {
    fn drop(&mut self) {
        self.registry.store.unregister_thread(self.tid);
        self.registry.active.fetch_sub(1, Ordering::AcqRel);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kvstore::{KvBackend, KvStore};

    fn dram_store() -> Arc<KvStore> {
        Arc::new(KvStore::new(KvBackend::Dram, 4, 1024))
    }

    #[test]
    fn cap_is_enforced_and_slots_recycle() {
        let reg = SessionRegistry::new(dram_store(), 2);
        let a = reg.lease().expect("first lease");
        let _b = reg.lease().expect("second lease");
        assert!(reg.lease().is_none(), "third lease must be refused");
        assert_eq!(reg.active(), 2);
        drop(a);
        assert_eq!(reg.active(), 1);
        let _c = reg.lease().expect("slot freed by drop");
    }

    #[test]
    fn montage_ids_are_returned_on_drop() {
        let pool = pmem::PmemPool::new(pmem::PmemConfig::strict_for_test(1 << 20));
        let esys = montage::EpochSys::format(
            pool,
            montage::EsysConfig {
                max_threads: 2,
                ..Default::default()
            },
        );
        let store = Arc::new(KvStore::new(KvBackend::Montage(esys), 4, 1024));
        // Session cap above the id-table size: the id table is the binding
        // constraint, and churn must still never exhaust it.
        let reg = SessionRegistry::new(store, 8);
        for _ in 0..100 {
            let a = reg.lease().expect("lease a");
            let b = reg.lease().expect("lease b");
            assert!(reg.lease().is_none(), "id table exhausted, must refuse");
            drop(a);
            drop(b);
        }
        assert_eq!(reg.active(), 0);
    }
}
