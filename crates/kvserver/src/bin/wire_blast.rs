//! Connection-scale load generator for the wire tests.
//!
//! Opens N concurrent connections to a kvserver, then drives one
//! set/get round-trip over every one of them. Runs as a *subprocess* of
//! `tests/wire_scale.rs` because holding ten thousand sockets on each side
//! of loopback needs two processes' worth of file descriptors — a single
//! test process would hit the default rlimit with the server's half alone.
//!
//! Protocol on stdio (driven by the parent test):
//!
//! ```text
//! wire_blast <addr> <conns>
//!   -> "READY <n>"     all n connections are open and idle
//!   <- "GO"            parent has verified the server sees them
//!   -> "DONE <ok>"     every connection did set+get; ok = successes
//! ```

use std::io::{BufRead, Write};

use kvserver::WireClient;

fn main() {
    let mut args = std::env::args().skip(1);
    let addr: std::net::SocketAddr = args
        .next()
        .expect("usage: wire_blast <addr> <conns>")
        .parse()
        .expect("addr");
    let conns: usize = args
        .next()
        .expect("usage: wire_blast <addr> <conns>")
        .parse()
        .expect("conns");

    let mut clients = Vec::with_capacity(conns);
    for i in 0..conns {
        match WireClient::connect(addr) {
            Ok(c) => clients.push(c),
            Err(e) => {
                eprintln!("connect {i}/{conns} failed: {e}");
                std::process::exit(2);
            }
        }
    }
    println!("READY {}", clients.len());
    std::io::stdout().flush().unwrap();

    let mut line = String::new();
    std::io::stdin().lock().read_line(&mut line).unwrap();
    assert_eq!(line.trim(), "GO", "parent protocol violation");

    let mut ok = 0usize;
    for (i, c) in clients.iter_mut().enumerate() {
        let key = format!("blast{i}");
        let val = format!("v{i}").into_bytes();
        if c.set(&key, 0, &val).is_ok()
            && c.get(&key).ok().flatten().map(|(_, v)| v).as_deref() == Some(&val[..])
        {
            ok += 1;
        }
    }
    println!("DONE {ok}");
    std::io::stdout().flush().unwrap();
    for c in clients {
        let _ = c.quit();
    }
}
