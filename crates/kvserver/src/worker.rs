//! A server worker: one thread multiplexing many nonblocking connections.
//!
//! Each worker owns a private connection table (no locks on the hot path —
//! the accept loop hands new sockets over through an inbox) and one lazily
//! filled [`kvstore::StoreLease`] shared by everything it serves. A sweep
//! is: adopt new connections, read every readable socket, frame what
//! arrived, execute the whole harvest as one batch under a shared epoch
//! window ([`crate::batch`]), and only then flush the queued replies — the
//! flush-after-fence ordering is what turns per-sweep batching into group
//! commit.
//!
//! The read and parse phases are bounded per connection per sweep, so one
//! firehose connection cannot starve its neighbours, and a stalled or
//! half-written frame (slow-loris) costs only its own connection's state —
//! the sweep moves on past a `WouldBlock` immediately.

use montage::sync::uninstrumented::Ordering;
use std::io::{ErrorKind, Read, Write};
use std::net::{Shutdown, TcpStream};
use std::sync::Arc;
use std::time::{Duration, Instant};

use kvstore::protocol::Session;

use crate::event_loop::Inbox;
use crate::frame::{Request, RequestReader};
use crate::server::Shared;

/// Read-syscall buffer size.
const READ_CHUNK: usize = 16 << 10;
/// Per-connection read budget per sweep.
const MAX_READ_PER_CONN: usize = 64 << 10;
/// Per-connection framed-request budget per sweep.
const MAX_REQS_PER_CONN: usize = 512;
/// A connection whose unflushed output exceeds this is dropped — a peer
/// that stops reading must not balloon server memory.
const MAX_OUT_BUFFER: usize = 16 << 20;
/// Idle sweeps spent yielding before the worker falls back to sleeping.
const SPIN_SWEEPS: u32 = 64;

/// One multiplexed connection, owned by exactly one worker.
pub(crate) struct Conn {
    pub stream: TcpStream,
    pub reader: RequestReader,
    /// Queued replies; flushed only after the batch fence.
    pub out: Vec<u8>,
    /// Prefix of `out` already written to the socket.
    pub sent: usize,
    pub last_activity: Instant,
    /// Last time a flush made progress, for the write-stall timeout.
    pub last_write: Instant,
    /// When the reader first held an *incomplete* frame with no complete
    /// request to show for it. A slow-loris trickle resets `last_activity`
    /// on every byte but can never clear this until it finishes the frame,
    /// so `idle_timeout` measures from here.
    pub partial_since: Option<Instant>,
    /// Reply queued, connection closes once `out` drains (quit, fatal
    /// protocol error, handler panic).
    pub closing: bool,
    /// Tear down now, without draining.
    pub dead: bool,
    /// Durable session id attached via the `session` command — the client's
    /// exactly-once identity. Deliberately *not* tied to the connection's
    /// lifetime: a reconnecting client re-attaches the same id and replays
    /// its last request id against the store's descriptor table.
    pub session: Option<u64>,
}

pub(crate) fn run(widx: usize, inbox: Arc<Inbox>, shared: Arc<Shared>) {
    let store = Arc::clone(shared.registry.store());
    let lease = Arc::new(store.lease());
    let session = Session::sharded(Arc::clone(&store), Arc::clone(&lease));
    let mut conns: Vec<Conn> = Vec::new();
    let mut buf = vec![0u8; READ_CHUNK];
    let mut idle_sweeps: u32 = 0;

    loop {
        for nc in inbox.drain() {
            let _ = nc.stream.set_nonblocking(true);
            let _ = nc.stream.set_nodelay(true);
            let now = Instant::now();
            conns.push(Conn {
                stream: nc.stream,
                reader: RequestReader::new(shared.cfg.max_value_bytes),
                out: Vec::new(),
                sent: 0,
                last_activity: now,
                last_write: now,
                partial_since: None,
                closing: false,
                dead: false,
                session: None,
            });
        }
        if shared.shutdown.load(Ordering::Acquire) {
            break;
        }

        let now = Instant::now();
        let mut batch: Vec<(usize, Request)> = Vec::new();
        let mut progressed = false;

        for (ci, c) in conns.iter_mut().enumerate() {
            if c.dead {
                continue;
            }
            if now.duration_since(c.last_activity) > shared.cfg.read_timeout {
                c.dead = true; // idle reap
                continue;
            }
            if c.closing {
                continue; // draining replies only
            }
            let mut read_bytes = 0usize;
            loop {
                match c.stream.read(&mut buf) {
                    Ok(0) => {
                        c.dead = true;
                        break;
                    }
                    Ok(n) => {
                        c.reader.feed(&buf[..n]);
                        c.last_activity = now;
                        progressed = true;
                        read_bytes += n;
                        if read_bytes >= MAX_READ_PER_CONN {
                            break;
                        }
                    }
                    Err(e) if e.kind() == ErrorKind::WouldBlock => break,
                    Err(e) if e.kind() == ErrorKind::Interrupted => continue,
                    Err(_) => {
                        c.dead = true;
                        break;
                    }
                }
            }
            if c.dead {
                continue;
            }
            let mut framed = 0usize;
            while framed < MAX_REQS_PER_CONN {
                match c.reader.next_request() {
                    Some(req) => {
                        batch.push((ci, req));
                        framed += 1;
                    }
                    None => break,
                }
            }
            // Slow-loris reap: a frame the peer started must be finished
            // within `idle_timeout`. Completing any request (or draining
            // the buffer) resets the clock; trickling bytes does not.
            if framed > 0 || c.reader.buffered() == 0 {
                c.partial_since = None;
            } else if c.partial_since.is_none() {
                c.partial_since = Some(now);
            }
            if c.partial_since
                .is_some_and(|t| now.duration_since(t) > shared.cfg.idle_timeout)
            {
                c.dead = true;
            }
        }

        if !batch.is_empty() {
            progressed = true;
            crate::batch::execute(widx, &mut conns, batch, &session, &store, &lease, &shared);
        }

        // Flush phase: strictly after the batch (and its fence).
        for c in conns.iter_mut() {
            flush(c, now, &shared);
        }

        conns.retain_mut(|c| {
            let drained = c.sent >= c.out.len();
            if c.dead || (c.closing && drained) {
                retire(c, &shared);
                false
            } else {
                true
            }
        });

        if progressed {
            idle_sweeps = 0;
        } else {
            idle_sweeps += 1;
            if idle_sweeps <= SPIN_SWEEPS {
                // Stay hot briefly: a closed-loop client's next request is
                // usually already in flight, and sleeping here would put a
                // scheduler quantum into every round-trip.
                std::thread::yield_now();
            } else {
                std::thread::sleep(Duration::from_millis(1));
            }
        }
    }

    // Shutdown: adopt anything handed over but never served so its slot
    // returns, then close everything. A graceful stop gives queued replies
    // one last nonblocking flush; a crash-style stop discards them — the
    // point of `crash()` is to model acks that never escaped the machine.
    for nc in inbox.drain() {
        let _ = nc.stream.shutdown(Shutdown::Both);
        shared.registry.release();
    }
    let graceful = !shared.crashed.load(Ordering::Acquire);
    let now = Instant::now();
    for c in conns.iter_mut() {
        if graceful {
            flush(c, now, &shared);
        }
        retire(c, &shared);
    }
}

fn retire(c: &mut Conn, shared: &Shared) {
    let _ = c.stream.shutdown(Shutdown::Both);
    if c.session.take().is_some() {
        shared.detach_session(); // disconnect releases the session slot
    }
    shared.registry.release();
}

/// Writes as much queued output as the socket accepts right now.
fn flush(c: &mut Conn, now: Instant, shared: &Shared) {
    if c.sent >= c.out.len() {
        if !c.out.is_empty() {
            c.out.clear();
            c.sent = 0;
        }
        c.last_write = now;
        return;
    }
    while c.sent < c.out.len() {
        match c.stream.write(&c.out[c.sent..]) {
            Ok(0) => {
                c.dead = true;
                break;
            }
            Ok(n) => {
                c.sent += n;
                c.last_write = now;
            }
            Err(e) if e.kind() == ErrorKind::WouldBlock => {
                if now.duration_since(c.last_write) > shared.cfg.write_timeout {
                    c.dead = true; // peer stopped reading
                }
                break;
            }
            Err(e) if e.kind() == ErrorKind::Interrupted => continue,
            Err(_) => {
                c.dead = true;
                break;
            }
        }
    }
    if c.sent >= c.out.len() {
        c.out.clear();
        c.sent = 0;
    } else if c.out.len() - c.sent > MAX_OUT_BUFFER {
        c.dead = true;
    }
}
