//! Server configuration, lifecycle, and the durability boundary.
//!
//! Serving itself is event-driven: an accept thread ([`crate::event_loop`])
//! feeds a small pool of workers, each multiplexing many nonblocking
//! sockets and executing each sweep's harvest as one batch under a shared
//! epoch window ([`crate::worker`], [`crate::batch`]). This module owns
//! what surrounds that core: the config, the shared state, the `stats`
//! reply, and the start/shutdown/crash lifecycle.
//!
//! ## Where durability lives on the reply path
//!
//! Montage is *buffered* durable: an acked mutation may sit in an epoch that
//! a crash erases (the last two epochs are always at risk). The server keeps
//! that contract visible in the protocol:
//!
//! * ordinary replies (`STORED`, `DELETED`, …) promise buffered durability
//!   only — they are queued as soon as the session executes the command;
//! * the `sync` admin command replies `SYNCED` only **after**
//!   [`montage::EpochSys::sync`] has returned, i.e. after every mutation
//!   acked before it has reached the persistence domain;
//! * with [`ServerConfig::sync_every`] = N, each batch whose mutations carry
//!   the server-wide counter across a multiple of N ends with one epoch
//!   sync per touched shard — the group-commit fence — and **no reply from
//!   that batch is flushed before the fence** (the paper's Fig. 9 "sync per
//!   K ops" sweep, amortized across the batch instead of paid per
//!   mutation);
//! * [`ServerHandle::shutdown`] ends with a final sync, so a clean shutdown
//!   loses nothing; [`ServerHandle::crash`] deliberately skips it.

use montage::sync::uninstrumented::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::net::{SocketAddr, TcpListener};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

use kvstore::{KvStore, ShardedKvStore};

use crate::batch::{fence_quantile_us, ServerStats, FENCE_HIST_BUCKETS, HIST_BUCKETS};
use crate::registry::SessionRegistry;

#[derive(Clone, Debug)]
pub struct ServerConfig {
    /// Bind address; port 0 picks an ephemeral port.
    pub addr: String,
    /// Worker threads multiplexing connections; 0 = auto (half the
    /// available cores, clamped to [1, 4] — batching thrives on fewer,
    /// busier workers).
    pub workers: usize,
    /// Connection cap; the N+1th concurrent connect is shed at accept with
    /// `SERVER_ERROR busy` and a clean close.
    pub max_conns: usize,
    /// Values above this are refused with `SERVER_ERROR object too large`.
    pub max_value_bytes: usize,
    /// Idle connections are dropped after this long without a byte.
    pub read_timeout: Duration,
    /// A connection whose peer accepts no output for this long is dropped.
    pub write_timeout: Duration,
    /// A connection with a *partially* framed request (a command line or
    /// data block it started but never finished) is dropped once the
    /// fragment is this old. This is the slow-loris reap: trickling one
    /// byte per second resets `read_timeout` forever but never completes a
    /// frame, so the frame — not the byte — carries the deadline.
    pub idle_timeout: Duration,
    /// Wall-clock budget for the periodic group fence, per shard. When a
    /// shard cannot certify durability in time (injected straggler delays,
    /// a wedged medium), the batch's connections that routed mutations to
    /// it have their unflushed acks withheld and are severed with
    /// `SERVER_ERROR timeout`; connections on healthy shards commit
    /// normally. `None` waits out the fence unconditionally.
    pub fence_deadline: Option<Duration>,
    /// Cap on concurrently *attached* durable sessions (the `session <id>`
    /// verb). Each attached connection holds one slot until it detaches
    /// (`session close`) or disconnects; an attach beyond the cap is shed
    /// with `SERVER_ERROR too many sessions`. Bounds the worst-case growth
    /// of the per-shard descriptor tables an adversarial client mix can
    /// provoke.
    pub max_sessions: usize,
    /// `Some(n)`: fence each batch that carries the server-wide mutation
    /// counter across a multiple of n (Fig. 9's periodic-sync mode, group
    /// committed).
    pub sync_every: Option<u64>,
    /// Test-only fault injection: panic inside the command handler whenever
    /// this command name arrives. Exercises the server's panic isolation —
    /// one poisoned request must not take down other connections.
    pub panic_on_cmd: Option<String>,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            addr: "127.0.0.1:0".into(),
            workers: 0,
            max_conns: 64,
            max_value_bytes: 1 << 20,
            read_timeout: Duration::from_secs(30),
            write_timeout: Duration::from_secs(10),
            idle_timeout: Duration::from_secs(5),
            fence_deadline: None,
            max_sessions: 256,
            sync_every: None,
            panic_on_cmd: None,
        }
    }
}

impl ServerConfig {
    /// The worker count `start` will actually use.
    pub fn resolved_workers(&self) -> usize {
        if self.workers > 0 {
            return self.workers;
        }
        std::thread::available_parallelism()
            .map(|n| n.get() / 2)
            .unwrap_or(1)
            .clamp(1, 4)
    }
}

pub(crate) struct Shared {
    pub(crate) registry: Arc<SessionRegistry>,
    pub(crate) cfg: ServerConfig,
    pub(crate) shutdown: AtomicBool,
    /// Crash-style stop: workers tear connections down without draining
    /// queued replies. Workers never block (nonblocking sweeps), so a flag
    /// severs everything within one sweep — no per-connection socket clones
    /// needed, which halves the server's fd footprint at 10k connections.
    pub(crate) crashed: AtomicBool,
    /// Mutations since start, for the sync-every-N barrier (server-wide,
    /// like a log sequence number).
    pub(crate) mutations: AtomicU64,
    /// Durable sessions currently attached (each `session <id>` attach
    /// holds one slot against `max_sessions` until detach or disconnect).
    pub(crate) sessions: AtomicUsize,
    /// Per-worker group-commit counters.
    pub(crate) stats: ServerStats,
}

impl Shared {
    /// Claims a session slot; `false` sheds the attach.
    pub(crate) fn try_attach_session(&self) -> bool {
        let mut cur = self.sessions.load(Ordering::Acquire);
        loop {
            if cur >= self.cfg.max_sessions {
                return false;
            }
            match self.sessions.compare_exchange_weak(
                cur,
                cur + 1,
                Ordering::AcqRel,
                Ordering::Acquire,
            ) {
                Ok(_) => return true,
                Err(seen) => cur = seen,
            }
        }
    }

    /// Returns a slot claimed by [`Shared::try_attach_session`].
    pub(crate) fn detach_session(&self) {
        self.sessions.fetch_sub(1, Ordering::AcqRel);
    }
}

pub struct KvServer;

impl KvServer {
    /// Binds, spawns the accept loop and workers, and returns a handle.
    /// Serving happens on background threads; the caller keeps the handle
    /// to stop it.
    pub fn start(cfg: ServerConfig, store: Arc<KvStore>) -> std::io::Result<ServerHandle> {
        Self::start_sharded(cfg, ShardedKvStore::single(store))
    }

    /// [`KvServer::start`] over a sharded store. Workers route each key to
    /// its owning shard and lease per-shard worker ids lazily; `sync`,
    /// `stats`, and shutdown fan out across every shard, and a faulted
    /// shard degrades only the keys it owns.
    pub fn start_sharded(
        cfg: ServerConfig,
        store: Arc<ShardedKvStore>,
    ) -> std::io::Result<ServerHandle> {
        let listener = TcpListener::bind(&cfg.addr)?;
        listener.set_nonblocking(true)?;
        let addr = listener.local_addr()?;
        // Each worker's lease can hold one Montage id per shard for the
        // worker's lifetime; more workers than the tightest shard's id table
        // would leave some of them permanently unable to operate.
        let workers = cfg
            .resolved_workers()
            .min(store.min_id_capacity().unwrap_or(usize::MAX))
            .max(1);
        let max_conns = cfg.max_conns;
        let n_shards = store.n_shards();
        let shared = Arc::new(Shared {
            registry: SessionRegistry::new(store, max_conns),
            cfg,
            shutdown: AtomicBool::new(false),
            crashed: AtomicBool::new(false),
            mutations: AtomicU64::new(0),
            sessions: AtomicUsize::new(0),
            stats: ServerStats::new(workers, n_shards),
        });
        let accept_shared = Arc::clone(&shared);
        let accept = std::thread::spawn(move || crate::event_loop::run(listener, accept_shared));
        Ok(ServerHandle {
            addr,
            shared,
            accept,
        })
    }
}

/// The `stats` admin command, memcached-style: `STAT <name> <value>` lines
/// then `END`. Alongside cache occupancy it surfaces the pool's persistence
/// and fault-injection counters (so crash-sweep tests can observe injected
/// crashes, torn lines, and quarantined payloads over the wire) and the
/// group-commit counters: per-worker batch-size histograms, fence counts,
/// and the acks-per-fence amortization ratio.
pub(crate) fn stats_reply(shared: &Shared) -> String {
    let store = shared.registry.store();
    let mut out = String::new();
    let mut stat = |name: &str, value: u64| {
        out.push_str(&format!("STAT {name} {value}\r\n"));
    };
    stat("curr_items", store.len() as u64);
    stat("evictions", store.evictions() as u64);
    // DRAM the scan index costs (ROADMAP item 3): the per-stripe ordered
    // mirrors, reported like memcached's hash-table overhead lines.
    stat("ordered_mirror_bytes", store.ordered_mirror_bytes() as u64);
    stat("curr_connections", shared.registry.active() as u64);
    stat(
        "curr_sessions",
        shared.sessions.load(Ordering::Acquire) as u64,
    );
    stat("total_mutations", shared.mutations.load(Ordering::Acquire));
    stat("shards", store.n_shards() as u64);
    // Store-wide aggregates keep the single-pool stat names so existing
    // consumers (dashboards, the degradation tests) read merged counters.
    if let Some(snap) = store.pool_stats_merged() {
        stat("pmem_clwbs", snap.clwbs);
        stat("pmem_sfences", snap.sfences);
        stat("pmem_lines_drained", snap.lines_drained);
        stat("pmem_crashes", snap.crashes);
        stat("pmem_injected_crashes", snap.injected_crashes);
        stat("pmem_torn_lines", snap.torn_lines);
        stat("pmem_quarantined_payloads", snap.quarantined_payloads);
    }
    if let Some(e) = store.epochs()[0] {
        stat("montage_epoch", e);
    }
    stat("pool_faulted", u64::from(store.fault_any().is_some()));
    // Exactly-once counters: how often the descriptor table answered for a
    // retried request, and what the table costs in pool bytes.
    let ds = store.detect_stats_merged();
    stat("dedupe_hits", ds.dedupe_hits);
    stat("replayed_acks", ds.replayed_acks);
    stat("session_descriptors", ds.descriptors);
    stat("session_table_bytes", ds.table_bytes);
    // Group-commit observability: totals, the amortization ratio the whole
    // design exists to raise, and per-worker batch-size histograms.
    let workers = &shared.stats.workers;
    stat("gc_workers", workers.len() as u64);
    let mut totals = (0u64, 0u64, 0u64, 0u64);
    let mut timeouts = 0u64;
    let mut scans = 0u64;
    let mut hist = [0u64; HIST_BUCKETS.len()];
    for w in workers.iter() {
        totals.0 += w.batches.load(Ordering::Relaxed);
        totals.1 += w.requests.load(Ordering::Relaxed);
        totals.2 += w.fences.load(Ordering::Relaxed);
        totals.3 += w.acks.load(Ordering::Relaxed);
        timeouts += w.fence_timeouts.load(Ordering::Relaxed);
        scans += w.scans.load(Ordering::Relaxed);
        for (slot, bucket) in hist.iter_mut().zip(w.hist.iter()) {
            *slot += bucket.load(Ordering::Relaxed);
        }
    }
    stat("scan_requests", scans);
    stat("gc_batches", totals.0);
    stat("gc_batched_requests", totals.1);
    stat("gc_fences", totals.2);
    stat("gc_acks", totals.3);
    stat("gc_fence_timeouts", timeouts);
    stat(
        "gc_acks_per_fence_x1000",
        (totals.3 * 1000).checked_div(totals.2).unwrap_or(0),
    );
    // Fence latency (ROADMAP item 2): the distribution an operator reads
    // before picking a `fence_deadline`. Quantiles are log2-bucket floors —
    // they never overstate — and the merged lines aggregate every shard's
    // histogram so the single-shard case still reports.
    let fence_hists: Vec<[u64; FENCE_HIST_BUCKETS]> = shared
        .stats
        .shard_fences
        .iter()
        .map(|s| {
            let mut h = [0u64; FENCE_HIST_BUCKETS];
            for (slot, bucket) in h.iter_mut().zip(s.hist.iter()) {
                *slot = bucket.load(Ordering::Relaxed);
            }
            h
        })
        .collect();
    let mut merged_hist = [0u64; FENCE_HIST_BUCKETS];
    for h in &fence_hists {
        for (m, v) in merged_hist.iter_mut().zip(h.iter()) {
            *m += v;
        }
    }
    stat("fence_samples", merged_hist.iter().sum());
    if let (Some(p50), Some(p99)) = (
        fence_quantile_us(&merged_hist, 50),
        fence_quantile_us(&merged_hist, 99),
    ) {
        stat("fence_p50_us", p50);
        stat("fence_p99_us", p99);
    }
    for (floor, count) in HIST_BUCKETS.iter().zip(hist.iter()) {
        stat(&format!("gc_batch_hist_{floor}"), *count);
    }
    for (widx, w) in workers.iter().enumerate() {
        stat(
            &format!("worker{widx}_batches"),
            w.batches.load(Ordering::Relaxed),
        );
        stat(
            &format!("worker{widx}_requests"),
            w.requests.load(Ordering::Relaxed),
        );
        stat(
            &format!("worker{widx}_fences"),
            w.fences.load(Ordering::Relaxed),
        );
        for (floor, bucket) in HIST_BUCKETS.iter().zip(w.hist.iter()) {
            stat(
                &format!("worker{widx}_batch_hist_{floor}"),
                bucket.load(Ordering::Relaxed),
            );
        }
    }
    // Per-shard breakdown: quarantine and fault containment are per-shard
    // facts, and operators need to see *which* shard is degraded.
    if store.n_shards() > 1 {
        let epochs = store.epochs();
        for (i, snap) in store.pool_stats_per_shard().into_iter().enumerate() {
            if let Some(snap) = snap {
                stat(&format!("shard{i}_pmem_clwbs"), snap.clwbs);
                stat(&format!("shard{i}_pmem_sfences"), snap.sfences);
                stat(
                    &format!("shard{i}_pmem_injected_crashes"),
                    snap.injected_crashes,
                );
                stat(
                    &format!("shard{i}_pmem_quarantined_payloads"),
                    snap.quarantined_payloads,
                );
            }
            if let Some(e) = epochs[i] {
                stat(&format!("shard{i}_montage_epoch"), e);
            }
            stat(
                &format!("shard{i}_pool_faulted"),
                u64::from(store.shard_fault(i).is_some()),
            );
            if let (Some(p50), Some(p99)) = (
                fence_quantile_us(&fence_hists[i], 50),
                fence_quantile_us(&fence_hists[i], 99),
            ) {
                stat(&format!("shard{i}_fence_p50_us"), p50);
                stat(&format!("shard{i}_fence_p99_us"), p99);
            }
        }
        for (i, bytes) in store
            .ordered_mirror_bytes_per_shard()
            .into_iter()
            .enumerate()
        {
            stat(&format!("shard{i}_ordered_mirror_bytes"), bytes as u64);
        }
        for (i, d) in store.detect_stats_per_shard().into_iter().enumerate() {
            stat(&format!("shard{i}_descriptors"), d.descriptors);
        }
    }
    out.push_str("END\r\n");
    out
}

/// Owner handle for a running server.
pub struct ServerHandle {
    addr: SocketAddr,
    shared: Arc<Shared>,
    accept: JoinHandle<()>,
}

impl ServerHandle {
    /// The bound address (with the resolved ephemeral port).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Live connection count.
    pub fn active_sessions(&self) -> usize {
        self.shared.registry.active()
    }

    /// Graceful stop: refuse new connections, let every worker finish its
    /// in-flight sweep (batch, fence, flush) and exit, then run a final
    /// epoch sync so every acked mutation is persistent.
    pub fn shutdown(self) {
        self.shared.shutdown.store(true, Ordering::Release);
        let _ = self.accept.join(); // joins workers too
                                    // Final barrier across every shard; a faulted shard cannot sync and
                                    // is skipped (its loss is already the fault plan's fact on disk).
        let _ = self.shared.registry.store().sync();
    }

    /// Simulated server crash: sever every connection mid-stream (queued
    /// replies are discarded, not drained) and stop all threads **without**
    /// the final sync, leaving the pool exactly as buffered durability left
    /// it. Pair with [`pmem::PmemPool::crash`] and
    /// [`montage::recovery::recover`] to exercise crash-restart.
    pub fn crash(self) {
        self.shared.crashed.store(true, Ordering::Release);
        self.shared.shutdown.store(true, Ordering::Release);
        let _ = self.accept.join();
    }
}
