//! The TCP server: accept loop, per-connection workers, and the durability
//! boundary between socket replies and the epoch system.
//!
//! ## Where durability lives on the reply path
//!
//! Montage is *buffered* durable: an acked mutation may sit in an epoch that
//! a crash erases (the last two epochs are always at risk). The server keeps
//! that contract visible in the protocol:
//!
//! * ordinary replies (`STORED`, `DELETED`, …) promise buffered durability
//!   only — they are written as soon as the session executes the command;
//! * the `sync` admin command replies `SYNCED` only **after**
//!   [`montage::EpochSys::sync`] has returned, i.e. after every mutation
//!   acked before it has reached the persistence domain;
//! * with [`ServerConfig::sync_every`] = N, the worker inserts that same
//!   barrier before the reply of every Nth mutation (the paper's Fig. 9
//!   "sync per K ops" sweep, moved to the server edge);
//! * [`ServerHandle::shutdown`] ends with a final sync, so a clean shutdown
//!   loses nothing; [`ServerHandle::crash`] deliberately skips it.

use std::collections::HashMap;
use std::io::{ErrorKind, Read, Write};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream};
use std::panic::AssertUnwindSafe;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use parking_lot::Mutex;

use kvstore::protocol::Session;
use kvstore::{KvStore, ShardedKvStore};

use crate::frame::{Request, RequestReader};
use crate::registry::SessionRegistry;

/// How often a blocked read wakes up to check the shutdown flag and the
/// idle deadline.
const POLL_INTERVAL: Duration = Duration::from_millis(50);

#[derive(Clone, Debug)]
pub struct ServerConfig {
    /// Bind address; port 0 picks an ephemeral port.
    pub addr: String,
    /// Connection cap; the N+1th concurrent connect is answered with
    /// `SERVER_ERROR` and closed.
    pub max_sessions: usize,
    /// Values above this are refused with `SERVER_ERROR object too large`.
    pub max_value_bytes: usize,
    /// Idle connections are dropped after this long without a byte.
    pub read_timeout: Duration,
    /// Socket write timeout.
    pub write_timeout: Duration,
    /// `Some(n)`: run a full epoch sync before the reply of every nth
    /// mutation, server-wide (Fig. 9's periodic-sync mode).
    pub sync_every: Option<u64>,
    /// Test-only fault injection: panic inside the command handler whenever
    /// this command name arrives. Exercises the server's panic isolation —
    /// one poisoned request must not take down other connections.
    pub panic_on_cmd: Option<String>,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            addr: "127.0.0.1:0".into(),
            max_sessions: 64,
            max_value_bytes: 1 << 20,
            read_timeout: Duration::from_secs(30),
            write_timeout: Duration::from_secs(10),
            sync_every: None,
            panic_on_cmd: None,
        }
    }
}

struct Shared {
    registry: Arc<SessionRegistry>,
    cfg: ServerConfig,
    shutdown: AtomicBool,
    /// Socket clones of live connections, keyed by connection id, so
    /// `crash()` can sever them mid-request.
    conns: Mutex<HashMap<u64, TcpStream>>,
    /// Mutations since start, for the sync-every-N barrier (server-wide,
    /// like a log sequence number).
    mutations: AtomicU64,
}

pub struct KvServer;

impl KvServer {
    /// Binds, spawns the accept loop, and returns a handle. Serving happens
    /// on background threads; the caller keeps the handle to stop it.
    pub fn start(cfg: ServerConfig, store: Arc<KvStore>) -> std::io::Result<ServerHandle> {
        Self::start_sharded(cfg, ShardedKvStore::single(store))
    }

    /// [`KvServer::start`] over a sharded store. Connections route each key
    /// to its owning shard and lease per-shard worker ids lazily; `sync`,
    /// `stats`, and shutdown fan out across every shard, and a faulted
    /// shard degrades only the keys it owns.
    pub fn start_sharded(
        cfg: ServerConfig,
        store: Arc<ShardedKvStore>,
    ) -> std::io::Result<ServerHandle> {
        let listener = TcpListener::bind(&cfg.addr)?;
        listener.set_nonblocking(true)?;
        let addr = listener.local_addr()?;
        let shared = Arc::new(Shared {
            registry: SessionRegistry::new(store, cfg.max_sessions),
            cfg,
            shutdown: AtomicBool::new(false),
            conns: Mutex::new(HashMap::new()),
            mutations: AtomicU64::new(0),
        });
        let accept_shared = Arc::clone(&shared);
        let accept = std::thread::spawn(move || accept_loop(listener, accept_shared));
        Ok(ServerHandle {
            addr,
            shared,
            accept,
        })
    }
}

fn accept_loop(listener: TcpListener, shared: Arc<Shared>) {
    let mut workers: Vec<JoinHandle<()>> = Vec::new();
    let mut next_id: u64 = 0;
    while !shared.shutdown.load(Ordering::Acquire) {
        match listener.accept() {
            Ok((stream, _)) => {
                let id = next_id;
                next_id += 1;
                if let Ok(clone) = stream.try_clone() {
                    shared.conns.lock().insert(id, clone);
                }
                let conn_shared = Arc::clone(&shared);
                workers.push(std::thread::spawn(move || {
                    // A panicking handler must only cost its own connection:
                    // contain the unwind so the bookkeeping below always runs
                    // and the accept loop's join never propagates a panic.
                    let _ = std::panic::catch_unwind(AssertUnwindSafe(|| {
                        serve_connection(stream, &conn_shared);
                    }));
                    conn_shared.conns.lock().remove(&id);
                }));
            }
            Err(e) if e.kind() == ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(2));
                // Opportunistically reap finished workers so a long-lived
                // server doesn't accumulate join handles under churn.
                workers.retain(|h| !h.is_finished());
            }
            Err(_) => std::thread::sleep(Duration::from_millis(2)),
        }
    }
    for h in workers {
        let _ = h.join();
    }
}

/// One connection: lease a thread id, frame requests, execute, reply.
fn serve_connection(mut stream: TcpStream, shared: &Shared) {
    let Some(lease) = shared.registry.lease() else {
        let _ = stream.write_all(b"SERVER_ERROR too many connections\r\n");
        let _ = stream.shutdown(Shutdown::Both);
        return;
    };
    let _ = stream.set_nodelay(true);
    let _ = stream.set_read_timeout(Some(POLL_INTERVAL));
    let _ = stream.set_write_timeout(Some(shared.cfg.write_timeout));

    let store = Arc::clone(shared.registry.store());
    let session = Session::sharded(Arc::clone(&store), Arc::clone(lease.store_lease()));
    let mut reader = RequestReader::new(shared.cfg.max_value_bytes);
    let mut buf = [0u8; 4096];
    let mut last_activity = Instant::now();

    'conn: loop {
        if shared.shutdown.load(Ordering::Acquire) {
            break;
        }
        match stream.read(&mut buf) {
            Ok(0) => break, // peer closed
            Ok(n) => {
                last_activity = Instant::now();
                reader.feed(&buf[..n]);
            }
            Err(e) if e.kind() == ErrorKind::WouldBlock || e.kind() == ErrorKind::TimedOut => {
                if last_activity.elapsed() > shared.cfg.read_timeout {
                    break;
                }
                continue;
            }
            Err(e) if e.kind() == ErrorKind::Interrupted => continue,
            Err(_) => break,
        }

        // Batch replies for everything framed so far: one write per read
        // keeps pipelined clients fast.
        let mut reply = Vec::new();
        while let Some(req) = reader.next_request() {
            match req {
                Request::Cmd {
                    line,
                    data,
                    noreply,
                } => {
                    let cmd = line.split_whitespace().next().unwrap_or("");
                    if cmd == "quit" {
                        let _ = stream.write_all(&reply);
                        break 'conn;
                    }
                    if cmd == "stats" {
                        if !noreply {
                            reply.extend_from_slice(stats_reply(shared).as_bytes());
                        }
                        continue;
                    }
                    if cmd == "sync" {
                        // Reply only after every shard's epoch system reports
                        // all previously-acked mutations persistent. A
                        // faulted shard can never make that promise again, so
                        // the barrier reports it; healthy shards still sync.
                        let out = match store.sync() {
                            Ok(()) => "SYNCED\r\n".into(),
                            Err(e) => format!("SERVER_ERROR {e}\r\n"),
                        };
                        if !noreply {
                            reply.extend_from_slice(out.as_bytes());
                        }
                        continue;
                    }
                    let is_mutation = matches!(cmd, "set" | "add" | "replace" | "delete" | "touch");
                    let out = match std::panic::catch_unwind(AssertUnwindSafe(|| {
                        if shared.cfg.panic_on_cmd.as_deref() == Some(cmd) {
                            panic!("injected handler panic on '{cmd}'");
                        }
                        session.execute(&line, &data)
                    })) {
                        Ok(out) => out,
                        Err(_) => {
                            // The handler died mid-command; its state may be
                            // inconsistent, so answer, then drop only this
                            // connection. The unwind stops here — other
                            // sessions never notice.
                            reply.extend_from_slice(b"SERVER_ERROR internal error\r\n");
                            let _ = stream.write_all(&reply);
                            break 'conn;
                        }
                    };
                    if is_mutation {
                        if let Some(n) = shared.cfg.sync_every {
                            let seq = shared.mutations.fetch_add(1, Ordering::AcqRel) + 1;
                            if seq.is_multiple_of(n) {
                                // The periodic barrier syncs only the shard
                                // this mutation routed to — barriers on shard
                                // A must never wait out shard B's epochs;
                                // that independence is the scaling lever.
                                let shard = line
                                    .split_whitespace()
                                    .nth(1)
                                    .and_then(|k| store.shard_of_bytes(k.as_bytes()));
                                let _ = match shard {
                                    Some(i) => store.sync_shard(i),
                                    None => store.sync(),
                                };
                            }
                        }
                    }
                    if !noreply {
                        reply.extend_from_slice(out.as_bytes());
                        reply.extend_from_slice(b"\r\n");
                    }
                }
                Request::BadDataChunk => {
                    reply.extend_from_slice(b"CLIENT_ERROR bad data chunk\r\n");
                }
                Request::TooLarge => {
                    reply.extend_from_slice(b"SERVER_ERROR object too large for cache\r\n");
                }
                Request::LineTooLong => {
                    reply.extend_from_slice(b"CLIENT_ERROR line too long\r\n");
                    let _ = stream.write_all(&reply);
                    break 'conn;
                }
            }
        }
        if !reply.is_empty() && stream.write_all(&reply).is_err() {
            break;
        }
    }
    let _ = stream.shutdown(Shutdown::Both);
    drop(lease); // returns the thread id for the next connection
}

/// The `stats` admin command, memcached-style: `STAT <name> <value>` lines
/// then `END`. Alongside cache occupancy it surfaces the pool's persistence
/// and fault-injection counters, so operators (and crash-sweep tests) can
/// observe injected crashes, torn lines, and quarantined payloads over the
/// wire.
fn stats_reply(shared: &Shared) -> String {
    let store = shared.registry.store();
    let mut out = String::new();
    let mut stat = |name: &str, value: u64| {
        out.push_str(&format!("STAT {name} {value}\r\n"));
    };
    stat("curr_items", store.len() as u64);
    stat("evictions", store.evictions() as u64);
    stat("curr_connections", shared.registry.active() as u64);
    stat("total_mutations", shared.mutations.load(Ordering::Acquire));
    stat("shards", store.n_shards() as u64);
    // Store-wide aggregates keep the single-pool stat names so existing
    // consumers (dashboards, the degradation tests) read merged counters.
    if let Some(snap) = store.pool_stats_merged() {
        stat("pmem_clwbs", snap.clwbs);
        stat("pmem_sfences", snap.sfences);
        stat("pmem_lines_drained", snap.lines_drained);
        stat("pmem_crashes", snap.crashes);
        stat("pmem_injected_crashes", snap.injected_crashes);
        stat("pmem_torn_lines", snap.torn_lines);
        stat("pmem_quarantined_payloads", snap.quarantined_payloads);
    }
    if let Some(e) = store.epochs()[0] {
        stat("montage_epoch", e);
    }
    stat("pool_faulted", u64::from(store.fault_any().is_some()));
    // Per-shard breakdown: quarantine and fault containment are per-shard
    // facts, and operators need to see *which* shard is degraded.
    if store.n_shards() > 1 {
        let epochs = store.epochs();
        for (i, snap) in store.pool_stats_per_shard().into_iter().enumerate() {
            if let Some(snap) = snap {
                stat(&format!("shard{i}_pmem_clwbs"), snap.clwbs);
                stat(&format!("shard{i}_pmem_sfences"), snap.sfences);
                stat(
                    &format!("shard{i}_pmem_injected_crashes"),
                    snap.injected_crashes,
                );
                stat(
                    &format!("shard{i}_pmem_quarantined_payloads"),
                    snap.quarantined_payloads,
                );
            }
            if let Some(e) = epochs[i] {
                stat(&format!("shard{i}_montage_epoch"), e);
            }
            stat(
                &format!("shard{i}_pool_faulted"),
                u64::from(store.shard_fault(i).is_some()),
            );
        }
    }
    out.push_str("END\r\n");
    out
}

/// Owner handle for a running server.
pub struct ServerHandle {
    addr: SocketAddr,
    shared: Arc<Shared>,
    accept: JoinHandle<()>,
}

impl ServerHandle {
    /// The bound address (with the resolved ephemeral port).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Live connection count.
    pub fn active_sessions(&self) -> usize {
        self.shared.registry.active()
    }

    /// Graceful stop: refuse new connections, let workers finish their
    /// in-flight request batch and exit, then run a final epoch sync so
    /// every acked mutation is persistent.
    pub fn shutdown(self) {
        self.shared.shutdown.store(true, Ordering::Release);
        let _ = self.accept.join(); // joins workers too
                                    // Final barrier across every shard; a faulted shard cannot sync and
                                    // is skipped (its loss is already the fault plan's fact on disk).
        let _ = self.shared.registry.store().sync();
    }

    /// Simulated server crash: sever every connection mid-stream and stop
    /// all threads **without** the final sync, leaving the pool exactly as
    /// buffered durability left it. Pair with [`pmem::PmemPool::crash`] and
    /// [`montage::recovery::recover`] to exercise crash-restart.
    pub fn crash(self) {
        self.shared.shutdown.store(true, Ordering::Release);
        for (_, conn) in self.shared.conns.lock().drain() {
            let _ = conn.shutdown(Shutdown::Both);
        }
        let _ = self.accept.join();
    }
}
