//! Wire tests for the `scan` verb: reply framing (empty range, cross-shard
//! range, oversized replies, pipelined interleaving) and growth under
//! concurrent load — writers keep inserting while scanners and readers see
//! zero protocol errors and no lost keys.
//!
//! The montage-ds resize acceptance proper (8 writers driving the
//! *resizable hashmap* through ≥2 online resizes with zero lost ops) lives
//! in the workspace-root `tests/resize_load.rs` — the kvstore's transient
//! index grows implicitly, so the wire-level claim checked here is the
//! end-to-end one: growth is invisible to concurrent wire traffic.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

use kvserver::{KvServer, PipeOp, ServerConfig, WireClient};
use kvstore::ShardedKvStore;
use montage::EsysConfig;
use pmem::PmemConfig;

const SHARDS: usize = 4;
const STRIPES: usize = 8;
const CAPACITY: usize = 200_000;

fn sharded_store() -> Arc<ShardedKvStore> {
    ShardedKvStore::format(
        SHARDS,
        PmemConfig::strict_for_test(32 << 20),
        EsysConfig::default(),
        STRIPES,
        CAPACITY,
    )
}

fn read_stats(c: &mut WireClient) -> std::collections::HashMap<String, u64> {
    c.send_raw(b"stats\r\n").unwrap();
    let mut stats = std::collections::HashMap::new();
    loop {
        let line = c.read_line().unwrap();
        if line == "END" {
            return stats;
        }
        let mut parts = line.split_whitespace();
        assert_eq!(parts.next(), Some("STAT"), "bad stats line: {line}");
        let name = parts.next().expect("stat name").to_string();
        let value: u64 = parts.next().expect("stat value").parse().unwrap();
        stats.insert(name, value);
    }
}

/// Framing cases in one session: an empty range and an inverted range both
/// answer a bare `END`; a range spanning every shard comes back merged and
/// key-ordered; and a huge (oversized) reply — hundreds of records, large
/// values — frames exactly, record by record, with the client-side limit
/// honored and the server-side clamp bounding the worst case.
#[test]
fn scan_framing_empty_cross_shard_and_oversized() {
    let store = sharded_store();
    let h = KvServer::start_sharded(ServerConfig::default(), Arc::clone(&store)).expect("bind");
    let mut c = WireClient::connect(h.addr()).unwrap();

    // Empty store, empty and inverted ranges.
    assert!(c.scan("a", "z", None).unwrap().is_empty());
    assert!(c.scan("z", "a", None).unwrap().is_empty());

    // 600 keys, 200-byte values → a full-range reply well past one packet.
    const N: usize = 600;
    let value = "x".repeat(200);
    let mut packet = Vec::new();
    for i in 0..N {
        packet.extend_from_slice(
            format!("set sk{i:04} 0 0 {}\r\n{value}\r\n", value.len()).as_bytes(),
        );
    }
    c.send_raw(&packet).unwrap();
    for i in 0..N {
        assert_eq!(c.read_line().unwrap(), "STORED", "set #{i}");
    }
    // The key set must span shards for "cross-shard" to mean anything.
    let covered: std::collections::HashSet<usize> = (0..N)
        .filter_map(|i| store.shard_of_bytes(format!("sk{i:04}").as_bytes()))
        .collect();
    assert!(covered.len() == SHARDS, "keys cover only {covered:?}");

    // Sub-range: exact bounds, inclusive, ordered.
    let r = c.scan("sk0100", "sk0109", None).unwrap();
    assert_eq!(
        r.iter().map(|(k, _, _)| k.as_str()).collect::<Vec<_>>(),
        (100..110).map(|i| format!("sk{i:04}")).collect::<Vec<_>>()
    );
    assert!(r.iter().all(|(_, _, v)| v.len() == 200));

    // Oversized reply: the whole key space (~126 KB of payload). The
    // default limit (256) caps it; an explicit big limit returns all 600.
    let r = c.scan("sk0000", "sk9999", None).unwrap();
    assert_eq!(r.len(), 256, "default limit");
    let r = c.scan("sk0000", "sk9999", Some(4096)).unwrap();
    assert_eq!(r.len(), N);
    let keys: Vec<&String> = r.iter().map(|(k, _, _)| k).collect();
    assert!(
        keys.windows(2).all(|w| w[0] < w[1]),
        "merged scan is sorted"
    );
    // Requested limits above the server clamp still frame correctly.
    let r = c.scan("sk0000", "sk9999", Some(1_000_000)).unwrap();
    assert_eq!(r.len(), N);

    // Range bounds need not exist.
    let r = c.scan("sk0100x", "sk0102", None).unwrap();
    assert_eq!(r.len(), 2, "left bound between keys: {r:?}");

    // Scans are counted in stats.
    let stats = read_stats(&mut c);
    assert!(stats["scan_requests"] >= 7, "{stats:?}");
    h.shutdown();
}

/// Scans interleave with gets and sets inside one pipelined burst without
/// desyncing the reply stream — the multi-record scan reply sits between
/// single-record replies and every record frames exactly.
#[test]
fn pipelined_scan_framing() {
    let store = sharded_store();
    let h = KvServer::start_sharded(ServerConfig::default(), Arc::clone(&store)).expect("bind");
    let mut c = WireClient::connect(h.addr()).unwrap();

    for i in 0..40 {
        c.set(&format!("pk{i:02}"), 0, format!("val{i}").as_bytes())
            .unwrap();
    }
    // set | scan | get | scan | set | get, all in one burst, three times.
    for round in 0..3 {
        let k1 = format!("extra{round}a");
        let k2 = format!("extra{round}b");
        c.round(&[
            PipeOp::Set(&k1, b"1"),
            PipeOp::Scan("pk00", "pk99"),
            PipeOp::Get("pk07"),
            PipeOp::Scan("zz", "zz"), // empty reply mid-burst
            PipeOp::Set(&k2, b"2"),
            PipeOp::Get("pk33"),
        ])
        .unwrap();
    }
    // The stream is still in sync: a normal request round-trips.
    assert_eq!(
        c.get("pk07").unwrap().map(|(_, v)| v),
        Some(b"val7".to_vec())
    );
    h.shutdown();
}

/// Growth under load, end-to-end: 8 writer connections push the store from
/// empty to tens of thousands of keys (the transient index and every
/// per-stripe ordered mirror grow live) while scanner and reader
/// connections hammer overlapping ranges. No connection may see a protocol
/// error, a torn frame, or a missing previously-written key; every scan
/// must come back sorted and duplicate-free.
#[test]
fn growth_under_wire_load_loses_nothing() {
    const WRITERS: usize = 8;
    const KEYS_PER_WRITER: usize = 2_000;

    let store = sharded_store();
    let h = KvServer::start_sharded(ServerConfig::default(), Arc::clone(&store)).expect("bind");
    let addr = h.addr();

    let stop = Arc::new(AtomicBool::new(false));
    let mut handles = Vec::new();
    for w in 0..WRITERS {
        handles.push(std::thread::spawn(move || {
            let mut c = WireClient::connect(addr).unwrap();
            // Writer w owns keys gw<w><i>; pipelined in bursts of 50.
            for burst in 0..(KEYS_PER_WRITER / 50) {
                let mut packet = Vec::new();
                for j in 0..50 {
                    let i = burst * 50 + j;
                    let val = format!("w{w}v{i}");
                    packet.extend_from_slice(
                        format!("set gw{w}k{i:05} 0 0 {}\r\n{val}\r\n", val.len()).as_bytes(),
                    );
                }
                c.send_raw(&packet).unwrap();
                for j in 0..50 {
                    assert_eq!(
                        c.read_line().unwrap(),
                        "STORED",
                        "writer {w} burst {burst} op {j} failed"
                    );
                }
            }
        }));
    }
    // Scanners + point readers run until the writers are done.
    let mut observers = Vec::new();
    for o in 0..3 {
        let stop = stop.clone();
        observers.push(std::thread::spawn(move || {
            let mut c = WireClient::connect(addr).unwrap();
            let mut scans = 0u64;
            while !stop.load(Ordering::Relaxed) {
                let w = o % WRITERS;
                let r = c
                    .scan(&format!("gw{w}k"), &format!("gw{w}l"), Some(4096))
                    .expect("scan mid-growth must never error");
                let keys: Vec<&String> = r.iter().map(|(k, _, _)| k).collect();
                assert!(
                    keys.windows(2).all(|x| x[0] < x[1]),
                    "scan mid-growth unsorted/duplicated"
                );
                // Prefix property: writer w inserts k00000..k<n> in order,
                // so the scanned key set must be a dense prefix — a hole
                // would be a lost key.
                for (idx, key) in keys.iter().enumerate() {
                    assert_eq!(
                        key.as_str(),
                        format!("gw{w}k{idx:05}"),
                        "hole in writer {w}'s key sequence mid-growth"
                    );
                }
                // A point read of the oldest key must always hit once seen.
                if !keys.is_empty() {
                    assert!(
                        c.get(&format!("gw{w}k00000")).unwrap().is_some(),
                        "established key vanished mid-growth"
                    );
                }
                scans += 1;
            }
            scans
        }));
    }
    for hdl in handles {
        hdl.join().unwrap();
    }
    stop.store(true, Ordering::Relaxed);
    let scans: u64 = observers.into_iter().map(|o| o.join().unwrap()).sum();
    assert!(scans > 0, "observers never got a scan in");

    // Final state: every writer's full range, no losses.
    let mut c = WireClient::connect(addr).unwrap();
    for w in 0..WRITERS {
        let r = c
            .scan(&format!("gw{w}k"), &format!("gw{w}l"), Some(4096))
            .unwrap();
        assert_eq!(r.len(), KEYS_PER_WRITER, "writer {w} lost keys");
    }
    assert_eq!(store.len(), WRITERS * KEYS_PER_WRITER);
    h.shutdown();
}
