//! Connection-scale test: the event-driven core holds ten thousand
//! concurrent connections on a handful of worker threads and a handful of
//! Montage ids, then serves a round-trip on every one of them.
//!
//! The client half runs in a subprocess ([`wire_blast`]) so each process
//! pays only its own half of the fd bill; see that binary's docs for the
//! READY/GO/DONE stdio protocol. `WIRE_SCALE_CONNS` overrides the
//! connection count (CI uses this to fit small runners); the default is
//! 10_000 for release builds and 1_000 for debug, where the unoptimized
//! sweep loop would make the full count needlessly slow.
//!
//! [`wire_blast`]: ../src/bin/wire_blast.rs

use std::io::{BufRead, BufReader, Write};
use std::process::{Command, Stdio};
use std::sync::Arc;
use std::time::{Duration, Instant};

use kvserver::{KvServer, ServerConfig};
use kvstore::{KvBackend, KvStore};
use montage::{Advancer, EpochSys, EsysConfig};
use pmem::{PmemConfig, PmemPool};

fn conns() -> usize {
    if let Ok(v) = std::env::var("WIRE_SCALE_CONNS") {
        return v.parse().expect("WIRE_SCALE_CONNS");
    }
    if cfg!(debug_assertions) {
        1_000
    } else {
        10_000
    }
}

#[test]
fn ten_thousand_connections_on_four_workers() {
    let n = conns();
    let esys = EpochSys::format(
        PmemPool::new(PmemConfig {
            size: 256 << 20,
            ..Default::default()
        }),
        EsysConfig {
            // The point: id demand is per *worker*, not per connection. Ten
            // thousand sockets fit in an id table sized for a laptop.
            max_threads: 8,
            ..Default::default()
        },
    );
    let _adv = Advancer::start(esys.clone());
    let store = Arc::new(KvStore::new(
        KvBackend::Montage(esys),
        1 << 16,
        usize::MAX / 2,
    ));
    let handle = KvServer::start(
        ServerConfig {
            max_conns: n + 50,
            read_timeout: Duration::from_secs(120),
            ..Default::default()
        },
        store,
    )
    .expect("bind");

    let mut child = Command::new(env!("CARGO_BIN_EXE_wire_blast"))
        .arg(handle.addr().to_string())
        .arg(n.to_string())
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .spawn()
        .expect("spawn wire_blast");
    let mut child_in = child.stdin.take().unwrap();
    let mut child_out = BufReader::new(child.stdout.take().unwrap());

    let mut line = String::new();
    child_out.read_line(&mut line).expect("read READY");
    assert_eq!(
        line.trim(),
        format!("READY {n}"),
        "client failed to connect all"
    );

    // The server should see every admitted connection; give the inboxes a
    // moment to drain into the workers' tables.
    let deadline = Instant::now() + Duration::from_secs(30);
    loop {
        let active = handle.active_sessions();
        if active == n {
            break;
        }
        assert!(
            Instant::now() < deadline,
            "server sees {active}/{n} connections"
        );
        std::thread::sleep(Duration::from_millis(50));
    }

    child_in.write_all(b"GO\n").expect("send GO");
    child_in.flush().unwrap();
    line.clear();
    child_out.read_line(&mut line).expect("read DONE");
    assert_eq!(
        line.trim(),
        format!("DONE {n}"),
        "not every connection completed its round-trip"
    );

    let status = child.wait().expect("wait wire_blast");
    assert!(status.success());

    // Quits drain: every slot returns to the registry.
    let deadline = Instant::now() + Duration::from_secs(30);
    while handle.active_sessions() > 0 {
        assert!(
            Instant::now() < deadline,
            "{} connections never released",
            handle.active_sessions()
        );
        std::thread::sleep(Duration::from_millis(50));
    }
    handle.shutdown();
}
