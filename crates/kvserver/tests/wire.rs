//! End-to-end wire tests: real sockets, real threads, real crash-restart.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

use kvserver::{KvServer, ServerConfig, WireClient};
use kvstore::{KvBackend, KvStore};
use montage::{EpochSys, EsysConfig};
use pmem::{PmemConfig, PmemPool};

fn dram_server(cfg: ServerConfig) -> kvserver::ServerHandle {
    let store = Arc::new(KvStore::new(KvBackend::Dram, 8, 100_000));
    KvServer::start(cfg, store).expect("bind")
}

fn montage_store(max_threads: usize) -> (Arc<EpochSys>, Arc<KvStore>) {
    let esys = EpochSys::format(
        PmemPool::new(PmemConfig::strict_for_test(64 << 20)),
        EsysConfig {
            max_threads,
            ..Default::default()
        },
    );
    let store = Arc::new(KvStore::new(KvBackend::Montage(esys.clone()), 8, 100_000));
    (esys, store)
}

#[test]
fn roundtrip_pipelining_and_noreply() {
    let h = dram_server(ServerConfig::default());
    let mut c = WireClient::connect(h.addr()).unwrap();

    assert_eq!(c.set("greeting", 42, b"hello").unwrap(), "STORED");
    assert_eq!(c.get("greeting").unwrap(), Some((42, b"hello".to_vec())));
    assert_eq!(c.delete("greeting").unwrap(), "DELETED");
    assert_eq!(c.get("greeting").unwrap(), None);

    // Several commands in one packet come back in order, one write.
    c.send_raw(b"set a 0 0 1\r\nA\r\nset b 0 0 1\r\nB\r\nget a\r\nbogus\r\n")
        .unwrap();
    assert_eq!(c.read_line().unwrap(), "STORED");
    assert_eq!(c.read_line().unwrap(), "STORED");
    assert_eq!(c.read_line().unwrap(), "VALUE a 0 1");
    assert_eq!(c.read_line().unwrap(), "A");
    assert_eq!(c.read_line().unwrap(), "END");
    assert_eq!(c.read_line().unwrap(), "ERROR");

    // noreply sets produce no replies; the following get proves they ran.
    c.set_noreply("quiet", 0, b"q1").unwrap();
    c.set_noreply("quiet", 0, b"q2").unwrap();
    assert_eq!(c.get("quiet").unwrap(), Some((0, b"q2".to_vec())));

    c.quit().unwrap();
    h.shutdown();
}

#[test]
fn framing_survives_hostile_packetisation() {
    let h = dram_server(ServerConfig::default());
    let mut c = WireClient::connect(h.addr()).unwrap();
    let pause = Duration::from_millis(60); // > one server poll interval

    // Command line split mid-token, data block split mid-value, CRLF split
    // between CR and LF — each flushed as its own packet.
    for chunk in [
        &b"set spl"[..],
        b"it 7 0 5\r\nhe",
        b"llo\r",
        b"\nget split\r\n",
    ] {
        c.send_raw(chunk).unwrap();
        std::thread::sleep(pause);
    }
    assert_eq!(c.read_line().unwrap(), "STORED");
    assert_eq!(c.read_line().unwrap(), "VALUE split 7 5");
    assert_eq!(c.read_line().unwrap(), "hello");
    assert_eq!(c.read_line().unwrap(), "END");

    // Bare-\n endings (printf | nc without \r).
    c.send_raw(b"set bare 0 0 2\nok\nget bare\n").unwrap();
    assert_eq!(c.read_line().unwrap(), "STORED");
    assert_eq!(c.read_line().unwrap(), "VALUE bare 0 2");
    assert_eq!(c.read_line().unwrap(), "ok");
    assert_eq!(c.read_line().unwrap(), "END");

    // Data longer than announced: error reply, then resync on next command.
    c.send_raw(b"set bad 0 0 2\r\nabcdef\r\nget bare\r\n")
        .unwrap();
    assert_eq!(c.read_line().unwrap(), "CLIENT_ERROR bad data chunk");
    assert_eq!(c.read_line().unwrap(), "VALUE bare 0 2");
    assert_eq!(c.read_line().unwrap(), "ok");
    assert_eq!(c.read_line().unwrap(), "END");

    // Unknown command.
    c.send_raw(b"frobnicate now\r\n").unwrap();
    assert_eq!(c.read_line().unwrap(), "ERROR");

    c.quit().unwrap();
    h.shutdown();
}

#[test]
fn oversized_value_is_refused_without_buffering() {
    let h = dram_server(ServerConfig {
        max_value_bytes: 1024,
        ..Default::default()
    });
    let mut c = WireClient::connect(h.addr()).unwrap();
    let r = c.set("big", 0, &vec![b'x'; 10_000]).unwrap();
    assert_eq!(r, "SERVER_ERROR object too large for cache");
    // The connection stays usable afterwards.
    assert_eq!(c.set("small", 0, b"fits").unwrap(), "STORED");
    assert_eq!(c.get("big").unwrap(), None);
    c.quit().unwrap();
    h.shutdown();
}

#[test]
fn idle_connections_are_reaped() {
    let h = dram_server(ServerConfig {
        read_timeout: Duration::from_millis(200),
        ..Default::default()
    });
    let mut c = WireClient::connect(h.addr()).unwrap();
    assert_eq!(c.set("k", 0, b"v").unwrap(), "STORED");
    std::thread::sleep(Duration::from_millis(600));
    // Server hung up; the next read sees EOF (or a reset).
    assert!(c.read_line().is_err(), "idle connection should be closed");
    h.shutdown();
}

#[test]
fn churn_beyond_max_threads_reuses_ids() {
    // Only 2 Montage thread ids exist; 40 sequential connections must all
    // succeed because disconnects return ids to the pool.
    let (_esys, store) = montage_store(2);
    let h = KvServer::start(ServerConfig::default(), store).expect("bind");
    for i in 0..40 {
        let mut c = WireClient::connect(h.addr()).unwrap();
        assert_eq!(
            c.set("churn", 0, format!("v{i}").as_bytes()).unwrap(),
            "STORED"
        );
        let (_, v) = c.get("churn").unwrap().expect("hit");
        assert_eq!(v, format!("v{i}").as_bytes());
        c.quit().unwrap();
        // Give the server a beat to retire the worker and free the id.
        std::thread::sleep(Duration::from_millis(10));
    }
    assert_eq!(h.active_sessions(), 0);
    h.shutdown();
}

#[test]
fn over_capacity_connect_is_refused_then_recovers() {
    let (_esys, store) = montage_store(2);
    let h = KvServer::start(
        ServerConfig {
            max_conns: 2,
            ..Default::default()
        },
        store,
    )
    .expect("bind");

    let mut a = WireClient::connect(h.addr()).unwrap();
    let mut b = WireClient::connect(h.addr()).unwrap();
    assert_eq!(a.set("ka", 0, b"1").unwrap(), "STORED");
    assert_eq!(b.set("kb", 0, b"2").unwrap(), "STORED");

    // Third concurrent connection: polite refusal, no panic, no leaked id.
    let mut c = WireClient::connect(h.addr()).unwrap();
    assert_eq!(c.read_line().unwrap(), "SERVER_ERROR busy");

    // Freeing one slot lets a new connection in.
    a.quit().unwrap();
    let deadline = std::time::Instant::now() + Duration::from_secs(5);
    let mut d = loop {
        std::thread::sleep(Duration::from_millis(20));
        let mut d = WireClient::connect(h.addr()).unwrap();
        match d.set("kd", 0, b"4") {
            Ok(r) if r == "STORED" => break d,
            _ if std::time::Instant::now() < deadline => continue,
            other => panic!("slot never freed: {other:?}"),
        }
    };
    assert_eq!(d.get("kd").unwrap(), Some((0, b"4".to_vec())));
    h.shutdown();
}

#[test]
fn sync_every_n_advances_epochs() {
    let (esys, store) = montage_store(4);
    let h = KvServer::start(
        ServerConfig {
            sync_every: Some(4),
            ..Default::default()
        },
        store,
    )
    .expect("bind");
    let before = esys.curr_epoch();
    let mut c = WireClient::connect(h.addr()).unwrap();
    for i in 0..8 {
        assert_eq!(c.set("k", 0, format!("v{i}").as_bytes()).unwrap(), "STORED");
    }
    // 8 mutations at N=4 → at least two syncs → the clock moved ≥ 4 ticks.
    let after = esys.curr_epoch();
    assert!(after >= before + 4, "epoch {before} -> {after}");
    c.quit().unwrap();
    h.shutdown();
}

#[test]
fn graceful_shutdown_persists_acked_writes() {
    let (esys, store) = montage_store(4);
    let h = KvServer::start(ServerConfig::default(), store).expect("bind");
    let mut c = WireClient::connect(h.addr()).unwrap();
    assert_eq!(c.set("durable", 9, b"kept").unwrap(), "STORED");
    drop(c);
    h.shutdown(); // ends with a full epoch sync

    let rec = montage::recovery::recover(esys.pool().crash(), EsysConfig::default(), 2);
    let kv2 = Arc::new(KvStore::recover(rec.esys.clone(), 8, 100_000, &rec));
    let h2 = KvServer::start(ServerConfig::default(), kv2).expect("bind");
    let mut c2 = WireClient::connect(h2.addr()).unwrap();
    assert_eq!(c2.get("durable").unwrap(), Some((9, b"kept".to_vec())));
    h2.shutdown();
}

/// Reads one `stats` reply off the wire into (name, value) pairs.
fn read_stats(c: &mut WireClient) -> std::collections::HashMap<String, u64> {
    c.send_raw(b"stats\r\n").unwrap();
    let mut stats = std::collections::HashMap::new();
    loop {
        let line = c.read_line().unwrap();
        if line == "END" {
            return stats;
        }
        let mut parts = line.split_whitespace();
        assert_eq!(parts.next(), Some("STAT"), "bad stats line: {line}");
        let name = parts.next().expect("stat name").to_string();
        let value: u64 = parts.next().expect("stat value").parse().unwrap();
        stats.insert(name, value);
    }
}

#[test]
fn panicking_handler_costs_only_its_own_connection() {
    let h = dram_server(ServerConfig {
        panic_on_cmd: Some("boom".into()),
        ..Default::default()
    });
    let mut a = WireClient::connect(h.addr()).unwrap();
    let mut b = WireClient::connect(h.addr()).unwrap();
    assert_eq!(a.set("ka", 0, b"1").unwrap(), "STORED");
    assert_eq!(b.set("kb", 0, b"2").unwrap(), "STORED");

    // Connection `a` trips the injected panic: it gets an error reply and
    // is dropped, nothing more.
    a.send_raw(b"boom\r\n").unwrap();
    assert_eq!(a.read_line().unwrap(), "SERVER_ERROR internal error");
    assert!(a.read_line().is_err(), "poisoned connection must be closed");

    // Concurrent and future connections are unaffected.
    assert_eq!(b.get("ka").unwrap(), Some((0, b"1".to_vec())));
    assert_eq!(b.set("kb", 0, b"3").unwrap(), "STORED");
    let mut c = WireClient::connect(h.addr()).unwrap();
    assert_eq!(c.get("kb").unwrap(), Some((0, b"3".to_vec())));
    c.quit().unwrap();
    b.quit().unwrap();
    h.shutdown();
}

#[test]
fn stats_reports_persistence_counters() {
    let (_esys, store) = montage_store(4);
    let h = KvServer::start(ServerConfig::default(), store).expect("bind");
    let mut c = WireClient::connect(h.addr()).unwrap();
    assert_eq!(c.set("k", 0, b"v").unwrap(), "STORED");
    c.sync().unwrap();
    let stats = read_stats(&mut c);
    assert_eq!(stats["curr_items"], 1);
    assert_eq!(stats["curr_connections"], 1);
    assert!(stats["pmem_clwbs"] > 0, "sync must have flushed lines");
    assert!(stats["pmem_sfences"] > 0);
    assert_eq!(stats["pmem_injected_crashes"], 0);
    assert_eq!(stats["pmem_torn_lines"], 0);
    assert_eq!(stats["pmem_quarantined_payloads"], 0);
    assert_eq!(stats["pool_faulted"], 0);
    assert!(stats.contains_key("montage_epoch"));
    c.quit().unwrap();
    h.shutdown();
}

#[test]
fn faulted_pool_degrades_to_errors_not_panics() {
    // Arm a fault plan that trips almost immediately; traffic after the
    // injected crash must be refused with a protocol error while the
    // server itself stays up and `stats` keeps answering.
    let mut cfg = PmemConfig::strict_for_test(64 << 20);
    cfg.chaos.crash_at_event = Some(1);
    let esys = EpochSys::format(PmemPool::new(cfg), EsysConfig::default());
    let store = Arc::new(KvStore::new(KvBackend::Montage(esys), 8, 100_000));
    let h = KvServer::start(ServerConfig::default(), store).expect("bind");

    let mut c = WireClient::connect(h.addr()).unwrap();
    let reply = c.set("k", 0, b"v").unwrap();
    assert!(
        reply.starts_with("SERVER_ERROR persistent pool crashed"),
        "expected degraded refusal, got {reply:?}"
    );
    // The server is still alive: stats works on the same connection and
    // reports the injected crash.
    let stats = read_stats(&mut c);
    assert_eq!(stats["pmem_injected_crashes"], 1);
    assert_eq!(stats["pool_faulted"], 1);
    // And new connections are still accepted (and refused politely too).
    let mut d = WireClient::connect(h.addr()).unwrap();
    assert!(d
        .set("k2", 0, b"v2")
        .unwrap()
        .starts_with("SERVER_ERROR persistent pool crashed"));
    d.quit().unwrap();
    c.quit().unwrap();
    h.shutdown();
}

/// The headline test: concurrent clients stream writes with periodic
/// explicit syncs, the server crashes mid-flight, and the recovered store
/// must hold a **consistent prefix** — for each client, a value no older
/// than its last synced write, never torn, never phantom.
#[test]
fn crash_restart_recovers_consistent_prefix() {
    const WRITERS: usize = 3;
    const SYNC_EVERY: u64 = 8;

    let (esys, store) = montage_store(WRITERS + 2);
    let h = KvServer::start(ServerConfig::default(), store).expect("bind");
    let addr = h.addr();

    fn checksum(t: usize, c: u64) -> u64 {
        (t as u64).wrapping_mul(1_000_003) ^ c.wrapping_mul(17)
    }

    let last_synced: Arc<Vec<AtomicU64>> =
        Arc::new((0..WRITERS).map(|_| AtomicU64::new(0)).collect());
    let last_acked: Arc<Vec<AtomicU64>> =
        Arc::new((0..WRITERS).map(|_| AtomicU64::new(0)).collect());

    let writers: Vec<_> = (0..WRITERS)
        .map(|t| {
            let synced = Arc::clone(&last_synced);
            let acked = Arc::clone(&last_acked);
            std::thread::spawn(move || {
                let mut c = match WireClient::connect(addr) {
                    Ok(c) => c,
                    Err(_) => return,
                };
                let key = format!("writer{t}");
                for i in 1u64.. {
                    let val = format!("t{t}:c{i}:{}", checksum(t, i));
                    match c.set(&key, 0, val.as_bytes()) {
                        Ok(r) if r == "STORED" => acked[t].store(i, Ordering::Release),
                        _ => return, // server crashed under us
                    }
                    if i % SYNC_EVERY == 0 {
                        if c.sync().is_err() {
                            return;
                        }
                        synced[t].store(i, Ordering::Release);
                    }
                }
            })
        })
        .collect();

    // Crash only after every writer has at least one synced write, so the
    // "nothing synced may be lost" assertion has teeth.
    let deadline = std::time::Instant::now() + Duration::from_secs(30);
    while last_synced.iter().any(|s| s.load(Ordering::Acquire) == 0) {
        assert!(std::time::Instant::now() < deadline, "writers never synced");
        std::thread::sleep(Duration::from_millis(10));
    }
    std::thread::sleep(Duration::from_millis(100)); // let more writes pile up
    h.crash(); // sever connections, no final sync
    for w in writers {
        w.join().unwrap();
    }

    // Restart on the durable image.
    let rec = montage::recovery::recover(esys.pool().crash(), EsysConfig::default(), 2);
    let kv2 = Arc::new(KvStore::recover(rec.esys.clone(), 8, 100_000, &rec));
    let recovered_len = kv2.len();
    let h2 = KvServer::start(ServerConfig::default(), kv2).expect("bind");
    let mut c2 = WireClient::connect(h2.addr()).unwrap();

    let mut found = 0;
    for t in 0..WRITERS {
        let synced = last_synced[t].load(Ordering::Acquire);
        let acked = last_acked[t].load(Ordering::Acquire);
        match c2.get(&format!("writer{t}")).unwrap() {
            Some((_, raw)) => {
                found += 1;
                // Not torn: the value must parse and checksum exactly.
                let s = String::from_utf8(raw).expect("torn value: not utf8");
                let mut parts = s.split(':');
                let tt: usize = parts
                    .next()
                    .unwrap()
                    .strip_prefix('t')
                    .unwrap()
                    .parse()
                    .unwrap();
                let cc: u64 = parts
                    .next()
                    .unwrap()
                    .strip_prefix('c')
                    .unwrap()
                    .parse()
                    .unwrap();
                let sum: u64 = parts.next().unwrap().parse().unwrap();
                assert_eq!(tt, t, "value landed under the wrong key");
                assert_eq!(sum, checksum(t, cc), "torn value: checksum mismatch");
                // Consistent prefix: at least the last synced write, at most
                // one past the last acked (a set may have been in flight).
                assert!(
                    cc >= synced,
                    "writer {t}: synced c{synced} lost, recovered c{cc}"
                );
                assert!(
                    cc <= acked + 1,
                    "writer {t}: phantom future write c{cc} (acked c{acked})"
                );
            }
            None => {
                assert_eq!(synced, 0, "writer {t}: synced write vanished entirely");
            }
        }
    }
    // No phantom keys: the store holds exactly the writers' keys we found.
    assert_eq!(recovered_len, found, "phantom items survived the crash");
    h2.shutdown();
}

#[test]
fn cas_over_the_wire() {
    let h = dram_server(ServerConfig::default());
    let mut c = WireClient::connect(h.addr()).unwrap();

    assert_eq!(c.set("k", 3, b"one").unwrap(), "STORED");
    let (flags, casid, data) = c.gets("k").unwrap().expect("hit");
    assert_eq!((flags, data.as_slice()), (3, &b"one"[..]));

    // Matching cas id wins; the stored value and cas both move.
    assert_eq!(c.cas("k", 3, b"two", casid, None).unwrap(), "STORED");
    let (_, casid2, data2) = c.gets("k").unwrap().expect("hit");
    assert_eq!(data2, b"two");
    assert_ne!(casid2, casid, "every store mints a fresh cas id");

    // The old id now loses; the value is untouched.
    assert_eq!(c.cas("k", 3, b"stale", casid, None).unwrap(), "EXISTS");
    assert_eq!(c.get("k").unwrap(), Some((3, b"two".to_vec())));

    // cas on a missing key.
    assert_eq!(c.cas("nope", 0, b"x", 1, None).unwrap(), "NOT_FOUND");

    // add / replace conditional semantics ride the same path.
    c.send_raw(b"add k 0 0 1\r\nz\r\n").unwrap();
    assert_eq!(c.read_line().unwrap(), "NOT_STORED");
    c.send_raw(b"replace missing 0 0 1\r\nz\r\n").unwrap();
    assert_eq!(c.read_line().unwrap(), "NOT_STORED");

    c.quit().unwrap();
    h.shutdown();
}

#[test]
fn incr_decr_over_the_wire() {
    let h = dram_server(ServerConfig::default());
    let mut c = WireClient::connect(h.addr()).unwrap();

    assert_eq!(c.set("n", 0, b"5").unwrap(), "STORED");
    assert_eq!(c.arith(true, "n", 3, None).unwrap(), "8");
    assert_eq!(c.arith(false, "n", 100, None).unwrap(), "0"); // floors at 0
    assert_eq!(c.get("n").unwrap(), Some((0, b"0".to_vec())));
    assert_eq!(c.arith(true, "missing", 1, None).unwrap(), "NOT_FOUND");

    assert_eq!(c.set("s", 0, b"abc").unwrap(), "STORED");
    assert_eq!(
        c.arith(true, "s", 1, None).unwrap(),
        "CLIENT_ERROR cannot increment or decrement non-numeric value"
    );

    c.quit().unwrap();
    h.shutdown();
}

#[test]
fn session_rid_dedupes_and_shows_in_stats() {
    let h = dram_server(ServerConfig::default());
    let mut c = WireClient::connect(h.addr()).unwrap();

    // rid without a session is refused — dedupe identity cannot be
    // per-connection, or it would not survive a reconnect.
    c.send_raw(b"incr n 1 rid=1\r\n").unwrap();
    assert_eq!(
        c.read_line().unwrap(),
        "CLIENT_ERROR rid requires a session"
    );

    c.session(99).unwrap();
    assert_eq!(c.set_rid("n", 0, b"10", 1).unwrap(), "STORED");
    assert_eq!(c.arith(true, "n", 5, Some(2)).unwrap(), "15");
    // Blind retries of rid 2: answered from the descriptor, not re-applied.
    assert_eq!(c.arith(true, "n", 5, Some(2)).unwrap(), "15");
    assert_eq!(c.arith(true, "n", 5, Some(2)).unwrap(), "15");
    assert_eq!(c.get("n").unwrap(), Some((0, b"15".to_vec())));
    // A rid below the session's high-water mark is refused, not re-applied.
    c.send_raw(b"incr n 5 rid=1\r\n").unwrap();
    assert_eq!(
        c.read_line().unwrap(),
        "SERVER_ERROR stale request id (last acked 2)"
    );

    // A reconnect re-attaches the same durable identity and still dedupes.
    let mut c2 = WireClient::connect(h.addr()).unwrap();
    c2.session(99).unwrap();
    assert_eq!(c2.arith(true, "n", 5, Some(2)).unwrap(), "15");
    assert_eq!(c2.get("n").unwrap(), Some((0, b"15".to_vec())));

    let stats = read_stats(&mut c);
    assert_eq!(stats["dedupe_hits"], 3, "three duplicate rid-2 attempts");
    assert_eq!(stats["session_descriptors"], 1);
    assert!(stats["session_table_bytes"] > 0);
    assert_eq!(
        stats["replayed_acks"], 0,
        "replayed_acks counts only post-recovery replays"
    );

    c.quit().unwrap();
    c2.quit().unwrap();
    h.shutdown();
}

#[test]
fn session_replay_survives_crash_restart() {
    let (esys, store) = montage_store(4);
    let h = KvServer::start(ServerConfig::default(), store).expect("bind");
    let mut c = WireClient::connect(h.addr()).unwrap();
    c.session(4242).unwrap();
    assert_eq!(c.set_rid("ctr", 0, b"0", 1).unwrap(), "STORED");
    assert_eq!(c.arith(true, "ctr", 1, Some(2)).unwrap(), "1");
    assert_eq!(c.arith(true, "ctr", 1, Some(3)).unwrap(), "2");
    c.sync().unwrap();
    h.crash(); // the ack for rid 3 may or may not have reached the client

    let rec = montage::recovery::recover(esys.pool().crash(), EsysConfig::default(), 2);
    let kv2 = Arc::new(KvStore::recover(rec.esys.clone(), 8, 100_000, &rec));
    let h2 = KvServer::start(ServerConfig::default(), kv2).expect("bind");
    let mut c2 = WireClient::connect(h2.addr()).unwrap();
    c2.session(4242).unwrap();

    // Blind retry of the last request: the recovered descriptor answers it
    // with the original reply; the counter does not move.
    assert_eq!(c2.arith(true, "ctr", 1, Some(3)).unwrap(), "2");
    assert_eq!(c2.get("ctr").unwrap(), Some((0, b"2".to_vec())));
    // The session continues where it left off.
    assert_eq!(c2.arith(true, "ctr", 1, Some(4)).unwrap(), "3");

    let stats = read_stats(&mut c2);
    assert_eq!(stats["replayed_acks"], 1, "one recovered-descriptor replay");
    assert!(stats["dedupe_hits"] >= 1);
    assert_eq!(stats["session_descriptors"], 1);

    c2.quit().unwrap();
    h2.shutdown();
}

#[test]
fn slow_loris_partial_frame_does_not_block_neighbours() {
    use std::io::{Read as _, Write as _};

    // One worker on purpose: the stalled connection and the live one share a
    // thread, so only nonblocking sweeps keep B responsive.
    let h = dram_server(ServerConfig {
        workers: 1,
        ..ServerConfig::default()
    });

    // A sends a set header and two bytes of a five-byte value, then stalls.
    let mut loris = std::net::TcpStream::connect(h.addr()).unwrap();
    loris.write_all(b"set half 0 0 5\r\nab").unwrap();
    std::thread::sleep(Duration::from_millis(50));

    // B gets full service while A's frame dangles.
    let mut c = WireClient::connect(h.addr()).unwrap();
    let t0 = std::time::Instant::now();
    assert_eq!(c.set("live", 0, b"x").unwrap(), "STORED");
    assert_eq!(c.get("live").unwrap(), Some((0, b"x".to_vec())));
    assert!(
        t0.elapsed() < Duration::from_secs(5),
        "neighbour served only after {}ms",
        t0.elapsed().as_millis()
    );

    // A completes the frame and still gets its ack — a slow client is slow,
    // not broken.
    loris.write_all(b"cde\r\n").unwrap();
    let mut reply = [0u8; 8];
    loris.read_exact(&mut reply).unwrap();
    assert_eq!(&reply, b"STORED\r\n");
    assert_eq!(c.get("half").unwrap(), Some((0, b"abcde".to_vec())));

    c.quit().unwrap();
    h.shutdown();
}
