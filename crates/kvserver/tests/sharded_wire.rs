//! Wire tests for the sharded server surface: pipelined traffic spanning
//! every shard across a crash-restart, and per-shard quarantine counters in
//! `stats`.

use std::collections::HashSet;
use std::sync::Arc;

use kvserver::{KvServer, ServerConfig, WireClient};
use kvstore::ShardedKvStore;
use montage::EsysConfig;
use pmem::PmemConfig;

const SHARDS: usize = 4;
const STRIPES: usize = 8;
const CAPACITY: usize = 100_000;

fn sharded_store() -> Arc<ShardedKvStore> {
    ShardedKvStore::format(
        SHARDS,
        PmemConfig::strict_for_test(16 << 20),
        EsysConfig::default(),
        STRIPES,
        CAPACITY,
    )
}

/// Reads one `stats` reply off the wire into (name, value) pairs.
fn read_stats(c: &mut WireClient) -> std::collections::HashMap<String, u64> {
    c.send_raw(b"stats\r\n").unwrap();
    let mut stats = std::collections::HashMap::new();
    loop {
        let line = c.read_line().unwrap();
        if line == "END" {
            return stats;
        }
        let mut parts = line.split_whitespace();
        assert_eq!(parts.next(), Some("STAT"), "bad stats line: {line}");
        let name = parts.next().expect("stat name").to_string();
        let value: u64 = parts.next().expect("stat value").parse().unwrap();
        stats.insert(name, value);
    }
}

/// Pipelined sets land on all four shards through one connection; after an
/// explicit sync, a hard crash, and a parallel multi-pool recovery, every
/// synced key reads back exactly — and anything unsynced that survived must
/// still read back exactly (never torn).
#[test]
fn pipelined_ops_span_all_shards_across_a_crash_restart() {
    const SYNCED_KEYS: usize = 40;
    const UNSYNCED_KEYS: usize = 8;

    let store = sharded_store();
    // The fixed key set must actually exercise the router's spread.
    let covered: HashSet<usize> = (0..SYNCED_KEYS)
        .filter_map(|i| store.shard_of_bytes(format!("skey{i}").as_bytes()))
        .collect();
    assert!(
        covered.len() >= 3,
        "test keys only cover shards {covered:?}; pick a bigger key set"
    );

    let h = KvServer::start_sharded(ServerConfig::default(), Arc::clone(&store)).expect("bind");
    let mut c = WireClient::connect(h.addr()).unwrap();

    // One pipelined packet of sets, answers read back in order.
    let mut packet = Vec::new();
    for i in 0..SYNCED_KEYS {
        let val = format!("v{i}");
        packet.extend_from_slice(format!("set skey{i} 0 0 {}\r\n{val}\r\n", val.len()).as_bytes());
    }
    c.send_raw(&packet).unwrap();
    for i in 0..SYNCED_KEYS {
        assert_eq!(c.read_line().unwrap(), "STORED", "set #{i}");
    }
    // The wire `sync` fans out across every shard's epoch system.
    c.sync().unwrap();

    // A few more writes that are *not* synced: they may or may not survive
    // the crash, but they must never come back torn.
    for i in 0..UNSYNCED_KEYS {
        let val = format!("u{i}");
        assert_eq!(
            c.set(&format!("ukey{i}"), 0, val.as_bytes()).unwrap(),
            "STORED"
        );
    }

    h.crash(); // sever connections, no final sync

    let (store2, report) = ShardedKvStore::recover(
        store.crash_pools(),
        EsysConfig::default(),
        STRIPES,
        CAPACITY,
        SHARDS,
    );
    assert!(
        report.is_clean(),
        "clean crash must recover clean: {report:?}"
    );
    assert_eq!(report.shards.len(), SHARDS);

    let h2 = KvServer::start_sharded(ServerConfig::default(), store2).expect("bind");
    let mut c2 = WireClient::connect(h2.addr()).unwrap();

    // Pipelined gets across all shards: every synced key must be intact.
    let mut packet = Vec::new();
    for i in 0..SYNCED_KEYS {
        packet.extend_from_slice(format!("get skey{i}\r\n").as_bytes());
    }
    c2.send_raw(&packet).unwrap();
    for i in 0..SYNCED_KEYS {
        let val = format!("v{i}");
        assert_eq!(
            c2.read_line().unwrap(),
            format!("VALUE skey{i} 0 {}", val.len()),
            "synced key skey{i} lost or damaged"
        );
        assert_eq!(c2.read_line().unwrap(), val);
        assert_eq!(c2.read_line().unwrap(), "END");
    }
    for i in 0..UNSYNCED_KEYS {
        if let Some((_, raw)) = c2.get(&format!("ukey{i}")).unwrap() {
            assert_eq!(raw, format!("u{i}").as_bytes(), "torn unsynced value");
        }
    }
    c2.quit().unwrap();
    h2.shutdown();
}

/// `stats` must expose the per-shard fault counters: after recovery
/// quarantines a corrupt payload on one shard, exactly that shard's
/// `shardN_pmem_quarantined_payloads` reads 1 (and the aggregate too),
/// while the other shards stay clean and keep serving.
#[test]
fn stats_reports_per_shard_quarantine_counters() {
    const VICTIM: usize = 2;

    let store = sharded_store();
    let h = KvServer::start_sharded(ServerConfig::default(), Arc::clone(&store)).expect("bind");
    let mut c = WireClient::connect(h.addr()).unwrap();
    for i in 0..32 {
        assert_eq!(c.set(&format!("qkey{i}"), 0, b"payload").unwrap(), "STORED");
    }
    c.sync().unwrap();
    c.quit().unwrap();
    h.crash();

    // Plant one extra payload on the victim shard at a known block offset,
    // make it durable, then corrupt its header in the durable image — the
    // kind byte is invalid and the header checksum no longer matches.
    let esys = store.shard(VICTIM).esys().expect("montage shard").clone();
    let tid = esys.register_thread();
    let g = esys.begin_op(tid);
    let victim_blk = esys.pnew_bytes(&g, 9, b"doomed").raw();
    drop(g);
    esys.sync();
    let pool = esys.pool();
    // SAFETY: in-bounds header byte of the payload created just above; the
    // test is single-threaded at this point.
    unsafe { pool.write::<u8>(victim_blk.add(4), &0xFF) };
    pool.persist_range(victim_blk, 8);

    let (store2, report) = ShardedKvStore::recover(
        store.crash_pools(),
        EsysConfig::default(),
        STRIPES,
        CAPACITY,
        SHARDS,
    );
    assert!(!report.is_clean());
    for sr in &report.shards {
        assert!(sr.fatal.is_none(), "quarantine must not be fatal");
        assert_eq!(
            sr.quarantined,
            if sr.shard == VICTIM { 1 } else { 0 },
            "shard {} quarantine count",
            sr.shard
        );
    }

    let h2 = KvServer::start_sharded(ServerConfig::default(), store2).expect("bind");
    let mut c2 = WireClient::connect(h2.addr()).unwrap();
    let stats = read_stats(&mut c2);
    assert_eq!(stats["shards"], SHARDS as u64);
    assert_eq!(stats["pmem_quarantined_payloads"], 1, "aggregate counter");
    for s in 0..SHARDS {
        assert_eq!(
            stats[&format!("shard{s}_pmem_quarantined_payloads")],
            u64::from(s == VICTIM),
            "per-shard counter for shard {s}"
        );
        assert_eq!(stats[&format!("shard{s}_pool_faulted")], 0);
        assert!(stats.contains_key(&format!("shard{s}_montage_epoch")));
    }
    // The store still serves: all pre-crash keys survive (the quarantined
    // payload was the planted foreign block, not a kv item).
    for i in 0..32 {
        assert_eq!(
            c2.get(&format!("qkey{i}")).unwrap(),
            Some((0, b"payload".to_vec())),
            "qkey{i}"
        );
    }
    c2.quit().unwrap();
    h2.shutdown();
}

/// Sessionless conditional ops must be atomic across connections: the
/// accept loop round-robins connections onto different workers, so racing
/// `incr`s on one key interleave read-decide-write unless the store holds
/// the shard lock across the whole decision. 4 connections × 250 blind
/// increments must land on exactly 1000, and concurrent `add`s of a fresh
/// key must elect exactly one winner.
#[test]
fn sessionless_mutations_are_atomic_across_workers() {
    let cfg = ServerConfig {
        workers: 4, // force real cross-worker interleaving
        ..Default::default()
    };
    let handle = KvServer::start_sharded(cfg, sharded_store()).expect("bind");
    let addr = handle.addr();

    let mut c = WireClient::connect(addr).unwrap();
    assert_eq!(c.set("ctr", 0, b"0").unwrap(), "STORED");

    let racers: Vec<_> = (0..4)
        .map(|_| {
            std::thread::spawn(move || {
                let mut c = WireClient::connect(addr).unwrap();
                for _ in 0..250 {
                    let r = c.arith(true, "ctr", 1, None).unwrap();
                    assert!(r.parse::<u64>().is_ok(), "bad incr reply: {r}");
                }
                let mut stored = 0;
                for round in 0..20 {
                    c.send_raw(format!("add race{round} 0 0 1\r\nx\r\n").as_bytes())
                        .unwrap();
                    match c.read_line().unwrap().as_str() {
                        "STORED" => stored += 1,
                        "NOT_STORED" => {}
                        other => panic!("bad add reply: {other}"),
                    }
                }
                stored
            })
        })
        .collect();
    let stored_total: usize = racers.into_iter().map(|h| h.join().unwrap()).sum();

    assert_eq!(
        c.get("ctr").unwrap(),
        Some((0, b"1000".to_vec())),
        "racing sessionless incrs lost updates"
    );
    assert_eq!(
        stored_total, 20,
        "each contested add key must elect exactly one STORED winner"
    );
    c.quit().unwrap();
    handle.shutdown();
}
