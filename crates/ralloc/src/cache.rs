//! Per-thread block caches.
//!
//! Each thread keeps, per size class, a small vector of ready-to-hand-out
//! block offsets. Hitting the cache involves no synchronization at all, which
//! is what gives Ralloc its near-malloc fast path. Caches are keyed by
//! allocator instance id so multiple pools coexist in one process.

use std::cell::RefCell;

use pmem::POff;

use crate::size_class::{class_size, NUM_CLASSES};

/// Refill batch for class `c`: keep roughly 32 KB of blocks in flight,
/// between 4 and 64 blocks.
#[inline]
pub fn batch_for_class(c: usize) -> usize {
    (32 * 1024 / class_size(c)).clamp(4, 64)
}

/// Cache capacity before we spill half back to the shared structures.
#[inline]
pub fn cap_for_class(c: usize) -> usize {
    batch_for_class(c) * 2
}

pub struct ThreadCache {
    pub bins: [Vec<POff>; NUM_CLASSES],
}

impl ThreadCache {
    fn new() -> Self {
        ThreadCache {
            bins: std::array::from_fn(|_| Vec::new()),
        }
    }
}

thread_local! {
    static CACHES: RefCell<Vec<(u64, ThreadCache)>> = const { RefCell::new(Vec::new()) };
}

/// Runs `f` with this thread's cache for allocator instance `id`.
pub fn with_cache<R>(id: u64, f: impl FnOnce(&mut ThreadCache) -> R) -> R {
    CACHES.with(|c| {
        let mut caches = c.borrow_mut();
        if let Some(pos) = caches.iter().position(|(i, _)| *i == id) {
            f(&mut caches[pos].1)
        } else {
            caches.push((id, ThreadCache::new()));
            let last = caches.len() - 1;
            f(&mut caches[last].1)
        }
    })
}

/// Drops this thread's cache for instance `id`, returning any cached blocks
/// so the caller can return them to the shared pool.
pub fn take_cache(id: u64) -> Option<ThreadCache> {
    CACHES.with(|c| {
        let mut caches = c.borrow_mut();
        caches
            .iter()
            .position(|(i, _)| *i == id)
            .map(|pos| caches.swap_remove(pos).1)
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn batches_are_bounded() {
        for c in 0..NUM_CLASSES {
            let b = batch_for_class(c);
            assert!((4..=64).contains(&b), "class {c} batch {b}");
        }
    }

    #[test]
    fn caches_are_per_instance() {
        with_cache(901, |c| c.bins[0].push(POff::new(64)));
        with_cache(902, |c| assert!(c.bins[0].is_empty()));
        with_cache(901, |c| assert_eq!(c.bins[0].len(), 1));
        take_cache(901);
        take_cache(902);
        with_cache(901, |c| assert!(c.bins[0].is_empty()));
        take_cache(901);
    }
}
