//! The allocator proper.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use pmem::{POff, PmemPool, CACHE_LINE, ROOT_AREA_SIZE};

use crate::cache::{batch_for_class, cap_for_class, with_cache};
use crate::size_class::{blocks_per_sb, class_for_size, class_size, NUM_CLASSES, SB_SIZE};
use crate::state::{pack, unpack, SbStack, SbState, NO_SB, NO_SLOT};

const MAGIC: u64 = 0x52_41_4C_4C_4F_43_31_30; // "RALLOC10"

/// Persistent metadata layout, starting right after the root area:
/// `magic:u64, sb_count:u64, next_sb:u64, desc[sb_count]:u32`.
/// `desc[i] == 0` means superblock `i` was never carved; otherwise it holds
/// `size_class + 1`.
struct Meta {
    base: u64,
}

impl Meta {
    const MAGIC_OFF: u64 = 0;
    const SB_COUNT_OFF: u64 = 8;
    const NEXT_SB_OFF: u64 = 16;
    const DESC_OFF: u64 = 24;

    fn magic(&self) -> POff {
        POff::new(self.base + Self::MAGIC_OFF)
    }
    fn sb_count(&self) -> POff {
        POff::new(self.base + Self::SB_COUNT_OFF)
    }
    fn next_sb(&self) -> POff {
        POff::new(self.base + Self::NEXT_SB_OFF)
    }
    fn desc(&self, sb: u32) -> POff {
        POff::new(self.base + Self::DESC_OFF + 4 * sb as u64)
    }
}

/// Allocation statistics (transient, relaxed counters).
#[derive(Debug, Default)]
pub struct RallocStats {
    pub allocs: AtomicU64,
    pub deallocs: AtomicU64,
    pub sbs_carved: AtomicU64,
}

static NEXT_INSTANCE: AtomicU64 = AtomicU64::new(1);

/// The persistent allocator. Cheap to share via `Arc`.
pub struct Ralloc {
    pub(crate) pool: PmemPool,
    pub(crate) instance: u64,
    meta: Meta,
    pub(crate) sb_count: u32,
    pub(crate) heap_base: u64,
    pub(crate) sbs: Box<[SbState]>,
    partial: Box<[SbStack]>, // one per size class
    stats: RallocStats,
}

impl Ralloc {
    /// Formats a fresh pool and returns a ready allocator.
    pub fn format(pool: PmemPool) -> Arc<Ralloc> {
        let (sb_count, heap_base) = Self::geometry(pool.size());
        let meta = Meta {
            base: ROOT_AREA_SIZE as u64,
        };
        // SAFETY: the header words sit just past the root area, in bounds
        // for any pool that passed `geometry`; formatting is single-threaded.
        unsafe {
            pool.write(meta.sb_count(), &(sb_count as u64));
            pool.write(meta.next_sb(), &0u64);
            pool.write(meta.magic(), &MAGIC);
        }
        // Persist the header (descriptor array is zero in a fresh pool and
        // zero means "unused", so it needs no flush).
        pool.persist_range(POff::new(meta.base), 24);
        Arc::new(Self::build(pool, sb_count, heap_base))
    }

    /// Whether `pool` carries a ralloc format header. Recovery code checks
    /// this before [`Ralloc::open_unswept`] (which panics on garbage) so an
    /// unformatted or early-crash pool degrades to an error, not an abort.
    pub fn is_formatted(pool: &PmemPool) -> bool {
        let meta = Meta {
            base: ROOT_AREA_SIZE as u64,
        };
        // SAFETY: in-bounds header word; any bit pattern is a valid u64.
        unsafe { pool.read::<u64>(meta.magic()) == MAGIC }
    }

    /// Opens a previously formatted pool **without** sweeping (blocks are
    /// considered unreachable until [`Ralloc::recover`] is used instead).
    /// Exposed for tests; Montage always goes through `recover`.
    pub fn open_unswept(pool: PmemPool) -> Arc<Ralloc> {
        let (sb_count, heap_base) = Self::geometry(pool.size());
        let meta = Meta {
            base: ROOT_AREA_SIZE as u64,
        };
        // SAFETY: in-bounds header word; any bit pattern is a valid u64.
        let magic = unsafe { pool.read::<u64>(meta.magic()) };
        assert_eq!(magic, MAGIC, "pool is not ralloc-formatted");
        Arc::new(Self::build(pool, sb_count, heap_base))
    }

    fn geometry(pool_size: usize) -> (u32, u64) {
        // Solve for the largest sb_count such that the descriptor array and
        // the superblocks both fit.
        let avail = pool_size as u64 - ROOT_AREA_SIZE as u64;
        let mut sb_count = (avail / SB_SIZE as u64) as u32;
        loop {
            let heap_base = align_up(
                ROOT_AREA_SIZE as u64 + Meta::DESC_OFF + 4 * sb_count as u64,
                4096,
            );
            if heap_base + sb_count as u64 * SB_SIZE as u64 <= pool_size as u64 {
                assert!(sb_count > 0, "pool too small for one superblock");
                return (sb_count, heap_base);
            }
            sb_count -= 1;
        }
    }

    fn build(pool: PmemPool, sb_count: u32, heap_base: u64) -> Ralloc {
        Ralloc {
            pool,
            instance: NEXT_INSTANCE.fetch_add(1, Ordering::Relaxed),
            meta: Meta {
                base: ROOT_AREA_SIZE as u64,
            },
            sb_count,
            heap_base,
            sbs: (0..sb_count).map(|_| SbState::new()).collect(),
            partial: (0..NUM_CLASSES).map(|_| SbStack::new()).collect(),
            stats: RallocStats::default(),
        }
    }

    /// The underlying pool.
    pub fn pool(&self) -> &PmemPool {
        &self.pool
    }

    /// Allocation statistics.
    pub fn stats(&self) -> &RallocStats {
        &self.stats
    }

    /// Number of bytes usable at a block returned for `size`.
    pub fn usable_size(&self, off: POff) -> usize {
        let (sb, _) = self.locate(off);
        class_size(self.class_of_sb(sb))
    }

    // ---- geometry helpers ---------------------------------------------------

    #[inline]
    pub(crate) fn sb_base(&self, sb: u32) -> u64 {
        self.heap_base + sb as u64 * SB_SIZE as u64
    }

    #[inline]
    pub(crate) fn slot_off(&self, sb: u32, slot: u32, class: usize) -> POff {
        POff::new(self.sb_base(sb) + slot as u64 * class_size(class) as u64)
    }

    /// Maps a block offset back to (superblock, slot).
    #[inline]
    pub(crate) fn locate(&self, off: POff) -> (u32, u32) {
        let rel = off.raw() - self.heap_base;
        let sb = (rel / SB_SIZE as u64) as u32;
        debug_assert!(sb < self.sb_count, "offset outside heap");
        let class = self.class_of_sb(sb);
        let slot = ((rel % SB_SIZE as u64) / class_size(class) as u64) as u32;
        (sb, slot)
    }

    #[inline]
    pub(crate) fn class_of_sb(&self, sb: u32) -> usize {
        // SAFETY: `sb < sb_count`, so the descriptor word is in bounds; a
        // carved descriptor is written once and then only read.
        let d = unsafe { self.pool.read::<u32>(self.meta.desc(sb)) };
        debug_assert!(d != 0, "superblock {sb} not carved");
        (d - 1) as usize
    }

    // ---- allocation ---------------------------------------------------------

    /// Allocates `size` bytes; returns the block's offset. The block's
    /// contents are whatever the line last held (callers write their own
    /// headers) — exactly like `malloc`.
    pub fn alloc(&self, size: usize) -> POff {
        self.try_alloc(size).expect("pool out of memory")
    }

    /// Like [`Ralloc::alloc`], but returns `None` instead of panicking when
    /// the heap has no block to give (every superblock carved and full).
    pub fn try_alloc(&self, size: usize) -> Option<POff> {
        let c = class_for_size(size);
        self.stats.allocs.fetch_add(1, Ordering::Relaxed);
        with_cache(self.instance, |cache| {
            if let Some(off) = cache.bins[c].pop() {
                return Some(off);
            }
            self.refill(c, &mut cache.bins[c]);
            cache.bins[c].pop()
        })
    }

    /// Frees the block at `off`.
    pub fn dealloc(&self, off: POff) {
        self.stats.deallocs.fetch_add(1, Ordering::Relaxed);
        let (sb, _) = self.locate(off);
        let c = self.class_of_sb(sb);
        with_cache(self.instance, |cache| {
            let bin = &mut cache.bins[c];
            bin.push(off);
            if bin.len() > cap_for_class(c) {
                // Spill the older half back to their superblocks.
                let spill = bin.len() / 2;
                for off in bin.drain(..spill).collect::<Vec<_>>() {
                    self.remote_free(off);
                }
            }
        })
    }

    /// Returns every block cached by the calling thread to the shared
    /// structures. Call before a worker thread exits to avoid stranding
    /// blocks in its (thread-local) cache.
    pub fn flush_thread_cache(&self) {
        if let Some(cache) = crate::cache::take_cache(self.instance) {
            for bin in cache.bins {
                for off in bin {
                    self.remote_free(off);
                }
            }
        }
    }

    /// Frees a block directly to its superblock, bypassing the thread cache.
    pub fn remote_free(&self, off: POff) {
        let (sb, slot) = self.locate(off);
        let st = &self.sbs[sb as usize];
        // Push onto the superblock's lock-free remote list, linking through
        // the block's first four (transient) bytes.
        let mut head = st.remote_head.load(Ordering::Acquire);
        loop {
            let (tag, top) = unpack(head);
            // Free-list links are transient by design: recovery rebuilds the
            // free lists from the sweep, never from these words.
            // SAFETY: `off` is a freed block this caller owns; the remote-head
            // CAS below publishes the link before anyone follows it.
            unsafe { self.pool.write_transient::<u32>(off, &top) };
            match st.remote_head.compare_exchange_weak(
                head,
                pack(tag.wrapping_add(1), slot),
                Ordering::AcqRel,
                Ordering::Acquire,
            ) {
                Ok(_) => break,
                Err(h) => head = h,
            }
        }
        self.make_available(sb);
    }

    /// Ensures `sb` is reachable from its class's partial stack.
    fn make_available(&self, sb: u32) {
        let st = &self.sbs[sb as usize];
        if !st.in_stack.load(Ordering::Acquire)
            && st
                .in_stack
                .compare_exchange(false, true, Ordering::AcqRel, Ordering::Acquire)
                .is_ok()
        {
            let c = self.class_of_sb(sb);
            self.partial[c].push(sb, &self.sbs);
        }
    }

    /// Refills `bin` with up to one batch of class-`c` blocks.
    fn refill(&self, c: usize, bin: &mut Vec<pmem::POff>) {
        let batch = batch_for_class(c);
        loop {
            let sb = match self.partial[c].pop(&self.sbs) {
                Some(sb) => sb,
                None => self.carve(c),
            };
            let st = &self.sbs[sb as usize];
            self.drain_remote(sb, c);

            // Owner-exclusive harvesting: local free list first, then bump.
            let cap = blocks_per_sb(c);
            while bin.len() < batch {
                let head = st.free_head.load(Ordering::Relaxed);
                if head != NO_SLOT {
                    // SAFETY: the superblock was popped from the partial stack,
                    // so this thread owns its local free list exclusively.
                    let next = unsafe { self.pool.read::<u32>(self.slot_off(sb, head, c)) };
                    st.free_head.store(next, Ordering::Relaxed);
                    st.local_free.fetch_sub(1, Ordering::Relaxed);
                    bin.push(self.slot_off(sb, head, c));
                    continue;
                }
                let b = st.bump.load(Ordering::Relaxed);
                if b < cap {
                    st.bump.store(b + 1, Ordering::Relaxed);
                    st.local_free.fetch_sub(1, Ordering::Relaxed);
                    bin.push(self.slot_off(sb, b, c));
                    continue;
                }
                break;
            }

            let has_more = st.free_head.load(Ordering::Relaxed) != NO_SLOT
                || st.bump.load(Ordering::Relaxed) < cap;
            if has_more {
                // Still has blocks: keep `in_stack` set and put it back.
                self.partial[c].push(sb, &self.sbs);
            } else {
                st.in_stack.store(false, Ordering::Release);
                // A remote free may have landed after our drain but before
                // the flag cleared; don't strand it.
                let (_, top) = unpack(st.remote_head.load(Ordering::Acquire));
                if top != NO_SLOT {
                    self.make_available(sb);
                }
            }

            if !bin.is_empty() {
                return;
            }
            // The popped superblock had been fully drained by remote-free
            // races; try again.
        }
    }

    /// Moves all remote-freed slots of `sb` onto its local free list.
    fn drain_remote(&self, sb: u32, c: usize) {
        let st = &self.sbs[sb as usize];
        let mut head = st.remote_head.load(Ordering::Acquire);
        let taken = loop {
            let (tag, top) = unpack(head);
            if top == NO_SLOT {
                return;
            }
            match st.remote_head.compare_exchange_weak(
                head,
                pack(tag.wrapping_add(1), NO_SLOT),
                Ordering::AcqRel,
                Ordering::Acquire,
            ) {
                Ok(_) => break top,
                Err(h) => head = h,
            }
        };
        // Walk the detached list, prepending to the local free list.
        let mut slot = taken;
        let mut n = 0u32;
        while slot != NO_SLOT {
            // SAFETY: the CAS above detached this list, so the walker owns
            // every slot on it; links live in the blocks' first bytes.
            let next = unsafe { self.pool.read::<u32>(self.slot_off(sb, slot, c)) };
            let lf = st.free_head.load(Ordering::Relaxed);
            // Transient by design, as in `remote_free`.
            // SAFETY: see above — detached-list slots are owner-exclusive.
            unsafe {
                self.pool
                    .write_transient::<u32>(self.slot_off(sb, slot, c), &lf)
            };
            st.free_head.store(slot, Ordering::Relaxed);
            n += 1;
            slot = next;
        }
        st.local_free.fetch_add(n, Ordering::Relaxed);
    }

    /// Carves a fresh superblock for class `c`. This is the only allocator
    /// path that issues persistence instructions (one flush+fence per 256 KB
    /// of heap growth — amortized to nothing).
    fn carve(&self, c: usize) -> u32 {
        // SAFETY: the next_sb header word is reserved, 8-aligned, and only
        // accessed through this atomic view after format.
        let next_sb = unsafe { self.pool.atomic_u64(self.meta.next_sb()) };
        let sb = next_sb.fetch_add(1, Ordering::AcqRel);
        assert!(
            sb < self.sb_count as u64,
            "ralloc: out of persistent memory ({} superblocks)",
            self.sb_count
        );
        let sb = sb as u32;
        // SAFETY: the fetch_add above reserved descriptor `sb` for this
        // thread exclusively; the word is in bounds (sb < sb_count).
        unsafe { self.pool.write::<u32>(self.meta.desc(sb), &(c as u32 + 1)) };
        // The bump above went through an atomic the sanitizer cannot see.
        self.pool
            .san_mark_dirty(self.meta.next_sb(), std::mem::size_of::<u64>());
        self.pool.clwb(self.meta.desc(sb));
        self.pool.clwb(self.meta.next_sb());
        self.pool.sfence();
        self.stats.sbs_carved.fetch_add(1, Ordering::Relaxed);

        let st = &self.sbs[sb as usize];
        st.free_head.store(NO_SLOT, Ordering::Relaxed);
        st.bump.store(0, Ordering::Relaxed);
        st.local_free.store(blocks_per_sb(c), Ordering::Relaxed);
        st.in_stack.store(true, Ordering::Release); // owned by the carver
        sb
    }

    // ---- recovery support (see recovery.rs) --------------------------------

    pub(crate) fn meta_desc(&self, sb: u32) -> POff {
        self.meta.desc(sb)
    }

    /// Rebuilds the transient free state of `sb` given the slots that
    /// survived the sweep. Used only during recovery (exclusive access).
    pub(crate) fn adopt_swept_sb(&self, sb: u32, c: usize, kept: &[u32]) {
        let st = &self.sbs[sb as usize];
        let cap = blocks_per_sb(c);
        let mut keep_mask = vec![false; cap as usize];
        for &s in kept {
            keep_mask[s as usize] = true;
        }
        let mut head = NO_SLOT;
        let mut free = 0u32;
        for slot in (0..cap).rev() {
            if !keep_mask[slot as usize] {
                // Transient by design, as in `remote_free`.
                // SAFETY: recovery runs single-threaded, and the slot was not
                // kept by the sweep, so nothing references it.
                unsafe {
                    self.pool
                        .write_transient::<u32>(self.slot_off(sb, slot, c), &head)
                };
                head = slot;
                free += 1;
            }
        }
        st.free_head.store(head, Ordering::Relaxed);
        st.bump.store(cap, Ordering::Relaxed);
        st.local_free.store(free, Ordering::Relaxed);
        st.stack_link.store(NO_SB, Ordering::Relaxed);
        if free > 0 {
            st.in_stack.store(true, Ordering::Relaxed);
            self.partial[c].push(sb, &self.sbs);
        } else {
            st.in_stack.store(false, Ordering::Relaxed);
        }
    }
}

#[inline]
fn align_up(v: u64, a: u64) -> u64 {
    (v + a - 1) & !(a - 1)
}

// Keep CACHE_LINE referenced so the import stays meaningful if layout changes.
const _: () = assert!(CACHE_LINE == 64);

#[cfg(test)]
mod tests {
    use super::*;
    use pmem::PmemConfig;
    use std::collections::HashSet;

    fn small_pool() -> PmemPool {
        PmemPool::new(PmemConfig {
            size: 16 << 20,
            ..Default::default()
        })
    }

    #[test]
    fn alloc_returns_distinct_in_bounds_blocks() {
        let r = Ralloc::format(small_pool());
        let mut seen = HashSet::new();
        for _ in 0..1000 {
            let off = r.alloc(100);
            assert!(off.raw() >= r.heap_base);
            assert!((off.raw() as usize) < r.pool.size());
            assert!(seen.insert(off.raw()), "duplicate block");
        }
    }

    #[test]
    fn usable_size_covers_request() {
        let r = Ralloc::format(small_pool());
        for size in [1usize, 16, 17, 100, 1024, 4096, 65536] {
            let off = r.alloc(size);
            assert!(r.usable_size(off) >= size);
        }
    }

    #[test]
    fn dealloc_then_alloc_reuses_memory() {
        let r = Ralloc::format(small_pool());
        let mut offs = vec![];
        for _ in 0..500 {
            offs.push(r.alloc(64));
        }
        for off in offs.drain(..) {
            r.dealloc(off);
        }
        let carved_before = r.stats().sbs_carved.load(Ordering::Relaxed);
        for _ in 0..500 {
            r.alloc(64);
        }
        let carved_after = r.stats().sbs_carved.load(Ordering::Relaxed);
        assert_eq!(
            carved_before, carved_after,
            "reuse should not carve new superblocks"
        );
    }

    #[test]
    fn blocks_do_not_overlap_within_class_mix() {
        let r = Ralloc::format(small_pool());
        let mut ranges: Vec<(u64, u64)> = vec![];
        for (i, size) in [24usize, 100, 1000, 4000]
            .iter()
            .cycle()
            .take(400)
            .enumerate()
        {
            let off = r.alloc(*size);
            let len = r.usable_size(off) as u64;
            for &(s, e) in &ranges {
                assert!(
                    off.raw() >= e || off.raw() + len <= s,
                    "overlap at iteration {i}"
                );
            }
            ranges.push((off.raw(), off.raw() + len));
        }
    }

    #[test]
    fn allocation_fast_path_is_flush_free() {
        let r = Ralloc::format(small_pool());
        // Warm up: carve superblocks.
        let mut offs: Vec<_> = (0..64).map(|_| r.alloc(128)).collect();
        let before = r.pool.stats().snapshot();
        for _ in 0..32 {
            offs.push(r.alloc(128));
            r.dealloc(offs.remove(0));
        }
        let after = r.pool.stats().snapshot();
        assert_eq!(
            before, after,
            "steady-state alloc/free must not flush or fence"
        );
    }

    #[test]
    fn cross_thread_free_is_safe_and_reusable() {
        let r = Ralloc::format(small_pool());
        let offs: Vec<POff> = (0..256).map(|_| r.alloc(256)).collect();
        let r2 = r.clone();
        std::thread::spawn(move || {
            for off in offs {
                r2.remote_free(off);
            }
        })
        .join()
        .unwrap();
        // Allocations on this thread can now reuse those blocks.
        let carved_before = r.stats().sbs_carved.load(Ordering::Relaxed);
        let mut seen = HashSet::new();
        for _ in 0..256 {
            assert!(seen.insert(r.alloc(256).raw()));
        }
        assert_eq!(carved_before, r.stats().sbs_carved.load(Ordering::Relaxed));
    }

    #[test]
    fn concurrent_alloc_free_stress() {
        let r = Ralloc::format(PmemPool::new(PmemConfig {
            size: 64 << 20,
            ..Default::default()
        }));
        let mut handles = vec![];
        for t in 0..4 {
            let r = r.clone();
            handles.push(std::thread::spawn(move || {
                let mut live = vec![];
                for i in 0..3000usize {
                    let size = 16 + ((i * 37 + t * 101) % 2000);
                    live.push(r.alloc(size));
                    if i % 3 == 0 {
                        let victim = live.swap_remove((i * 7) % live.len());
                        r.dealloc(victim);
                    }
                }
                live
            }));
        }
        let mut all: Vec<POff> = vec![];
        for h in handles {
            all.extend(h.join().unwrap());
        }
        // No two live blocks may share a slot.
        let mut seen = HashSet::new();
        for off in all {
            assert!(
                seen.insert(off.raw()),
                "duplicate live block across threads"
            );
        }
    }

    #[test]
    #[should_panic(expected = "out of persistent memory")]
    fn exhaustion_panics() {
        let r = Ralloc::format(PmemPool::new(PmemConfig {
            size: 2 << 20, // room for very few superblocks
            ..Default::default()
        }));
        for _ in 0..100_000 {
            r.alloc(65536);
        }
    }
}
