//! Transient allocator state: superblock bookkeeping and the lock-free
//! partial-superblock stacks. Everything here lives in DRAM and is rebuilt
//! after a crash; none of it is ever flushed.

use std::sync::atomic::{AtomicBool, AtomicU32, AtomicU64, Ordering};

/// Sentinel for "no slot" in intra-superblock free lists.
pub const NO_SLOT: u32 = u32::MAX;

/// Sentinel for "no superblock" in the partial stacks.
pub const NO_SB: u32 = u32::MAX;

/// Transient per-superblock state.
///
/// Ownership discipline (LRMalloc-style): a superblock's *local* free list
/// (`free_head`, `bump`) is only manipulated by the single thread that popped
/// the superblock off its class's partial stack; remote frees from other
/// threads go through the `remote_*` fields, which are lock-free.
#[derive(Debug)]
pub struct SbState {
    /// Head of the local free list (slot index), owner-only.
    pub free_head: AtomicU32,
    /// Next never-yet-allocated slot, owner-only.
    pub bump: AtomicU32,
    /// Blocks available locally (free list + bump region), owner-only.
    pub local_free: AtomicU32,
    /// Lock-free remote free list head, packed `(tag:32 | slot:32)`.
    pub remote_head: AtomicU64,
    /// Whether the superblock is currently linked into a partial stack (or
    /// owned for refill). Guards against double-push.
    pub in_stack: AtomicBool,
    /// Next superblock in the partial stack (transient link).
    pub stack_link: AtomicU32,
}

impl SbState {
    pub fn new() -> Self {
        SbState {
            free_head: AtomicU32::new(NO_SLOT),
            bump: AtomicU32::new(0),
            local_free: AtomicU32::new(0),
            remote_head: AtomicU64::new(pack(0, NO_SLOT)),
            in_stack: AtomicBool::new(false),
            stack_link: AtomicU32::new(NO_SB),
        }
    }
}

impl Default for SbState {
    fn default() -> Self {
        Self::new()
    }
}

#[inline]
pub fn pack(tag: u32, idx: u32) -> u64 {
    ((tag as u64) << 32) | idx as u64
}

#[inline]
pub fn unpack(v: u64) -> (u32, u32) {
    ((v >> 32) as u32, v as u32)
}

/// A tagged Treiber stack of superblock ids, links held in `SbState::stack_link`.
#[derive(Debug)]
pub struct SbStack {
    head: AtomicU64,
}

impl SbStack {
    pub fn new() -> Self {
        SbStack {
            head: AtomicU64::new(pack(0, NO_SB)),
        }
    }

    /// Pushes superblock `sb` (caller must have claimed `in_stack`).
    pub fn push(&self, sb: u32, states: &[SbState]) {
        let mut head = self.head.load(Ordering::Acquire);
        loop {
            let (tag, top) = unpack(head);
            states[sb as usize].stack_link.store(top, Ordering::Relaxed);
            match self.head.compare_exchange_weak(
                head,
                pack(tag.wrapping_add(1), sb),
                Ordering::AcqRel,
                Ordering::Acquire,
            ) {
                Ok(_) => return,
                Err(h) => head = h,
            }
        }
    }

    /// Pops a superblock id, or `None` if empty. The popped superblock's
    /// `in_stack` flag remains set; the caller clears it when releasing
    /// ownership (or keeps it set while re-pushing).
    pub fn pop(&self, states: &[SbState]) -> Option<u32> {
        let mut head = self.head.load(Ordering::Acquire);
        loop {
            let (tag, top) = unpack(head);
            if top == NO_SB {
                return None;
            }
            let next = states[top as usize].stack_link.load(Ordering::Relaxed);
            match self.head.compare_exchange_weak(
                head,
                pack(tag.wrapping_add(1), next),
                Ordering::AcqRel,
                Ordering::Acquire,
            ) {
                Ok(_) => return Some(top),
                Err(h) => head = h,
            }
        }
    }
}

impl Default for SbStack {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn pack_unpack_roundtrip() {
        let v = pack(7, 42);
        assert_eq!(unpack(v), (7, 42));
        assert_eq!(unpack(pack(u32::MAX, NO_SB)), (u32::MAX, NO_SB));
    }

    #[test]
    fn stack_lifo_order() {
        let states: Vec<SbState> = (0..4).map(|_| SbState::new()).collect();
        let s = SbStack::new();
        s.push(0, &states);
        s.push(1, &states);
        s.push(2, &states);
        assert_eq!(s.pop(&states), Some(2));
        assert_eq!(s.pop(&states), Some(1));
        assert_eq!(s.pop(&states), Some(0));
        assert_eq!(s.pop(&states), None);
    }

    #[test]
    fn stack_concurrent_push_pop_conserves_elements() {
        const N: usize = 64;
        let states: Arc<Vec<SbState>> = Arc::new((0..N).map(|_| SbState::new()).collect());
        let stack = Arc::new(SbStack::new());
        for i in 0..N as u32 {
            stack.push(i, &states);
        }
        let mut handles = vec![];
        for _ in 0..4 {
            let stack = stack.clone();
            let states = states.clone();
            handles.push(std::thread::spawn(move || {
                let mut popped = vec![];
                for _ in 0..200 {
                    if let Some(sb) = stack.pop(&states) {
                        popped.push(sb);
                        stack.push(sb, &states);
                    }
                }
                popped.len()
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        // All N elements must still be present exactly once.
        let mut seen = [false; N];
        while let Some(sb) = stack.pop(&states) {
            assert!(!seen[sb as usize], "duplicate element {sb}");
            seen[sb as usize] = true;
        }
        assert!(seen.iter().all(|&b| b), "lost elements");
    }
}
