//! # ralloc — a Ralloc-style persistent allocator
//!
//! Re-implementation (in spirit) of Ralloc \[Cai et al., ISMM '20\] /
//! LRMalloc \[Leite & Rocha\] on top of the [`pmem`] simulated NVM pool, as
//! required by Montage. Key properties carried over from the original:
//!
//! * **No write-backs or fences on the allocation fast path.** Free lists,
//!   thread caches and partial-superblock stacks are all *transient*
//!   (working-image) state, rebuilt after a crash. The only durable metadata
//!   is the per-superblock size-class descriptor and the superblock
//!   high-water count, each persisted once when a fresh superblock is carved
//!   (amortized over thousands of allocations).
//! * **Segregated size classes** (16 B – 64 KB) carved from 256 KB
//!   superblocks; per-thread caches with batched refill; lock-free global
//!   partial-superblock stacks (tagged Treiber stacks); remote-free lists so
//!   any thread may free any block.
//! * **Sweep recovery.** Montage replaced Ralloc's post-crash GC with a
//!   sweep that "peruses all blocks" and keeps exactly those a filter
//!   accepts. [`Ralloc::recover`] does the same: it visits every slot of
//!   every described superblock, asks the caller's filter whether the block's
//!   contents identify a live object, frees the rest, and returns the
//!   survivors (optionally as `k` disjoint shards for parallel recovery).
//!
//! Blocks are returned as [`pmem::POff`] offsets pointing at the block's
//! user bytes; the allocator stores no per-block header, so the *content* of
//! a block (e.g. the Montage payload header with its magic/epoch tag) is what
//! the recovery filter inspects — exactly the contract Montage relies on.
//!
//! ```
//! use pmem::{PmemConfig, PmemPool};
//! use ralloc::Ralloc;
//!
//! let r = Ralloc::format(PmemPool::new(PmemConfig::default()));
//! let blk = r.alloc(100);
//! assert!(r.usable_size(blk) >= 100);
//! r.dealloc(blk);
//! ```

mod alloc;
mod cache;
mod recovery;
mod size_class;
mod state;

pub use alloc::{Ralloc, RallocStats};
pub use recovery::SweepShard;
pub use size_class::{class_for_size, class_size, MAX_ALLOC, NUM_CLASSES, SB_SIZE};
