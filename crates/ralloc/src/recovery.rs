//! Sweep recovery: visit every block of every carved superblock, keep what
//! the filter accepts, free the rest, and rebuild the transient free state.

use std::sync::Arc;

use pmem::{POff, PmemPool};

use crate::alloc::Ralloc;
use crate::size_class::blocks_per_sb;

/// One shard of sweep survivors, for parallel recovery. Each shard covers a
/// disjoint set of superblocks.
#[derive(Debug, Default)]
pub struct SweepShard {
    /// Offsets of surviving blocks, paired with their usable size.
    pub kept: Vec<(POff, usize)>,
}

impl Ralloc {
    /// Recovers an allocator from a crashed pool.
    ///
    /// `filter(off, usable_size)` must return `true` iff the bytes at `off`
    /// identify a live object (for Montage: a payload whose header magic is
    /// valid and whose epoch is at most the recovery cutoff). Everything else
    /// — never-written slots, freed blocks, torn allocations — is put back on
    /// the free lists.
    ///
    /// Returns the allocator and the survivors.
    pub fn recover<F>(pool: PmemPool, filter: F) -> (Arc<Ralloc>, Vec<(POff, usize)>)
    where
        F: Fn(POff, usize) -> bool + Sync,
    {
        let (r, mut shards) = Self::recover_parallel(pool, 1, filter);
        (r, shards.pop().unwrap().kept)
    }

    /// Parallel variant of [`Ralloc::recover`]: superblocks are distributed
    /// round-robin over `k` worker threads (the paper's "k separate
    /// iterators, to be used by k separate application threads").
    pub fn recover_parallel<F>(
        pool: PmemPool,
        k: usize,
        filter: F,
    ) -> (Arc<Ralloc>, Vec<SweepShard>)
    where
        F: Fn(POff, usize) -> bool + Sync,
    {
        assert!(k >= 1);
        let r = Ralloc::open_unswept(pool);
        let shards = r.sweep_into_shards(k, &filter);
        (r, shards)
    }

    /// Re-sweeps an already-open allocator (used by tests to inspect sweep
    /// behaviour in isolation).
    pub fn sweep_into_shards<F>(self: &Arc<Self>, k: usize, filter: &F) -> Vec<SweepShard>
    where
        F: Fn(POff, usize) -> bool + Sync,
    {
        // A descriptor outside the class range is corrupt (e.g. a torn
        // metadata line); treat the superblock as uncarved rather than
        // indexing the class table with garbage. Its blocks are unreachable
        // until the next format — degraded, but no panic and no phantoms.
        let carved: Vec<(u32, usize)> = (0..self.sb_count)
            .filter_map(|sb| {
                // A probe read: the descriptor is validated (range-checked)
                // before anything trusts it, per the comment above.
                // SAFETY: meta_desc(sb) is an in-bounds metadata word; any bit
                // pattern is a valid u32 and is range-checked before use.
                let d = self
                    .pool
                    .san_probe(|| unsafe { self.pool.read::<u32>(self.meta_desc(sb)) });
                (d != 0 && ((d - 1) as usize) < crate::size_class::NUM_CLASSES)
                    .then(|| (sb, (d - 1) as usize))
            })
            .collect();

        if k == 1 {
            return vec![self.sweep_worker(&carved, filter)];
        }

        let chunks: Vec<Vec<(u32, usize)>> = (0..k)
            .map(|i| carved.iter().copied().skip(i).step_by(k).collect())
            .collect();
        std::thread::scope(|s| {
            let handles: Vec<_> = chunks
                .iter()
                .map(|chunk| s.spawn(|| self.sweep_worker(chunk, filter)))
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        })
    }

    fn sweep_worker<F>(self: &Arc<Self>, sbs: &[(u32, usize)], filter: &F) -> SweepShard
    where
        F: Fn(POff, usize) -> bool + Sync,
    {
        let mut shard = SweepShard::default();
        let mut kept_slots: Vec<u32> = Vec::new();
        for &(sb, c) in sbs {
            kept_slots.clear();
            let size = crate::size_class::class_size(c);
            for slot in 0..blocks_per_sb(c) {
                let off = self.slot_off(sb, slot, c);
                if filter(off, size) {
                    kept_slots.push(slot);
                    shard.kept.push((off, size));
                }
            }
            self.adopt_swept_sb(sb, c, &kept_slots);
        }
        shard
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pmem::{PmemConfig, PmemPool};
    use std::collections::HashSet;

    const LIVE_MAGIC: u64 = 0xAB0BA;

    fn mark_live(pool: &PmemPool, off: POff, id: u64) {
        // SAFETY: `off` came from alloc(64), so both words fit inside the
        // block and u64 writes are plain data.
        unsafe {
            pool.write(off, &LIVE_MAGIC);
            pool.write(off.add(8), &id);
        }
        pool.persist_range(off, 16);
    }

    fn strict_pool() -> PmemPool {
        PmemPool::new(PmemConfig::strict_for_test(16 << 20))
    }

    #[test]
    fn sweep_keeps_exactly_marked_blocks() {
        let pool = strict_pool();
        let r = Ralloc::format(pool.clone());
        let mut live = HashSet::new();
        for i in 0..300u64 {
            let off = r.alloc(64);
            if i % 3 == 0 {
                mark_live(&pool, off, i);
                live.insert(off.raw());
            }
        }
        let crashed = pool.crash();
        // SAFETY: the sweep only hands the filter in-bounds block offsets,
        // and any bit pattern is a valid u64.
        let (_r2, kept) = Ralloc::recover(crashed.clone(), |off, _| unsafe {
            crashed.read::<u64>(off) == LIVE_MAGIC
        });
        let kept_set: HashSet<u64> = kept.iter().map(|(o, _)| o.raw()).collect();
        assert_eq!(kept_set, live);
    }

    #[test]
    fn survivors_are_not_handed_out_again() {
        let pool = strict_pool();
        let r = Ralloc::format(pool.clone());
        let off = r.alloc(64);
        mark_live(&pool, off, 1);
        let crashed = pool.crash();
        // SAFETY: see `sweep_keeps_exactly_marked_blocks`.
        let (r2, kept) = Ralloc::recover(crashed.clone(), |o, _| unsafe {
            crashed.read::<u64>(o) == LIVE_MAGIC
        });
        assert_eq!(kept.len(), 1);
        for _ in 0..10_000 {
            assert_ne!(r2.alloc(64).raw(), off.raw(), "live block re-allocated");
        }
    }

    #[test]
    fn freed_slots_are_reusable_after_recovery() {
        let pool = strict_pool();
        let r = Ralloc::format(pool.clone());
        for _ in 0..100 {
            r.alloc(64); // never marked live → garbage after crash
        }
        let carved = r
            .stats()
            .sbs_carved
            .load(std::sync::atomic::Ordering::Relaxed);
        let crashed = pool.crash();
        let (r2, kept) = Ralloc::recover(crashed, |_, _| false);
        assert!(kept.is_empty());
        for _ in 0..100 {
            r2.alloc(64);
        }
        assert!(
            r2.stats()
                .sbs_carved
                .load(std::sync::atomic::Ordering::Relaxed)
                <= carved.max(1),
            "recovered free slots should be reused before carving"
        );
    }

    #[test]
    fn parallel_sweep_equals_serial_sweep() {
        let pool = strict_pool();
        let r = Ralloc::format(pool.clone());
        let mut live = HashSet::new();
        for i in 0..500u64 {
            let size = [24, 100, 700, 3000][i as usize % 4];
            let off = r.alloc(size);
            if i % 2 == 0 {
                mark_live(&pool, off, i);
                live.insert(off.raw());
            }
        }
        let crashed = pool.crash();
        // SAFETY: see `sweep_keeps_exactly_marked_blocks`.
        let (_r2, shards) = Ralloc::recover_parallel(crashed.clone(), 4, |off, _| unsafe {
            crashed.read::<u64>(off) == LIVE_MAGIC
        });
        let mut kept = HashSet::new();
        for shard in &shards {
            for (off, _) in &shard.kept {
                assert!(kept.insert(off.raw()), "block appears in two shards");
            }
        }
        assert_eq!(kept, live);
    }

    #[test]
    fn recover_reports_usable_size_of_class() {
        let pool = strict_pool();
        let r = Ralloc::format(pool.clone());
        let off = r.alloc(1000); // class 1024
        mark_live(&pool, off, 9);
        let crashed = pool.crash();
        // SAFETY: see `sweep_keeps_exactly_marked_blocks`.
        let (_r2, kept) = Ralloc::recover(crashed.clone(), |o, _| unsafe {
            crashed.read::<u64>(o) == LIVE_MAGIC
        });
        assert_eq!(kept, vec![(off, 1024)]);
    }
}
