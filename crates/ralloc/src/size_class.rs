//! Segregated size classes.

/// Superblock size: the unit in which the heap is carved.
pub const SB_SIZE: usize = 256 * 1024;

/// Size-class table (bytes). Multiples of 16 so every block is 16-aligned.
pub const CLASSES: [usize; 23] = [
    16, 32, 48, 64, 96, 128, 192, 256, 384, 512, 768, 1024, 1536, 2048, 3072, 4096, 6144, 8192,
    12288, 16384, 24576, 32768, 65536,
];

/// Number of size classes.
pub const NUM_CLASSES: usize = CLASSES.len();

/// Largest supported allocation.
pub const MAX_ALLOC: usize = CLASSES[NUM_CLASSES - 1];

/// Smallest class index whose blocks hold `size` bytes.
///
/// Panics if `size` exceeds [`MAX_ALLOC`] (Montage payloads are bounded well
/// below it; see DESIGN.md).
#[inline]
pub fn class_for_size(size: usize) -> usize {
    assert!(
        size <= MAX_ALLOC,
        "allocation of {size} B exceeds MAX_ALLOC ({MAX_ALLOC} B)"
    );
    // Classes are few; a linear scan of a 23-entry const table beats a
    // branchy formula and is trivially correct.
    CLASSES.iter().position(|&c| c >= size).unwrap()
}

/// Block size of class `c`.
#[inline]
pub fn class_size(c: usize) -> usize {
    CLASSES[c]
}

/// Blocks per superblock for class `c`.
#[inline]
pub fn blocks_per_sb(c: usize) -> u32 {
    (SB_SIZE / CLASSES[c]) as u32
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classes_are_sorted_and_16_aligned() {
        for w in CLASSES.windows(2) {
            assert!(w[0] < w[1]);
        }
        for &c in &CLASSES {
            assert_eq!(c % 16, 0);
        }
    }

    #[test]
    fn class_for_size_is_tight() {
        assert_eq!(class_size(class_for_size(1)), 16);
        assert_eq!(class_size(class_for_size(16)), 16);
        assert_eq!(class_size(class_for_size(17)), 32);
        assert_eq!(class_size(class_for_size(1024)), 1024);
        assert_eq!(class_size(class_for_size(1025)), 1536);
        assert_eq!(class_size(class_for_size(MAX_ALLOC)), MAX_ALLOC);
    }

    #[test]
    #[should_panic]
    fn oversize_panics() {
        class_for_size(MAX_ALLOC + 1);
    }

    #[test]
    fn every_class_fills_a_superblock() {
        for (c, &class) in CLASSES.iter().enumerate() {
            assert!(blocks_per_sb(c) >= 4, "class {c} too coarse");
            // Slack at the end of a superblock (for non-power-of-two classes)
            // must stay under one block.
            assert!(SB_SIZE - blocks_per_sb(c) as usize * class < class);
        }
    }
}
