//! Boots the networked KV server over a Montage-backed store, drives a few
//! thousand wire operations (sets, gets, pipelining, noreply, explicit
//! sync), then simulates a crash and restarts the server on the recovered
//! pool — verifying the synced prefix survived. Doubles as the CI smoke test
//! for the serving stack.
//!
//! ```sh
//! cargo run --release --example kvserver_demo
//! ```
//!
//! While it runs (or with your own long-running server), any memcached
//! client works, including netcat:
//!
//! ```sh
//! printf 'set greeting 0 0 5\r\nhello\r\nget greeting\r\nsync\r\nquit\r\n' | nc 127.0.0.1 <port>
//! ```

use std::sync::Arc;

use montage_suite::kvserver::{KvServer, ServerConfig, WireClient};
use montage_suite::kvstore::{KvBackend, KvStore};
use montage_suite::montage::{EpochSys, EsysConfig};
use montage_suite::pmem::{PmemConfig, PmemPool};

const OPS: u64 = 3000;

fn main() {
    // --- Boot: a strict-mode pool so crash() has a durable image to keep.
    let esys = EpochSys::format(
        PmemPool::new(PmemConfig::strict_for_test(64 << 20)),
        EsysConfig {
            max_threads: 8,
            ..Default::default()
        },
    );
    let store = Arc::new(KvStore::new(KvBackend::Montage(esys.clone()), 8, 100_000));
    let server = KvServer::start(ServerConfig::default(), store).expect("bind");
    println!("kvserver listening on {}", server.addr());

    // --- A few thousand wire ops from a plain blocking client.
    let mut c = WireClient::connect(server.addr()).expect("connect");
    for i in 0..OPS {
        let key = format!("k{}", i % 500);
        if i % 3 == 0 {
            c.set_noreply(&key, 0, format!("v{i}").as_bytes()).unwrap();
        } else {
            assert_eq!(
                c.set(&key, 0, format!("v{i}").as_bytes()).unwrap(),
                "STORED"
            );
        }
        if i % 5 == 4 {
            c.get(&key).unwrap();
        }
    }
    println!("ran {OPS} mixed set/get ops over loopback");

    // Pipelining: four commands, one packet.
    c.send_raw(b"set p 0 0 2\r\nhi\r\nget p\r\ndelete p\r\nget p\r\n")
        .unwrap();
    assert_eq!(c.read_line().unwrap(), "STORED");
    assert_eq!(c.read_line().unwrap(), "VALUE p 0 2");
    assert_eq!(c.read_line().unwrap(), "hi");
    assert_eq!(c.read_line().unwrap(), "END");
    assert_eq!(c.read_line().unwrap(), "DELETED");
    assert_eq!(c.read_line().unwrap(), "END");
    println!("pipelined batch answered in order");

    // --- Durability boundary: ack a write, then make it crash-proof.
    assert_eq!(c.set("wal", 7, b"must-survive").unwrap(), "STORED");
    c.sync().expect("SYNCED only after EpochSys::sync returns");
    assert_eq!(c.set("maybe", 0, b"unsynced").unwrap(), "STORED");
    drop(c);

    // --- Crash: sever connections, stop threads, no final sync.
    server.crash();
    let rec =
        montage_suite::montage::recovery::recover(esys.pool().crash(), EsysConfig::default(), 2);
    let recovered = KvStore::recover(rec.esys.clone(), 8, 100_000, &rec);
    println!(
        "crash: recovered {} items from the durable image",
        recovered.len()
    );

    // --- Restart on the recovered pool; clients reconnect.
    let server2 = KvServer::start(ServerConfig::default(), Arc::new(recovered)).expect("rebind");
    let mut c2 = WireClient::connect(server2.addr()).expect("reconnect");
    let (flags, val) = c2.get("wal").unwrap().expect("synced write must survive");
    assert_eq!((flags, val.as_slice()), (7, &b"must-survive"[..]));
    match c2.get("maybe").unwrap() {
        Some((_, v)) => println!("unsynced write happened to survive: {:?}", v.len()),
        None => println!("unsynced write was (legitimately) lost with the buffered epochs"),
    }
    c2.quit().unwrap();
    server2.shutdown();
    println!("ok: synced prefix survived the crash; server restarted cleanly");
}
