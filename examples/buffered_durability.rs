//! Demonstrates *buffered* durable linearizability on the queue — the core
//! semantic contribution of the paper — and the cost difference between
//! relying on the epoch clock and calling `sync` per operation.
//!
//! ```sh
//! cargo run --release --example buffered_durability
//! ```

use std::time::Instant;

use montage::{EpochSys, EsysConfig, ThreadId};
use montage_ds::{tags, MontageQueue};
use pmem::{PmemConfig, PmemPool};

fn fresh() -> (std::sync::Arc<EpochSys>, MontageQueue, ThreadId) {
    let pool = PmemPool::new(PmemConfig::strict_for_test(64 << 20));
    let esys = EpochSys::format(pool, EsysConfig::default());
    let tid = esys.register_thread();
    let q = MontageQueue::new(esys.clone(), tags::QUEUE);
    (esys, q, tid)
}

fn main() {
    // --- Part 1: semantics --------------------------------------------------
    let (esys, q, tid) = fresh();
    for i in 0..100u32 {
        q.enqueue(tid, &i.to_le_bytes());
        if i == 59 {
            esys.sync(); // items 0..=59 now guaranteed durable
        }
    }
    let rec = montage::recovery::recover(esys.pool().crash(), EsysConfig::default(), 1);
    let q2 = MontageQueue::recover(rec.esys.clone(), tags::QUEUE, &rec);
    let (head, next) = q2.seq_bounds();
    println!("enqueued 100, synced after 60 → recovered items {head}..{next}");
    assert_eq!(head, 0);
    assert!(next >= 60, "synced prefix must survive");
    assert!(
        (60..=100).contains(&next),
        "recovered state is a consistent prefix, never a gappy subset"
    );

    // --- Part 2: the price of strictness -------------------------------------
    const N: u32 = 3_000;

    let (esys, q, tid) = fresh();
    let start = Instant::now();
    for i in 0..N {
        q.enqueue(tid, &i.to_le_bytes());
    }
    esys.sync(); // one sync at the end
    let buffered = start.elapsed();
    let buffered_fences = esys.pool().stats().snapshot().sfences;

    let (esys, q, tid) = fresh();
    let start = Instant::now();
    for i in 0..N {
        q.enqueue(tid, &i.to_le_bytes());
        esys.sync(); // strict durable linearizability, one sync per op
    }
    let strict = start.elapsed();
    let strict_fences = esys.pool().stats().snapshot().sfences;

    println!(
        "{N} enqueues: buffered {:?} / {} fences vs sync-per-op {:?} / {} fences",
        buffered, buffered_fences, strict, strict_fences,
    );
    // The structural claim (deterministic, unlike wall time on a busy box):
    // per-op syncing fences at least once per operation; buffering fences
    // only at epoch boundaries.
    assert!(strict_fences >= N as u64);
    assert!(buffered_fences < N as u64 / 10);
    println!("buffered_durability OK");
}
