//! Quickstart: a persistent hashmap in five minutes.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```
//!
//! Walks the whole Montage lifecycle: format a pool, run operations, `sync`,
//! crash the machine (simulated power failure), and recover — then shows
//! that un-synced work was (correctly!) rolled back to a consistent prefix.

use montage::{EpochSys, EsysConfig};
use montage_ds::{tags, MontageHashMap};
use pmem::{PmemConfig, PmemPool};

type Key = [u8; 32];

fn key(s: &str) -> Key {
    let mut k = [0u8; 32];
    k[..s.len()].copy_from_slice(s.as_bytes());
    k
}

fn main() {
    // 1. A simulated persistent-memory pool with full crash semantics.
    let pool = PmemPool::new(PmemConfig::strict_for_test(64 << 20));

    // 2. Format it: persistent allocator + epoch system (10 ms epochs,
    //    64-entry per-thread write-back buffers — the paper's defaults).
    let esys = EpochSys::format(pool, EsysConfig::default());
    let tid = esys.register_thread();

    // 3. A hashmap whose index lives in DRAM; only key/value payloads are
    //    persistent.
    let map = MontageHashMap::<Key>::new(esys.clone(), tags::HASHMAP, 1024);
    map.put(tid, key("alice"), b"likes rust");
    map.put(tid, key("bob"), b"likes queues");
    map.put(tid, key("carol"), b"likes graphs");

    // 4. Make everything durable — like fsync, but microseconds.
    esys.sync();
    println!("synced 3 entries (epoch now {})", esys.curr_epoch());

    // 5. More updates... that we will NOT sync.
    map.put(tid, key("alice"), b"changed her mind");
    map.remove(tid, &key("bob"));
    println!("made 2 more updates without syncing");

    // 6. Power failure!
    let crashed = esys.pool().crash();
    println!("crash! recovering...");

    // 7. Recovery: sweep the heap, cancel anti-payloads, rebuild the index.
    let rec = montage::recovery::recover(crashed, EsysConfig::default(), 2);
    let map = MontageHashMap::<Key>::recover(rec.esys.clone(), tags::HASHMAP, 1024, &rec);
    let tid = rec.esys.register_thread();

    // 8. The synced state came back; the un-synced suffix was rolled back —
    //    buffered durable linearizability, exactly like a file system.
    assert_eq!(map.len(), 3);
    assert_eq!(
        map.get_owned(tid, &key("alice")).unwrap(),
        b"likes rust",
        "un-synced update rolled back"
    );
    assert!(
        map.get_owned(tid, &key("bob")).is_some(),
        "un-synced remove rolled back"
    );
    println!("recovered {} entries:", map.len());
    for name in ["alice", "bob", "carol"] {
        let v = map.get_owned(tid, &key(name)).unwrap();
        println!("  {name} -> {}", String::from_utf8_lossy(&v));
    }
    println!("quickstart OK");
}
