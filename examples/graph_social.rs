//! A persistent social graph (the paper's Sec. 6.3 generality demo): build a
//! power-law network, mutate it concurrently, crash, and recover in
//! parallel — no file I/O, no serialization.
//!
//! ```sh
//! cargo run --release --example graph_social
//! ```

use std::sync::Arc;
use std::time::Instant;

use montage::{Advancer, EpochSys, EsysConfig, ThreadId};
use montage_ds::{tags, MontageGraph};
use pmem::{PmemConfig, PmemMode, PmemPool};
use workloads::graphgen::{GraphDataset, GraphGenConfig};

fn main() {
    let ds = GraphDataset::generate(GraphGenConfig {
        vertices: 20_000,
        edges_per_vertex: 8,
        seed: 99,
        partitions: 4,
    });
    println!(
        "dataset: {} vertices, {} edges",
        ds.vertices,
        ds.edge_count()
    );

    let pool = PmemPool::new(PmemConfig {
        size: 512 << 20,
        mode: PmemMode::Strict,
        ..Default::default()
    });
    let esys = EpochSys::format(pool, EsysConfig::default());
    let advancer = Advancer::start(esys.clone());
    let graph = Arc::new(MontageGraph::new(
        esys.clone(),
        tags::GRAPH_VERTEX,
        tags::GRAPH_EDGE,
        ds.vertices as usize,
    ));

    // Parallel construction from the partitioned dataset.
    let threads = 4;
    for _ in 0..threads {
        esys.register_thread();
    }
    let start = Instant::now();
    std::thread::scope(|s| {
        for t in 0..threads {
            let graph = graph.clone();
            let n = ds.vertices;
            s.spawn(move || {
                let mut v = t as u64;
                while v < n {
                    graph.add_vertex(ThreadId(t), v, format!("user-{v}").as_bytes());
                    v += threads as u64;
                }
            });
        }
    });
    std::thread::scope(|s| {
        for (part, edges) in ds.partitions.iter().enumerate() {
            let graph = graph.clone();
            let tid = part % threads;
            s.spawn(move || {
                for &(a, b) in edges {
                    graph.add_edge(ThreadId(tid), a as u64, b as u64, b"follows");
                }
            });
        }
    });
    println!(
        "built graph in {:.2}s: {} vertices, {} edges",
        start.elapsed().as_secs_f64(),
        graph.vertex_count(),
        graph.edge_count()
    );

    // Some churn: a celebrity deletes their account.
    let tid = ThreadId(0);
    let degrees: Vec<(u64, usize)> = (0..ds.vertices).map(|v| (v, graph.degree(v))).collect();
    let (celebrity, deg) = degrees.iter().max_by_key(|(_, d)| *d).copied().unwrap();
    println!("vertex {celebrity} (degree {deg}) deletes their account");
    graph.remove_vertex(tid, celebrity);

    esys.sync();
    advancer.stop();
    let expected_v = graph.vertex_count();
    let expected_e = graph.edge_count();

    // Crash and parallel recovery.
    let crashed = esys.pool().crash();
    drop(graph);
    let start = Instant::now();
    let rec = montage::recovery::recover(crashed, EsysConfig::default(), threads);
    let graph2 = MontageGraph::recover(
        rec.esys.clone(),
        tags::GRAPH_VERTEX,
        tags::GRAPH_EDGE,
        ds.vertices as usize,
        &rec,
    );
    println!(
        "recovered in {:.2}s: {} vertices, {} edges",
        start.elapsed().as_secs_f64(),
        graph2.vertex_count(),
        graph2.edge_count()
    );
    assert_eq!(graph2.vertex_count(), expected_v);
    assert_eq!(graph2.edge_count(), expected_e);
    assert!(!graph2.has_vertex(celebrity));
    graph2.check_invariants();
    println!("graph_social OK");
}
