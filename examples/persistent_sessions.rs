//! Persistence across *process* runs: the pool's durable image is saved to
//! a snapshot file on exit and re-opened on the next run — the workflow a
//! DAX-mapped file gives real persistent-memory programs, demonstrated with
//! the memcached protocol surface.
//!
//! ```sh
//! cargo run --release --example persistent_sessions          # run 1: creates state
//! cargo run --release --example persistent_sessions          # run 2: finds it again
//! cargo run --release --example persistent_sessions reset    # start over
//! ```

use std::sync::Arc;

use kvstore::protocol::Session;
use kvstore::{KvBackend, KvStore};
use montage::{EpochSys, EsysConfig};
use pmem::{PmemConfig, PmemPool};

const POOL_BYTES: usize = 64 << 20;

fn snapshot_path() -> std::path::PathBuf {
    std::env::temp_dir().join("montage-persistent-sessions.pmem")
}

fn main() {
    let path = snapshot_path();
    if std::env::args().nth(1).as_deref() == Some("reset") {
        let _ = std::fs::remove_file(&path);
        println!("snapshot removed; next run starts fresh");
        return;
    }

    let cfg = PmemConfig::strict_for_test(POOL_BYTES);
    let (esys, store, generation) = match PmemPool::load_from_file(&path, cfg) {
        Ok(pool) => {
            // A previous run left persistent state: recover it.
            let rec = montage::recovery::recover(pool, EsysConfig::default(), 2);
            let store = Arc::new(KvStore::recover(rec.esys.clone(), 8, 100_000, &rec));
            let session = Session::new(store.clone());
            let gen_resp = session.execute("get generation", b"");
            let generation: u64 = gen_resp
                .lines()
                .nth(1)
                .and_then(|l| l.trim().parse().ok())
                .unwrap_or(0);
            println!(
                "recovered {} items from a previous process (generation {generation})",
                store.len()
            );
            (rec.esys, store, generation)
        }
        Err(_) => {
            println!("no snapshot found; formatting a fresh pool");
            let esys = EpochSys::format(PmemPool::new(cfg), EsysConfig::default());
            let store = Arc::new(KvStore::new(KvBackend::Montage(esys.clone()), 8, 100_000));
            (esys, store, 0)
        }
    };

    // Do this run's work through the memcached protocol.
    let session = Session::new(store.clone());
    let generation = generation + 1;
    let gen_str = generation.to_string();
    assert_eq!(
        session.execute(
            &format!("set generation 0 0 {}", gen_str.len()),
            gen_str.as_bytes()
        ),
        "STORED"
    );
    let key = format!("run-{generation}");
    let val = format!("state written by process generation {generation}");
    session.execute(&format!("set {key} 0 0 {}", val.len()), val.as_bytes());
    println!("this is process generation {generation}; stored '{key}'");

    // Show everything accumulated so far.
    for g in 1..=generation {
        let r = session.execute(&format!("get run-{g}"), b"");
        if let Some(line) = r.lines().nth(1) {
            println!("  run-{g}: {line}");
        }
    }

    // Persist and snapshot — the moral equivalent of unmounting the DAX file.
    esys.sync();
    esys.pool().save_to_file(&path).expect("snapshot failed");
    println!("state synced and snapshotted to {}", path.display());
}
