//! A persistent memcached-style cache session (the paper's Sec. 6.2
//! scenario): YCSB-A traffic against the direct-linked cache, a crash, and
//! recovery with the cache contents intact.
//!
//! ```sh
//! cargo run --release --example kvstore_cache
//! ```

use std::sync::Arc;
use std::time::Instant;

use kvstore::{make_key, KvBackend, KvStore};
use montage::{Advancer, EpochSys, EsysConfig};
use pmem::{PmemConfig, PmemMode, PmemPool};
use workloads::ycsb::{YcsbAWorkload, YcsbOp};

const RECORDS: u64 = 10_000;
const OPS: u64 = 100_000;

fn main() {
    let pool = PmemPool::new(PmemConfig {
        size: 256 << 20,
        mode: PmemMode::Strict,
        ..Default::default()
    });
    let esys = EpochSys::format(pool, EsysConfig::default());
    let advancer = Advancer::start(esys.clone());

    let kv = Arc::new(KvStore::new(KvBackend::Montage(esys.clone()), 16, 1 << 20));
    let tid = kv.register_thread();

    // Load phase.
    let value = vec![0x42u8; 128];
    for i in 1..=RECORDS {
        kv.set(tid, make_key(i), &value);
    }
    println!("loaded {RECORDS} records");

    // Run phase: YCSB-A (50% read / 50% update, Zipfian).
    let start = Instant::now();
    let mut hits = 0u64;
    for op in YcsbAWorkload::new(RECORDS, OPS, 7) {
        match op {
            YcsbOp::Read(k) => {
                if kv.get(tid, &make_key(k), |_| ()).is_some() {
                    hits += 1;
                }
            }
            YcsbOp::Update(k) => kv.set(tid, make_key(k), &value),
        }
    }
    let secs = start.elapsed().as_secs_f64();
    println!(
        "YCSB-A: {OPS} ops in {secs:.2}s ({:.0} ops/s), read hit-rate {:.1}%",
        OPS as f64 / secs,
        100.0 * hits as f64 / (OPS / 2) as f64
    );

    // Persist and crash.
    esys.sync();
    advancer.stop();
    let crashed = esys.pool().crash();
    println!("cache crashed; recovering...");

    let start = Instant::now();
    let rec = montage::recovery::recover(crashed, EsysConfig::default(), 4);
    let kv2 = KvStore::recover(rec.esys.clone(), 16, 1 << 20, &rec);
    println!(
        "recovered {} items in {:.3}s",
        kv2.len(),
        start.elapsed().as_secs_f64()
    );
    assert_eq!(kv2.len() as u64, RECORDS);
    let tid2 = kv2.register_thread();
    assert!(kv2.get(tid2, &make_key(1), |_| ()).is_some());
    println!("kvstore_cache OK");
}
