//! Concurrent-history recording and a Wing&Gong-style linearizability
//! checker, extended to *buffered durable* linearizability.
//!
//! ## Live checking
//!
//! A history is a set of [`OpRecord`]s with logical invoke/response
//! timestamps (drawn from one atomic counter, so they totally order
//! non-overlapping ops). [`check_linearizable`] does the classic Wing &
//! Gong search: repeatedly pick a *minimal* pending op — one no other
//! pending op precedes in real time — apply it to a sequential [`Model`],
//! and require the model's return to match what the concurrent run actually
//! observed. Memoizing visited (applied-set, model-state) pairs keeps the
//! search polynomial in practice on real histories.
//!
//! ## Durable checking
//!
//! Montage's guarantee after a crash is not "nothing is lost" but "what
//! survives is a consistent *prefix* cut at an epoch boundary": payloads
//! from epochs ≤ the recovery cutoff all survive; payloads from later
//! epochs are all discarded. [`check_durable_prefix`] verifies a recovered
//! state against a recorded history under exactly that contract. Each op
//! carries the epoch interval it executed in (`[epoch_lo, epoch_hi]`,
//! measured around invoke/response); given the recovery cutoff E:
//!
//! * `epoch_hi ≤ E` → the op **must** be in the durable prefix,
//! * `epoch_lo > E` → the op **must not** be,
//! * otherwise it straddles the boundary and may land on either side.
//!
//! The checker searches for a real-time-respecting linearization of an
//! include/flexible subset whose sequential execution reproduces the
//! recovered state. Prefix-closure under real-time order is enforced
//! structurally: an op can only be applied once all its real-time
//! predecessors were, so nothing outside the chosen prefix can precede
//! anything inside it.

use std::collections::HashSet;
use std::hash::Hash;

/// Max ops per checked history (the applied-set is a `u128` bitmask).
pub const MAX_OPS: usize = 128;

/// A sequential specification the checker replays ops against.
pub trait Model: Clone + Eq + Hash + Default {
    type Op: Clone;
    type Ret: Eq + Clone + std::fmt::Debug;

    fn apply(&mut self, op: &Self::Op) -> Self::Ret;
}

/// One completed operation in a concurrent history.
#[derive(Clone, Debug)]
pub struct OpRecord<O, R> {
    /// Recording thread (diagnostics only).
    pub thread: usize,
    /// Logical invoke timestamp (strictly before `response`).
    pub invoke: u64,
    /// Logical response timestamp.
    pub response: u64,
    /// Epoch clock observed at (or before) invoke — the op's epoch is at
    /// least this. Zero when the run doesn't track epochs.
    pub epoch_lo: u64,
    /// Epoch clock observed at (or after) response — the op's epoch is at
    /// most this.
    pub epoch_hi: u64,
    pub op: O,
    /// What the concurrent run returned.
    pub ret: R,
}

/// Where an op must land relative to a durable cut.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Durability {
    MustInclude,
    Flexible,
    MustExclude,
}

/// Classifies every op of `history` against recovery cutoff epoch `cutoff`.
pub fn classify_by_epoch<O, R>(history: &[OpRecord<O, R>], cutoff: u64) -> Vec<Durability> {
    history
        .iter()
        .map(|op| {
            if op.epoch_hi <= cutoff {
                Durability::MustInclude
            } else if op.epoch_lo > cutoff {
                Durability::MustExclude
            } else {
                Durability::Flexible
            }
        })
        .collect()
}

struct Search<'a, M: Model> {
    history: &'a [OpRecord<M::Op, M::Ret>],
    /// `prec[i]`: bitmask of ops that finish before op `i` begins.
    prec: Vec<u128>,
    memo: HashSet<(u128, M)>,
    full: u128,
}

impl<'a, M: Model> Search<'a, M> {
    fn new(history: &'a [OpRecord<M::Op, M::Ret>]) -> Self {
        let n = history.len();
        assert!(n <= MAX_OPS, "history too long for the u128 bitmask ({n})");
        let prec = (0..n)
            .map(|i| {
                let mut m = 0u128;
                for (j, other) in history.iter().enumerate() {
                    if j != i && other.response < history[i].invoke {
                        m |= 1 << j;
                    }
                }
                m
            })
            .collect();
        Search {
            history,
            prec,
            memo: HashSet::new(),
            full: if n == MAX_OPS { !0 } else { (1u128 << n) - 1 },
        }
    }

    /// Wing&Gong DFS for a full linearization. `order` accumulates the
    /// witness (op indices in linearization order).
    fn dfs_full(&mut self, done: u128, model: &M, order: &mut Vec<usize>) -> bool {
        if done == self.full {
            return true;
        }
        if !self.memo.insert((done, model.clone())) {
            return false;
        }
        for i in 0..self.history.len() {
            if done & (1 << i) != 0 || self.prec[i] & !done != 0 {
                continue;
            }
            let mut next = model.clone();
            if next.apply(&self.history[i].op) != self.history[i].ret {
                continue;
            }
            order.push(i);
            if self.dfs_full(done | (1 << i), &next, order) {
                return true;
            }
            order.pop();
        }
        false
    }

    /// DFS for a durable prefix: linearize include/flexible ops (real-time
    /// respecting, returns matching) until the model equals `target` with
    /// every must-include applied. Must-exclude ops are never applied, and
    /// prefix closure is structural (see module docs).
    fn dfs_prefix(
        &mut self,
        done: u128,
        model: &M,
        must_include: u128,
        excluded: u128,
        target: &M,
        order: &mut Vec<usize>,
    ) -> bool {
        if must_include & !done == 0 && model == target {
            return true;
        }
        if !self.memo.insert((done, model.clone())) {
            return false;
        }
        for i in 0..self.history.len() {
            let bit = 1u128 << i;
            if done & bit != 0 || excluded & bit != 0 || self.prec[i] & !done != 0 {
                continue;
            }
            let mut next = model.clone();
            if next.apply(&self.history[i].op) != self.history[i].ret {
                continue;
            }
            order.push(i);
            if self.dfs_prefix(done | bit, &next, must_include, excluded, target, order) {
                return true;
            }
            order.pop();
        }
        false
    }
}

/// Checks `history` for linearizability against `M::default()` as the
/// initial state. Returns a witness order (indices into `history`) or an
/// error naming the history size.
pub fn check_linearizable<M: Model>(
    history: &[OpRecord<M::Op, M::Ret>],
) -> Result<Vec<usize>, String> {
    let mut search = Search::<M>::new(history);
    let mut order = Vec::with_capacity(history.len());
    if search.dfs_full(0, &M::default(), &mut order) {
        Ok(order)
    } else {
        Err(format!(
            "history of {} ops is not linearizable",
            history.len()
        ))
    }
}

/// Checks that `target` (a recovered state) is a buffered-durably-
/// linearizable prefix of `history` under the given per-op classification.
/// Returns the witness prefix order or an error.
pub fn check_durable_prefix<M: Model>(
    history: &[OpRecord<M::Op, M::Ret>],
    durability: &[Durability],
    target: &M,
) -> Result<Vec<usize>, String> {
    assert_eq!(history.len(), durability.len());
    let mut must_include = 0u128;
    let mut excluded = 0u128;
    for (i, d) in durability.iter().enumerate() {
        match d {
            Durability::MustInclude => must_include |= 1 << i,
            Durability::MustExclude => excluded |= 1 << i,
            Durability::Flexible => {}
        }
    }
    let mut search = Search::<M>::new(history);
    let mut order = Vec::new();
    if search.dfs_prefix(0, &M::default(), must_include, excluded, target, &mut order) {
        Ok(order)
    } else {
        let (inc, exc) = (must_include.count_ones(), excluded.count_ones());
        Err(format!(
            "recovered state is not a durable prefix of the {}-op history \
             ({inc} must-include, {exc} must-exclude)",
            history.len()
        ))
    }
}

// ---- concrete sequential models ---------------------------------------------

/// Single-key register (map histories decompose per key: every map op
/// touches exactly one key, so the map linearizes iff each per-key
/// projection does).
#[derive(Clone, Debug, Default, PartialEq, Eq, Hash)]
pub struct Register {
    pub value: Option<u64>,
}

#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RegOp {
    Put(u64),
    Del,
    Get,
}

/// Returns of register ops: mutations report whether the key existed
/// (matching `MontageHashMap::put`/`remove`), reads report the value.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RegRet {
    Existed(bool),
    Value(Option<u64>),
}

impl Model for Register {
    type Op = RegOp;
    type Ret = RegRet;

    fn apply(&mut self, op: &RegOp) -> RegRet {
        match op {
            RegOp::Put(v) => RegRet::Existed(self.value.replace(*v).is_some()),
            RegOp::Del => RegRet::Existed(self.value.take().is_some()),
            RegOp::Get => RegRet::Value(self.value),
        }
    }
}

/// FIFO queue over `u64` values (values must be unique per history for the
/// check to be tight).
#[derive(Clone, Debug, Default, PartialEq, Eq, Hash)]
pub struct FifoQueue {
    pub items: std::collections::VecDeque<u64>,
}

#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum QueueOp {
    Enq(u64),
    Deq,
}

impl Model for FifoQueue {
    type Op = QueueOp;
    type Ret = Option<u64>;

    fn apply(&mut self, op: &QueueOp) -> Option<u64> {
        match op {
            QueueOp::Enq(v) => {
                self.items.push_back(*v);
                None
            }
            QueueOp::Deq => self.items.pop_front(),
        }
    }
}

/// A single named counter, as the detectable-operation wire tests see it:
/// `set` creates it at an explicit value, `incr` bumps it and returns the
/// new value. Blind retries of one request id collapse to **one** op in the
/// history — exactly-once semantics means the duplicates are not ops at
/// all, and feeding a retry-collapsed history through the checker is what
/// proves the dedupe worked (a double-applied incr makes the recovered
/// value unexplainable by any legal cut).
#[derive(Clone, Debug, Default, PartialEq, Eq, Hash)]
pub struct Counter {
    pub value: Option<u64>,
}

#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CtrOp {
    /// `set` to an explicit value (unconditional store).
    Create(u64),
    Incr,
    Get,
}

#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CtrRet {
    Stored,
    NotFound,
    Value(u64),
}

impl Model for Counter {
    type Op = CtrOp;
    type Ret = CtrRet;

    fn apply(&mut self, op: &CtrOp) -> CtrRet {
        match op {
            CtrOp::Create(v) => {
                self.value = Some(*v);
                CtrRet::Stored
            }
            CtrOp::Incr => match self.value {
                Some(v) => {
                    let nv = v.wrapping_add(1);
                    self.value = Some(nv);
                    CtrRet::Value(nv)
                }
                None => CtrRet::NotFound,
            },
            CtrOp::Get => match self.value {
                Some(v) => CtrRet::Value(v),
                None => CtrRet::NotFound,
            },
        }
    }
}

/// A whole ordered map as one model object — for histories whose `Scan`
/// ops make per-key decomposition unsound (see [`Register`]): a scan
/// observes *every* key at once, so its return constrains the interleaving
/// of ops on different keys and the checker must carry the full map state.
///
/// `Scan(lo, hi)` must return exactly the model's inclusive range at its
/// linearization point — the "consistent cut" requirement: a scan result
/// mixing key states from different instants is unexplainable by any
/// sequential interleaving and the check fails.
#[derive(Clone, Debug, Default, PartialEq, Eq, Hash)]
pub struct OrderedMap {
    pub entries: std::collections::BTreeMap<u64, u64>,
}

#[derive(Clone, Debug, PartialEq, Eq)]
pub enum MapOp {
    Put(u64, u64),
    Del(u64),
    Get(u64),
    /// Inclusive range scan.
    Scan(u64, u64),
}

#[derive(Clone, Debug, PartialEq, Eq)]
pub enum MapRet {
    Existed(bool),
    Value(Option<u64>),
    /// What the scan reported: the full `(key, value)` contents of the
    /// range, in key order.
    Snapshot(Vec<(u64, u64)>),
}

impl Model for OrderedMap {
    type Op = MapOp;
    type Ret = MapRet;

    fn apply(&mut self, op: &MapOp) -> MapRet {
        match op {
            MapOp::Put(k, v) => MapRet::Existed(self.entries.insert(*k, *v).is_some()),
            MapOp::Del(k) => MapRet::Existed(self.entries.remove(k).is_some()),
            MapOp::Get(k) => MapRet::Value(self.entries.get(k).copied()),
            MapOp::Scan(lo, hi) => {
                if lo > hi {
                    return MapRet::Snapshot(Vec::new());
                }
                MapRet::Snapshot(
                    self.entries
                        .range(*lo..=*hi)
                        .map(|(k, v)| (*k, *v))
                        .collect(),
                )
            }
        }
    }
}

/// Builder for hand-written and recorded histories: timestamps come from a
/// shared atomic counter so concurrent recorders can interleave safely.
pub struct Recorder<O, R> {
    clock: std::sync::Arc<montage::sync::uninstrumented::AtomicU64>,
    thread: usize,
    pub ops: Vec<OpRecord<O, R>>,
}

impl<O, R> Recorder<O, R> {
    pub fn shared_clock() -> std::sync::Arc<montage::sync::uninstrumented::AtomicU64> {
        std::sync::Arc::new(montage::sync::uninstrumented::AtomicU64::new(1))
    }

    pub fn new(
        clock: std::sync::Arc<montage::sync::uninstrumented::AtomicU64>,
        thread: usize,
    ) -> Self {
        Recorder {
            clock,
            thread,
            ops: Vec::new(),
        }
    }

    /// Runs `f`, recording invoke/response stamps around it and the epoch
    /// interval reported by `epoch()` (pass `|| 0` when untracked).
    pub fn record(&mut self, op: O, epoch: impl Fn() -> u64, f: impl FnOnce() -> R) {
        use montage::sync::uninstrumented::Ordering;
        let epoch_lo = epoch();
        let invoke = self.clock.fetch_add(1, Ordering::SeqCst);
        let ret = f();
        let response = self.clock.fetch_add(1, Ordering::SeqCst);
        let epoch_hi = epoch();
        self.ops.push(OpRecord {
            thread: self.thread,
            invoke,
            response,
            epoch_lo,
            epoch_hi,
            op,
            ret,
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec<O, R>(invoke: u64, response: u64, op: O, ret: R) -> OpRecord<O, R> {
        OpRecord {
            thread: 0,
            invoke,
            response,
            epoch_lo: 0,
            epoch_hi: 0,
            op,
            ret,
        }
    }

    #[test]
    fn sequential_register_history_linearizes() {
        let h = vec![
            rec(1, 2, RegOp::Put(10), RegRet::Existed(false)),
            rec(3, 4, RegOp::Get, RegRet::Value(Some(10))),
            rec(5, 6, RegOp::Del, RegRet::Existed(true)),
            rec(7, 8, RegOp::Get, RegRet::Value(None)),
        ];
        assert_eq!(
            check_linearizable::<Register>(&h).unwrap(),
            vec![0, 1, 2, 3]
        );
    }

    #[test]
    fn overlapping_ops_may_reorder() {
        // get overlaps the put and may see either None (before) or Some
        // (after); here it saw Some, so put linearizes first.
        let h = vec![
            rec(1, 10, RegOp::Put(7), RegRet::Existed(false)),
            rec(2, 9, RegOp::Get, RegRet::Value(Some(7))),
        ];
        assert_eq!(check_linearizable::<Register>(&h).unwrap(), vec![0, 1]);
    }

    #[test]
    fn stale_read_after_response_is_a_violation() {
        // put finished (response 2) strictly before get began (invoke 3),
        // yet get missed the value: not linearizable.
        let h = vec![
            rec(1, 2, RegOp::Put(7), RegRet::Existed(false)),
            rec(3, 4, RegOp::Get, RegRet::Value(None)),
        ];
        assert!(check_linearizable::<Register>(&h).is_err());
    }

    #[test]
    fn queue_fifo_violation_is_caught() {
        // Two sequential enqueues, then a dequeue that skips the head.
        let h = vec![
            rec(1, 2, QueueOp::Enq(1), None),
            rec(3, 4, QueueOp::Enq(2), None),
            rec(5, 6, QueueOp::Deq, Some(2)),
        ];
        assert!(check_linearizable::<FifoQueue>(&h).is_err());
        let ok = vec![
            rec(1, 2, QueueOp::Enq(1), None),
            rec(3, 4, QueueOp::Enq(2), None),
            rec(5, 6, QueueOp::Deq, Some(1)),
        ];
        assert!(check_linearizable::<FifoQueue>(&ok).is_ok());
    }

    #[test]
    fn concurrent_deqs_may_race_but_not_duplicate() {
        // Two overlapping dequeues of a 2-element queue: either order is
        // fine, but both returning the same element is not.
        let base = vec![
            rec(1, 2, QueueOp::Enq(1), None),
            rec(3, 4, QueueOp::Enq(2), None),
        ];
        let mut race = base.clone();
        race.push(rec(5, 8, QueueOp::Deq, Some(2)));
        race.push(rec(6, 7, QueueOp::Deq, Some(1)));
        assert!(check_linearizable::<FifoQueue>(&race).is_ok());
        let mut dup = base;
        dup.push(rec(5, 8, QueueOp::Deq, Some(1)));
        dup.push(rec(6, 7, QueueOp::Deq, Some(1)));
        assert!(check_linearizable::<FifoQueue>(&dup).is_err());
    }

    #[test]
    fn durable_prefix_accepts_epoch_cuts_only() {
        // Three sequential puts in epochs 4, 6, 8; cutoff 6 ⇒ the first two
        // must survive, the third must not.
        let mut h = vec![
            rec(1, 2, RegOp::Put(1), RegRet::Existed(false)),
            rec(3, 4, RegOp::Put(2), RegRet::Existed(true)),
            rec(5, 6, RegOp::Put(3), RegRet::Existed(true)),
        ];
        h[0].epoch_lo = 4;
        h[0].epoch_hi = 4;
        h[1].epoch_lo = 6;
        h[1].epoch_hi = 6;
        h[2].epoch_lo = 8;
        h[2].epoch_hi = 8;
        let d = classify_by_epoch(&h, 6);
        assert_eq!(
            d,
            vec![
                Durability::MustInclude,
                Durability::MustInclude,
                Durability::MustExclude
            ]
        );
        let good = Register { value: Some(2) };
        assert_eq!(check_durable_prefix(&h, &d, &good).unwrap(), vec![0, 1]);
        // Recovering value 3 would mean a must-exclude op took effect.
        let phantom = Register { value: Some(3) };
        assert!(check_durable_prefix(&h, &d, &phantom).is_err());
        // Recovering value 1 would mean a must-include op was lost.
        let lost = Register { value: Some(1) };
        assert!(check_durable_prefix(&h, &d, &lost).is_err());
    }

    #[test]
    fn durable_prefix_lets_straddlers_fall_either_way() {
        let mut h = vec![
            rec(1, 2, RegOp::Put(1), RegRet::Existed(false)),
            rec(3, 4, RegOp::Put(2), RegRet::Existed(true)),
        ];
        h[0].epoch_lo = 4;
        h[0].epoch_hi = 4;
        // Op 1 straddles the cutoff: epoch interval [4, 8] around cutoff 6.
        h[1].epoch_lo = 4;
        h[1].epoch_hi = 8;
        let d = classify_by_epoch(&h, 6);
        assert_eq!(d[1], Durability::Flexible);
        for target in [Register { value: Some(1) }, Register { value: Some(2) }] {
            assert!(
                check_durable_prefix(&h, &d, &target).is_ok(),
                "{target:?} should be a legal cut"
            );
        }
        assert!(check_durable_prefix(&h, &d, &Register { value: None }).is_err());
    }

    #[test]
    fn prefix_closure_is_enforced() {
        // Op 0 (must-exclude) finished before op 1 (must-include) began.
        // Including 1 without 0 would break prefix closure; the classifier
        // can produce this only from inconsistent epoch data, and the
        // checker must reject it rather than fabricate a cut.
        let h = vec![
            rec(1, 2, RegOp::Put(1), RegRet::Existed(false)),
            rec(3, 4, RegOp::Put(2), RegRet::Existed(true)),
        ];
        let d = vec![Durability::MustExclude, Durability::MustInclude];
        assert!(check_durable_prefix(&h, &d, &Register { value: Some(2) }).is_err());
    }

    #[test]
    fn scan_sees_a_consistent_cut() {
        // put(1), put(2) sequentially, then a scan: it must report both.
        let h = vec![
            rec(1, 2, MapOp::Put(1, 10), MapRet::Existed(false)),
            rec(3, 4, MapOp::Put(2, 20), MapRet::Existed(false)),
            rec(
                5,
                6,
                MapOp::Scan(0, 9),
                MapRet::Snapshot(vec![(1, 10), (2, 20)]),
            ),
        ];
        assert!(check_linearizable::<OrderedMap>(&h).is_ok());
        // A scan that missed key 1 while reporting the later key 2 is not a
        // cut of any interleaving.
        let torn = vec![
            rec(1, 2, MapOp::Put(1, 10), MapRet::Existed(false)),
            rec(3, 4, MapOp::Put(2, 20), MapRet::Existed(false)),
            rec(5, 6, MapOp::Scan(0, 9), MapRet::Snapshot(vec![(2, 20)])),
        ];
        assert!(check_linearizable::<OrderedMap>(&torn).is_err());
    }

    #[test]
    fn concurrent_scan_may_order_either_side_of_a_put() {
        // The scan overlaps put(2): reporting {1} (before) or {1,2} (after)
        // are both legal; reporting {2} alone is not (put(1) preceded it).
        let base = |snap: Vec<(u64, u64)>| {
            vec![
                rec(1, 2, MapOp::Put(1, 10), MapRet::Existed(false)),
                rec(3, 8, MapOp::Put(2, 20), MapRet::Existed(false)),
                rec(4, 7, MapOp::Scan(0, 9), MapRet::Snapshot(snap)),
            ]
        };
        assert!(check_linearizable::<OrderedMap>(&base(vec![(1, 10)])).is_ok());
        assert!(check_linearizable::<OrderedMap>(&base(vec![(1, 10), (2, 20)])).is_ok());
        assert!(check_linearizable::<OrderedMap>(&base(vec![(2, 20)])).is_err());
    }

    #[test]
    fn scan_value_must_match_its_instant() {
        // Scan ran strictly after the overwrite finished: seeing the old
        // value is a stale (non-linearizable) snapshot.
        let h = vec![
            rec(1, 2, MapOp::Put(1, 10), MapRet::Existed(false)),
            rec(3, 4, MapOp::Put(1, 11), MapRet::Existed(true)),
            rec(5, 6, MapOp::Scan(0, 9), MapRet::Snapshot(vec![(1, 10)])),
        ];
        assert!(check_linearizable::<OrderedMap>(&h).is_err());
    }

    #[test]
    fn scan_range_bounds_are_inclusive_in_the_model() {
        let mut m = OrderedMap::default();
        m.apply(&MapOp::Put(3, 30));
        m.apply(&MapOp::Put(5, 50));
        m.apply(&MapOp::Put(7, 70));
        assert_eq!(
            m.apply(&MapOp::Scan(3, 7)),
            MapRet::Snapshot(vec![(3, 30), (5, 50), (7, 70)])
        );
        assert_eq!(m.apply(&MapOp::Scan(4, 4)), MapRet::Snapshot(vec![]));
        assert_eq!(m.apply(&MapOp::Scan(9, 1)), MapRet::Snapshot(vec![]));
    }

    #[test]
    fn durable_cut_with_scans_checks_full_map_state() {
        // put(1) durable, put(2) lost past the cutoff; recovering {1,2}
        // (phantom) or {} (lost) both fail, {1} passes.
        let mut h = vec![
            rec(1, 2, MapOp::Put(1, 10), MapRet::Existed(false)),
            rec(3, 4, MapOp::Put(2, 20), MapRet::Existed(false)),
        ];
        h[0].epoch_lo = 4;
        h[0].epoch_hi = 4;
        h[1].epoch_lo = 8;
        h[1].epoch_hi = 8;
        let d = classify_by_epoch(&h, 6);
        let good = OrderedMap {
            entries: [(1, 10)].into_iter().collect(),
        };
        assert!(check_durable_prefix(&h, &d, &good).is_ok());
        let phantom = OrderedMap {
            entries: [(1, 10), (2, 20)].into_iter().collect(),
        };
        assert!(check_durable_prefix(&h, &d, &phantom).is_err());
        assert!(check_durable_prefix(&h, &d, &OrderedMap::default()).is_err());
    }

    #[test]
    fn recorder_stamps_are_ordered() {
        let clock = Recorder::<RegOp, RegRet>::shared_clock();
        let mut r = Recorder::new(clock, 0);
        r.record(RegOp::Put(1), || 5, || RegRet::Existed(false));
        r.record(RegOp::Get, || 5, || RegRet::Value(Some(1)));
        assert!(r.ops[0].invoke < r.ops[0].response);
        assert!(r.ops[0].response < r.ops[1].invoke);
        assert_eq!(r.ops[0].epoch_lo, 5);
        assert!(check_linearizable::<Register>(&r.ops).is_ok());
    }
}
