//! # montage-suite — facade crate
//!
//! Re-exports the whole Montage reproduction stack so examples and
//! integration tests can use a single dependency. See the individual crates
//! for documentation:
//!
//! * [`pmem`] — simulated persistent memory (Optane substitute)
//! * [`ralloc`] — persistent allocator
//! * [`montage`] — the buffered-persistence epoch system (the paper's core)
//! * [`montage_ds`] — hashmap / queue / graph built on Montage
//! * [`baselines`] — competitor systems from the paper's evaluation
//! * [`kvstore`] — memcached-like store for the Sec. 6.2 validation
//! * [`kvserver`] — networked memcached-text-protocol front-end over it
//! * [`workloads`] — YCSB and graph workload generators

pub mod history;

pub use baselines;
pub use kvserver;
pub use kvstore;
pub use montage;
pub use montage_ds;
pub use pmem;
pub use ralloc;
pub use workloads;
