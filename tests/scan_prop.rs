//! Property-based range-scan correctness: random put / remove / scan
//! scripts replayed against a `BTreeMap` model.
//!
//! Two layers (same shape as `session_recovery_prop.rs`):
//!
//! 1. **Live, all three item backends** — the identical script runs on a
//!    DRAM, an NVM (Ralloc) and a Montage-backed [`KvStore`]; after every
//!    step each scan's reply must equal the model's `range(lo..=hi)`
//!    (truncated to the requested limit). Scans are pure reads, so the
//!    backends may not diverge from the model or from each other.
//! 2. **Montage × sampled crash points** — the script runs on a
//!    single-shard Montage store under `crash_sweep`; at each sampled cut
//!    the recovered store's full-range scan must equal the model after
//!    **some prefix** of the script (buffered durable linearizability,
//!    observed through the scan path instead of point reads).
//!
//! Keys use `make_key`'s decimal padding, so *byte-wise* ordering — what
//! the scan contract promises — differs from numeric ordering ("10" < "2");
//! the model is keyed by the padded `Key` to pin exactly that contract.

use std::collections::BTreeMap;

use kvstore::{make_key, Key, KvBackend, KvStore, ShardedKvStore};
use montage::{EpochSys, EsysConfig, RecoveryError};
use pmem::{PmemConfig, PmemPool};
use pmem_chaos::{crash_sweep, SweepConfig};
use proptest::prelude::*;
use ralloc::Ralloc;

const KEYS: u64 = 30;
const STRIPES: usize = 4;
const CAP: usize = 4096; // far above KEYS: the LRU must never evict mid-test

fn esys_cfg() -> EsysConfig {
    EsysConfig {
        max_threads: 2,
        ..Default::default()
    }
}

/// One step of the workload. `limit == 0` means "no limit".
#[derive(Clone, Copy, Debug)]
enum SOp {
    Put(u64, u64),
    Del(u64),
    Scan { lo: u64, hi: u64, limit: u8 },
    Sync,
}

fn sop_strategy() -> impl Strategy<Value = SOp> {
    prop_oneof![
        4 => (0..KEYS, any::<u64>()).prop_map(|(k, v)| SOp::Put(k, v)),
        2 => (0..KEYS).prop_map(SOp::Del),
        3 => (0..KEYS, 0..KEYS, any::<u8>())
            .prop_map(|(lo, hi, limit)| SOp::Scan { lo, hi, limit: limit % 8 }),
        1 => Just(SOp::Sync),
    ]
}

/// What the model says a scan must return.
fn model_scan(
    model: &BTreeMap<Key, Vec<u8>>,
    lo: &Key,
    hi: &Key,
    limit: usize,
) -> Vec<(Key, Vec<u8>)> {
    if lo > hi || limit == 0 {
        return Vec::new();
    }
    model
        .range(*lo..=*hi)
        .take(limit)
        .map(|(k, v)| (*k, v.clone()))
        .collect()
}

/// Layer 1: one script, three backends, every scan checked against the
/// model at its exact instant. Panics on divergence (the proptest harness
/// reports the failing script).
fn check_live_backends(script: &[SOp]) {
    let nvm_pool = PmemPool::new(PmemConfig::strict_for_test(16 << 20));
    let montage_esys = EpochSys::format(
        PmemPool::new(PmemConfig::strict_for_test(16 << 20)),
        esys_cfg(),
    );
    let backends = [
        ("dram", KvBackend::Dram),
        ("nvm", KvBackend::Nvm(Ralloc::format(nvm_pool))),
        ("montage", KvBackend::Montage(montage_esys)),
    ];
    for (name, backend) in backends {
        let kv = KvStore::new(backend, STRIPES, CAP);
        let tid = kv.register_thread();
        let mut model: BTreeMap<Key, Vec<u8>> = BTreeMap::new();
        for (step, op) in script.iter().enumerate() {
            match *op {
                SOp::Put(k, v) => {
                    kv.set(tid, make_key(k), &v.to_le_bytes());
                    model.insert(make_key(k), v.to_le_bytes().to_vec());
                }
                SOp::Del(k) => {
                    let existed = kv.delete(tid, &make_key(k));
                    let modeled = model.remove(&make_key(k)).is_some();
                    assert_eq!(
                        existed, modeled,
                        "{name} step {step}: delete disagrees with model"
                    );
                }
                SOp::Scan { lo, hi, limit } => {
                    let limit = if limit == 0 {
                        usize::MAX
                    } else {
                        limit as usize
                    };
                    let (lo, hi) = (make_key(lo), make_key(hi));
                    let got = kv.scan(&lo, &hi, limit);
                    let want = model_scan(&model, &lo, &hi, limit);
                    assert_eq!(
                        got, want,
                        "{name} step {step}: scan diverged from the BTreeMap model"
                    );
                }
                SOp::Sync => {
                    if let Some(esys) = kv.esys() {
                        esys.sync();
                    }
                }
            }
        }
        // Terminal full-range sweep: the whole map, in byte order.
        let got = kv.scan(&[0u8; 32], &[0xFFu8; 32], usize::MAX);
        let want = model_scan(&model, &[0u8; 32], &[0xFFu8; 32], usize::MAX);
        assert_eq!(got, want, "{name}: terminal full-range scan diverged");
    }
}

/// Replays the script on a single-shard Montage store over the caller's
/// chaos-armed pool. Ops degrade to errors once the plan trips.
fn run_script(pool: &PmemPool, script: &[SOp]) {
    let store = ShardedKvStore::format_pools(vec![pool.clone()], esys_cfg(), STRIPES, CAP);
    let lease = store.lease();
    for op in script {
        match *op {
            SOp::Put(k, v) => {
                let _ = store.set(&lease, make_key(k), &v.to_le_bytes());
            }
            SOp::Del(k) => {
                let _ = store.delete(&lease, &make_key(k));
            }
            SOp::Scan { lo, hi, limit } => {
                // Scans are pure reads: they may not disturb the durable
                // image, whatever the crash plan does around them.
                let limit = if limit == 0 {
                    usize::MAX
                } else {
                    limit as usize
                };
                let _ = store.scan(&make_key(lo), &make_key(hi), limit);
            }
            SOp::Sync => {
                let _ = store.sync_shard(0);
            }
        }
    }
    let _ = store.sync_shard(0);
}

/// Layer 2 verifier: the recovered store's full-range scan equals the model
/// after some prefix of the script.
fn verify_cut(pool: PmemPool, crash_at: u64, script: &[SOp]) -> Result<(), String> {
    let (store, report) = ShardedKvStore::recover(vec![pool], esys_cfg(), STRIPES, CAP, 1);
    let sr = &report.shards[0];
    if let Some(err) = &sr.fatal {
        return if matches!(err, RecoveryError::UnformattedPool) {
            Ok(()) // crashed before the pool header landed: empty prefix
        } else {
            Err(format!("crash_at={crash_at}: fatal recovery error: {err}"))
        };
    }
    if sr.quarantined != 0 {
        return Err(format!(
            "crash_at={crash_at}: clean crash quarantined {} payloads",
            sr.quarantined
        ));
    }

    let recovered = store.scan(&[0u8; 32], &[0xFFu8; 32], usize::MAX);
    let mut model: BTreeMap<Key, Vec<u8>> = BTreeMap::new();
    let as_scan =
        |m: &BTreeMap<Key, Vec<u8>>| m.iter().map(|(k, v)| (*k, v.clone())).collect::<Vec<_>>();
    if recovered == as_scan(&model) {
        return Ok(());
    }
    for op in script {
        match *op {
            SOp::Put(k, v) => {
                model.insert(make_key(k), v.to_le_bytes().to_vec());
            }
            SOp::Del(k) => {
                model.remove(&make_key(k));
            }
            SOp::Scan { .. } | SOp::Sync => {}
        }
        if recovered == as_scan(&model) {
            return Ok(());
        }
    }
    Err(format!(
        "crash_at={crash_at}: recovered scan matches no prefix of the history: \
         {} entries",
        recovered.len()
    ))
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 8, .. ProptestConfig::default() })]

    /// Random put/remove/scan scripts: live equivalence with the `BTreeMap`
    /// model on all three backends, then sampled crash points on the
    /// Montage-backed store where the recovered *scan* must read as a
    /// consistent prefix. Bounded (8 scripts × ~12 points) for CI; the
    /// exhaustive sweeps in `crash_sweep.rs` cover depth.
    #[test]
    fn scans_match_the_model_live_and_across_crash_cuts(
        script in proptest::collection::vec(sop_strategy(), 12..40),
        seed in any::<u64>(),
    ) {
        check_live_backends(&script);

        let cfg = SweepConfig { exhaustive_limit: 0, samples: 12, seed };
        let report = crash_sweep(
            &cfg,
            PmemConfig::strict_for_test(8 << 20),
            |pool| run_script(pool, &script),
            |durable, crash_at| verify_cut(durable, crash_at, &script),
        );
        prop_assert!(
            report.total_events > 0 && !report.crash_points.is_empty(),
            "sweep exercised nothing: {} events", report.total_events
        );
        prop_assert!(report.is_ok(), "{:?}", report.failures);
    }
}
