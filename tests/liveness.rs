//! Liveness properties (paper Sec. 4.3, upgraded to nbMontage-style
//! nonblocking advance): Montage is lock-free during crash-free operation,
//! and with helper-completed write-backs a stalled thread no longer delays
//! the *persistence frontier* either — epoch advances, peers' operations,
//! and peers' `sync` all complete while the victim is stuck. What a live
//! straggler pins is *reclamation* (its epoch's retirements stay deferred),
//! covered by the unit tests in `montage::esys`.

use std::collections::hash_map::DefaultHasher;
use std::hash::{Hash, Hasher};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use montage::{EpochSys, EsysConfig};
use montage_ds::{tags, MontageHashMap};
use pmem::{ChaosConfig, PmemConfig, PmemPool};

/// A short grace window so bypass (not quiescence) is the path under test.
fn esys_cfg() -> EsysConfig {
    EsysConfig {
        advance_grace_spins: 64,
        ..Default::default()
    }
}

fn sys_with(cfg: PmemConfig) -> Arc<EpochSys> {
    EpochSys::format(PmemPool::new(cfg), esys_cfg())
}

fn sys() -> Arc<EpochSys> {
    sys_with(PmemConfig::strict_for_test(32 << 20))
}

/// Mirrors `MontageHashMap::index` (DefaultHasher is deterministic), so the
/// stall tests can steer peer keys away from the victim's locked bucket.
fn bucket_of(key: &[u8; 32], nbuckets: usize) -> usize {
    let mut h = DefaultHasher::new();
    key.hash(&mut h);
    (h.finish() as usize) % nbuckets
}

#[test]
fn stalled_op_does_not_block_advance_or_other_ops() {
    let s = sys();
    let t_stall = s.register_thread();
    let t_work = s.register_thread();

    let e0 = s.curr_epoch();
    // A stalled operation in the current epoch.
    let stalled_guard = s.begin_op(t_stall);

    // Every advance completes despite the in-flight op: once the grace
    // window expires the straggler is bypassed (whoever advances helps its
    // buffered lines out and fences without it).
    for _ in 0..4 {
        s.advance_epoch();
    }
    assert!(
        s.curr_epoch() >= e0 + 4,
        "advance must not wait for the straggler"
    );

    // Meanwhile other threads keep doing operations (lock freedom).
    {
        let g = s.begin_op(t_work);
        let h = s.pnew(&g, 0, &1u64);
        let _ = s.set(&g, h, |v| *v = 2).unwrap();
    }

    drop(stalled_guard);
    s.advance_epoch();
    assert!(s.curr_epoch() >= e0 + 5);
}

#[test]
fn sync_completes_while_a_straggler_is_live() {
    let s = sys();
    let t_stall = s.register_thread();
    let stalled_guard = s.begin_op(t_stall);

    // `sync` from another thread completes *while* the straggler is still
    // holding its operation open: the advance bypasses it after the grace
    // window instead of rendezvousing with it.
    let s2 = s.clone();
    let syncer = std::thread::spawn(move || s2.sync());
    let deadline = Instant::now() + Duration::from_secs(30);
    while !syncer.is_finished() {
        assert!(
            Instant::now() < deadline,
            "sync blocked behind a live straggler"
        );
        std::thread::yield_now();
    }
    syncer.join().unwrap();

    // The straggler itself finishes normally afterwards.
    drop(stalled_guard);
    s.sync();
}

/// The headline adversarial schedule: a victim thread is parked *mid-put*
/// by the pmem stall fault plan — holding its bucket lock and an open
/// operation, with buffered lines not yet written back — and 8 peers must
/// still complete bounded batches of puts and `sync`s. On release the
/// victim's operation completes and its value is durable.
#[test]
fn parked_victim_mid_op_does_not_block_peer_syncs() {
    const NBUCKETS: usize = 64;
    const PEERS: usize = 8;
    const SYNCS_PER_PEER: usize = 4;

    let mut vk = [0u8; 32];
    vk[0] = 0xAA;

    let setup = |chaos: ChaosConfig| {
        let mut cfg = PmemConfig::strict_for_test(32 << 20);
        cfg.chaos = chaos;
        let s = sys_with(cfg);
        let map = Arc::new(MontageHashMap::<[u8; 32]>::new(
            s.clone(),
            tags::HASHMAP,
            NBUCKETS,
        ));
        (s, map)
    };

    // Counting pass: identical single-threaded setup charges identical
    // persistence events, so the victim put's event span can be measured
    // once and replayed — the stall lands mid-operation by construction.
    let (e_setup, e_put) = {
        let (s, map) = setup(ChaosConfig {
            crash_at_event: Some(u64::MAX),
            ..Default::default()
        });
        let tid = s.register_thread();
        let e_setup = s.pool().persistence_events();
        map.put(tid, vk, b"victim-value");
        (e_setup, s.pool().persistence_events())
    };
    assert!(e_put > e_setup, "a put must charge persistence events");
    let stall_at = e_setup + (e_put - e_setup).div_ceil(2);

    // Live pass: park the victim inside its put.
    let (s, map) = setup(ChaosConfig {
        stall_at_event: Some(stall_at),
        ..Default::default()
    });
    let victim = {
        let (s, map) = (s.clone(), map.clone());
        std::thread::spawn(move || {
            let tid = s.register_thread();
            map.put(tid, vk, b"victim-value")
        })
    };
    assert!(
        s.pool().await_stalled(Duration::from_secs(30)),
        "victim never parked (stall point {stall_at} missed?)"
    );

    let vb = bucket_of(&vk, NBUCKETS);
    let done = Arc::new(AtomicU64::new(0));
    let mut peers = vec![];
    for p in 0..PEERS {
        let (s, map, done) = (s.clone(), map.clone(), done.clone());
        peers.push(std::thread::spawn(move || {
            let tid = s.register_thread();
            for i in 0..SYNCS_PER_PEER {
                let mut k = [0u8; 32];
                k[0] = p as u8 + 1;
                k[1] = i as u8;
                while bucket_of(&k, NBUCKETS) == vb {
                    k[2] += 1; // steer clear of the victim's locked bucket
                }
                map.put(tid, k, b"peer-value");
                s.sync();
                done.fetch_add(1, Ordering::Relaxed);
            }
        }));
    }

    // Bounded completion: every peer sync finishes within the deadline
    // while the victim stays parked the whole time.
    let target = (PEERS * SYNCS_PER_PEER) as u64;
    let deadline = Instant::now() + Duration::from_secs(60);
    while done.load(Ordering::Relaxed) < target {
        assert!(
            Instant::now() < deadline,
            "peer syncs blocked by the parked victim ({}/{} done)",
            done.load(Ordering::Relaxed),
            target
        );
        assert_eq!(s.pool().stalled_count(), 1, "victim unparked prematurely");
        std::thread::sleep(Duration::from_millis(2));
    }
    for h in peers {
        h.join().unwrap();
    }
    assert_eq!(s.pool().stalled_count(), 1, "victim must still be parked");

    // Release: the victim's operation completes and becomes durable.
    s.pool().release_stalled();
    assert!(
        !victim.join().unwrap(),
        "victim's put completes (as a fresh insert) after release"
    );
    s.sync();
    let t_check = s.register_thread();
    assert_eq!(
        map.get_owned(t_check, &vk).as_deref(),
        Some(b"victim-value".as_slice())
    );
}

#[test]
fn begin_op_retry_implies_epoch_progress() {
    // Hammer begin_op from several threads while the clock advances rapidly;
    // the announce/validate loop must never livelock.
    let s = sys();
    let stop = Arc::new(AtomicBool::new(false));
    let total = Arc::new(AtomicU64::new(0));
    let mut handles = vec![];
    for _ in 0..3 {
        let s = s.clone();
        let stop = stop.clone();
        let total = total.clone();
        handles.push(std::thread::spawn(move || {
            let tid = s.register_thread();
            while !stop.load(Ordering::Relaxed) {
                let g = s.begin_op(tid);
                drop(g);
                total.fetch_add(1, Ordering::Relaxed);
            }
        }));
    }
    // Keep advancing until the workers demonstrably make progress (bounded
    // by a generous deadline rather than a fixed advance count, so a busy
    // single-core box can't fail this spuriously).
    let deadline = Instant::now() + Duration::from_secs(30);
    while total.load(Ordering::Relaxed) < 100 {
        assert!(Instant::now() < deadline, "no progress under epoch churn");
        s.advance_epoch();
        std::thread::yield_now();
    }
    stop.store(true, Ordering::Relaxed);
    for h in handles {
        h.join().unwrap();
    }
    assert!(total.load(Ordering::Relaxed) >= 100);
}

#[test]
fn reads_never_block_on_epoch_machinery() {
    let s = sys();
    let map = MontageHashMap::<[u8; 32]>::new(s.clone(), tags::HASHMAP, 16);
    let t0 = s.register_thread();
    let mut k = [0u8; 32];
    k[0] = 9;
    map.put(t0, k, b"val");

    // Reader proceeds while another op is stalled mid-epoch.
    let t_stall = s.register_thread();
    let guard = s.begin_op(t_stall);
    let t_read = s.register_thread();
    for _ in 0..100 {
        assert!(map.get(t_read, &k, |_| ()).is_some());
    }
    drop(guard);
}
