//! Liveness properties (paper Sec. 4.3): Montage is lock-free during
//! crash-free operation, but a stalled thread delays the *persistence
//! frontier* (epoch advance) — it must never block other threads' progress.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use montage::{EpochSys, EsysConfig};
use montage_ds::{tags, MontageHashMap};
use pmem::{PmemConfig, PmemPool};

fn sys() -> Arc<EpochSys> {
    EpochSys::format(
        PmemPool::new(PmemConfig::strict_for_test(32 << 20)),
        EsysConfig::default(),
    )
}

#[test]
fn stalled_op_blocks_advance_but_not_other_ops() {
    let s = sys();
    let t_stall = s.register_thread();
    let t_work = s.register_thread();

    let e0 = s.curr_epoch();
    // A stalled operation in the current epoch.
    let stalled_guard = s.begin_op(t_stall);

    // One advance succeeds (it waits only on epoch e0-1, which is empty).
    s.advance_epoch();
    assert_eq!(s.curr_epoch(), e0 + 1);

    // A second advance would wait for e0's quiescence — it must block while
    // the stalled op lives. Run it in a helper thread.
    let advanced = Arc::new(AtomicBool::new(false));
    let s2 = s.clone();
    let advanced2 = advanced.clone();
    let advancer = std::thread::spawn(move || {
        s2.advance_epoch();
        advanced2.store(true, Ordering::SeqCst);
    });

    std::thread::sleep(Duration::from_millis(50));
    assert!(
        !advanced.load(Ordering::SeqCst),
        "advance must wait for the straggler"
    );

    // Meanwhile other threads keep doing operations (lock freedom).
    let ops_done = AtomicU64::new(0);
    {
        let g = s.begin_op(t_work);
        let h = s.pnew(&g, 0, &1u64);
        let _ = s.set(&g, h, |v| *v = 2).unwrap();
        ops_done.fetch_add(1, Ordering::SeqCst);
    }
    assert_eq!(
        ops_done.load(Ordering::SeqCst),
        1,
        "ops proceed during the stall"
    );

    // Release the straggler; the frontier moves again.
    drop(stalled_guard);
    advancer.join().unwrap();
    assert!(advanced.load(Ordering::SeqCst));
    assert_eq!(s.curr_epoch(), e0 + 2);
}

#[test]
fn sync_completes_once_stragglers_finish() {
    let s = sys();
    let t_stall = s.register_thread();
    let stalled_guard = s.begin_op(t_stall);

    let s2 = s.clone();
    let syncer = std::thread::spawn(move || {
        let start = Instant::now();
        s2.sync();
        start.elapsed()
    });
    std::thread::sleep(Duration::from_millis(40));
    drop(stalled_guard); // release
    let waited = syncer.join().unwrap();
    assert!(
        waited >= Duration::from_millis(20),
        "sync should have been delayed by the straggler"
    );
}

#[test]
fn begin_op_retry_implies_epoch_progress() {
    // Hammer begin_op from several threads while the clock advances rapidly;
    // the announce/validate loop must never livelock.
    let s = sys();
    let stop = Arc::new(AtomicBool::new(false));
    let total = Arc::new(AtomicU64::new(0));
    let mut handles = vec![];
    for _ in 0..3 {
        let s = s.clone();
        let stop = stop.clone();
        let total = total.clone();
        handles.push(std::thread::spawn(move || {
            let tid = s.register_thread();
            while !stop.load(Ordering::Relaxed) {
                let g = s.begin_op(tid);
                drop(g);
                total.fetch_add(1, Ordering::Relaxed);
            }
        }));
    }
    // Keep advancing until the workers demonstrably make progress (bounded
    // by a generous deadline rather than a fixed advance count, so a busy
    // single-core box can't fail this spuriously).
    let deadline = Instant::now() + Duration::from_secs(30);
    while total.load(Ordering::Relaxed) < 100 {
        assert!(Instant::now() < deadline, "no progress under epoch churn");
        s.advance_epoch();
        std::thread::yield_now();
    }
    stop.store(true, Ordering::Relaxed);
    for h in handles {
        h.join().unwrap();
    }
    assert!(total.load(Ordering::Relaxed) >= 100);
}

#[test]
fn reads_never_block_on_epoch_machinery() {
    let s = sys();
    let map = MontageHashMap::<[u8; 32]>::new(s.clone(), tags::HASHMAP, 16);
    let t0 = s.register_thread();
    let mut k = [0u8; 32];
    k[0] = 9;
    map.put(t0, k, b"val");

    // Reader proceeds while another op is stalled mid-epoch.
    let t_stall = s.register_thread();
    let guard = s.begin_op(t_stall);
    let t_read = s.register_thread();
    for _ in 0..100 {
        assert!(map.get(t_read, &k, |_| ()).is_some());
    }
    drop(guard);
}
