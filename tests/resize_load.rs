//! The online-resize acceptance run, at integration level: 8 concurrent
//! writers drive a deliberately tiny `MontageHashMap` through multiple full
//! resizes while readers race the level migrations, then the synced image
//! is crashed and recovered — with the requirement that not a single op
//! fails, not a single key is lost live, and every key survives recovery.
//!
//! (The unit-level twin lives in `crates/montage-ds/src/hashmap.rs`; this
//! test adds the concurrent readers, a scan-bearing sorted list sharing the
//! same epoch system, and the full crash/recover round trip.)

use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;

use montage::{EpochSys, EsysConfig};
use montage_ds::{MontageHashMap, MontageSortedList};
use pmem::{PmemConfig, PmemPool};

type Key = [u8; 32];

const MTAG: u16 = 3;
const WRITERS: usize = 8;
const KEYS_PER_WRITER: u64 = 250;
const NBUCKETS: usize = 8;
const MAX_LOAD: usize = 2;

fn key(w: usize, i: u64) -> Key {
    let mut k = [0u8; 32];
    k[..8].copy_from_slice(&((w as u64) << 32 | i).to_le_bytes());
    k
}

/// Acceptance: ≥2 completed online resizes under 8 writers, zero failed or
/// lost ops, readers never observing a missing previously-written key, and
/// the whole key set durable across a crash of the synced image.
#[test]
fn eight_writers_resize_twice_with_readers_and_recovery() {
    let pool = PmemPool::new(PmemConfig::strict_for_test(64 << 20));
    let esys = EpochSys::format(pool, EsysConfig::default());
    let map = Arc::new(MontageHashMap::<Key>::with_max_load(
        esys.clone(),
        MTAG,
        NBUCKETS,
        MAX_LOAD,
    ));
    let list = Arc::new(MontageSortedList::<u64>::new(
        esys.clone(),
        montage_ds::tags::SORTED_LIST,
    ));

    let stop = Arc::new(AtomicBool::new(false));
    // Writer w bumps this to i+1 once key(w, i) is written: readers use it
    // as the watermark below which every key must be visible.
    let progress: Arc<Vec<AtomicUsize>> =
        Arc::new((0..WRITERS).map(|_| AtomicUsize::new(0)).collect());

    std::thread::scope(|s| {
        for w in 0..WRITERS {
            let esys = esys.clone();
            let map = map.clone();
            let list = list.clone();
            let progress = progress.clone();
            s.spawn(move || {
                let tid = esys.register_thread();
                for i in 0..KEYS_PER_WRITER {
                    let existed = map.put(tid, key(w, i), &i.to_le_bytes());
                    assert!(!existed, "writer {w} key {i}: distinct key existed");
                    // The sorted list shares the epoch system: scans and
                    // resizes ride the same clock.
                    list.put(tid, (w as u64) << 32 | i, &i.to_le_bytes());
                    progress[w].store(i as usize + 1, Ordering::Release);
                }
                esys.unregister_thread(tid);
            });
        }
        for r in 0..4 {
            let esys = esys.clone();
            let map = map.clone();
            let list = list.clone();
            let progress = progress.clone();
            let stop = stop.clone();
            s.spawn(move || {
                let tid = esys.register_thread();
                let mut probes = 0u64;
                while !stop.load(Ordering::Relaxed) {
                    let w = (r + probes as usize) % WRITERS;
                    let seen = progress[w].load(Ordering::Acquire);
                    if seen > 0 {
                        // Any key below the watermark must be visible, mid-
                        // migration or not.
                        let i = probes % seen as u64;
                        let got = map.get_owned(tid, &key(w, i));
                        assert_eq!(
                            got.as_deref(),
                            Some(&i.to_le_bytes()[..]),
                            "reader lost key (w {w}, i {i}) during a resize"
                        );
                        // And the list's consistent scan must hold at least
                        // the watermarked prefix of w's contiguous keys.
                        let lo = (w as u64) << 32;
                        let snap = list.range(tid, &lo, &(lo + seen as u64 - 1));
                        assert!(
                            snap.len() >= seen,
                            "scan under resize lost keys: {} < {seen}",
                            snap.len()
                        );
                        assert!(
                            snap.windows(2).all(|p| p[0].0 < p[1].0),
                            "scan under resize out of order"
                        );
                    }
                    probes += 1;
                }
                esys.unregister_thread(tid);
                probes
            });
        }
        // Scoped writers finish first; then release the readers.
        // (Readers check `stop` each probe; writers set progress last.)
        // The writer handles are joined implicitly by scope exit, so flip
        // `stop` from a watcher thread once all progress is complete.
        let progress = progress.clone();
        let stop = stop.clone();
        s.spawn(move || {
            while progress
                .iter()
                .any(|p| p.load(Ordering::Acquire) < KEYS_PER_WRITER as usize)
            {
                std::thread::yield_now();
            }
            stop.store(true, Ordering::Relaxed);
        });
    });

    // ≥2 completed online resizes (8 buckets × load 2: 2000 keys force the
    // table through 16, 32, … — many more than two in practice).
    let tid = esys.register_thread();
    map.finish_resize(tid);
    assert!(
        map.resizes_completed() >= 2,
        "only {} resizes completed under load",
        map.resizes_completed()
    );
    assert_eq!(map.len(), WRITERS * KEYS_PER_WRITER as usize);
    assert_eq!(list.len(), WRITERS * KEYS_PER_WRITER as usize);

    // Zero lost ops, live.
    for w in 0..WRITERS {
        for i in 0..KEYS_PER_WRITER {
            assert_eq!(
                map.get_owned(tid, &key(w, i)).as_deref(),
                Some(&i.to_le_bytes()[..]),
                "key (w {w}, i {i}) lost after the run"
            );
        }
    }

    // And durable: sync, crash, recover — the full key set survives with
    // the grown geometry rolled forward.
    esys.sync();
    let rec = montage::try_recover(esys.pool().crash(), EsysConfig::default(), 1)
        .expect("recovery after clean sync");
    assert!(rec.report.quarantined.is_empty());
    let rmap = MontageHashMap::<Key>::recover(rec.esys.clone(), MTAG, NBUCKETS, &rec);
    let rlist =
        MontageSortedList::<u64>::recover(rec.esys.clone(), montage_ds::tags::SORTED_LIST, &rec);
    assert!(!rmap.resizing());
    assert!(
        rmap.capacity() > NBUCKETS,
        "recovery dropped the grown geometry"
    );
    assert_eq!(rmap.len(), WRITERS * KEYS_PER_WRITER as usize);
    let rtid = rec.esys.register_thread();
    for w in 0..WRITERS {
        for i in 0..KEYS_PER_WRITER {
            assert_eq!(
                rmap.get_owned(rtid, &key(w, i)).as_deref(),
                Some(&i.to_le_bytes()[..]),
                "key (w {w}, i {i}) lost across recovery"
            );
        }
    }
    let snap = rlist.range(rtid, &0, &u64::MAX);
    assert_eq!(snap.len(), WRITERS * KEYS_PER_WRITER as usize);
    assert!(snap.windows(2).all(|p| p[0].0 < p[1].0));
}
