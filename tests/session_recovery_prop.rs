//! Property-based acceptance test for session-table recovery (the
//! "detectable operations" subsystem): random interleavings of detected
//! mutations across several sessions × sampled crash points.
//!
//! The invariant under test is the exactly-once foundation: at *any* crash
//! cut, each session is either
//!
//!   * completed-with-result — its durable descriptor `(rid, kind, result)`
//!     and the payload state that rid produced are both present and agree, or
//!   * never-happened — neither the descriptor nor the payload survived.
//!
//! A descriptor without its payload (a reply we could replay for a mutation
//! that never landed) or a payload without its descriptor (a mutation a
//! blind retry would re-apply) is half-applied and fails the test. Both are
//! written under one `begin_op`, so one epoch window covers them both.

use kvstore::{DetectedWrite, ShardedKvStore};
use montage::{EsysConfig, RecoveryError};
use pmem::{PmemConfig, PmemPool};
use pmem_chaos::{crash_sweep, SweepConfig};
use proptest::prelude::*;

const N_SESSIONS: u64 = 3;
const STRIPES: usize = 4;
const CAP: usize = 1024;
const UPSERT_KIND: u8 = 1;
const DELETE_KIND: u8 = 4;

fn esys_cfg() -> EsysConfig {
    EsysConfig {
        max_threads: 2,
        ..Default::default()
    }
}

/// One step of the workload. Request ids are not part of the script: the
/// rid of a mutation is its 1-based position within its session, assigned
/// identically by the runner and the verifier.
#[derive(Clone, Copy, Debug)]
enum POp {
    /// A detected mutation for session `sid`; `delete` picks the op kind.
    Mutate { sid: u64, delete: bool },
    /// A durability barrier, so crash points also land on synced prefixes.
    Sync,
}

fn pop_strategy() -> impl Strategy<Value = POp> {
    prop_oneof![
        5 => (0..N_SESSIONS, any::<bool>())
            .prop_map(|(sid, delete)| POp::Mutate { sid, delete }),
        1 => Just(POp::Sync),
    ]
}

fn session_key(sid: u64) -> kvstore::Key {
    kvstore::make_key(5000 + sid)
}

/// Replays the script on a fresh store over the caller's chaos-armed pool.
/// Once the plan trips, ops degrade to errors; that is fine — the sweep
/// verifies the durable image, not the in-DRAM replies.
fn run_script(pool: &PmemPool, script: &[POp]) {
    let store = ShardedKvStore::format_pools(vec![pool.clone()], esys_cfg(), STRIPES, CAP);
    let lease = store.lease();
    let mut next_rid = [0u64; N_SESSIONS as usize];
    for op in script {
        match *op {
            POp::Mutate { sid, delete } => {
                next_rid[sid as usize] += 1;
                let rid = next_rid[sid as usize];
                let (kind, write) = if delete {
                    (DELETE_KIND, DetectedWrite::Delete)
                } else {
                    (
                        UPSERT_KIND,
                        DetectedWrite::Upsert(rid.to_le_bytes().to_vec()),
                    )
                };
                let _ = store.detected(&lease, sid, rid, kind, &session_key(sid), |_cur| {
                    (write, rid.to_le_bytes().to_vec())
                });
            }
            POp::Sync => {
                let _ = store.sync_shard(0);
            }
        }
    }
    let _ = store.sync_shard(0);
}

/// Per-session kinds in script order: `kinds[sid][rid - 1]` is the op kind
/// the rid-th mutation of `sid` must have recorded.
fn kinds_by_session(script: &[POp]) -> Vec<Vec<u8>> {
    let mut kinds = vec![Vec::new(); N_SESSIONS as usize];
    for op in script {
        if let POp::Mutate { sid, delete } = *op {
            kinds[sid as usize].push(if delete { DELETE_KIND } else { UPSERT_KIND });
        }
    }
    kinds
}

fn verify_cut(pool: PmemPool, crash_at: u64, script: &[POp]) -> Result<(), String> {
    let (store, report) = ShardedKvStore::recover(vec![pool], esys_cfg(), STRIPES, CAP, 1);
    let sr = &report.shards[0];
    if let Some(err) = &sr.fatal {
        return if matches!(err, RecoveryError::UnformattedPool) {
            Ok(()) // crashed before the pool header landed: never-happened
        } else {
            Err(format!("crash_at={crash_at}: fatal recovery error: {err}"))
        };
    }
    if sr.quarantined != 0 {
        return Err(format!(
            "crash_at={crash_at}: clean crash quarantined {} payloads",
            sr.quarantined
        ));
    }

    let kinds = kinds_by_session(script);
    let mut descriptors = 0u64;
    for sid in 0..N_SESSIONS {
        let desc = store.shard_session_descriptor(0, sid);
        let value = store.get(&session_key(sid), |b| {
            let mut w = [0u8; 8];
            w.copy_from_slice(&b[..8]);
            u64::from_le_bytes(w)
        });
        match (&desc, value) {
            (None, None) => {} // never-happened: legal at any cut
            (None, Some(v)) => {
                return Err(format!(
                    "crash_at={crash_at}: session {sid} payload {v} survived without \
                     its descriptor — a blind retry would re-apply it"
                ));
            }
            (Some((rid, kind, result)), value) => {
                descriptors += 1;
                let issued = kinds[sid as usize].len() as u64;
                if *rid == 0 || *rid > issued {
                    return Err(format!(
                        "crash_at={crash_at}: session {sid} descriptor rid {rid} \
                         out of range (issued {issued})"
                    ));
                }
                let want_kind = kinds[sid as usize][*rid as usize - 1];
                if *kind != want_kind {
                    return Err(format!(
                        "crash_at={crash_at}: session {sid} rid {rid} recorded kind \
                         {kind}, script says {want_kind}"
                    ));
                }
                if *result != rid.to_le_bytes().to_vec() {
                    return Err(format!(
                        "crash_at={crash_at}: session {sid} rid {rid} result bytes \
                         {result:?} do not match the reply the client was sent"
                    ));
                }
                let want_value = if want_kind == UPSERT_KIND {
                    Some(*rid)
                } else {
                    None
                };
                if value != want_value {
                    return Err(format!(
                        "crash_at={crash_at}: session {sid} half-applied: descriptor \
                         says rid {rid} kind {kind}, payload is {value:?} \
                         (want {want_value:?})"
                    ));
                }
            }
        }
    }

    // The stats the server reports must be computed from the same recovered
    // table the verifier just walked.
    let stats = store.detect_stats_merged();
    if stats.descriptors != descriptors {
        return Err(format!(
            "crash_at={crash_at}: detect_stats reports {} descriptors, \
             recovery shows {descriptors}",
            stats.descriptors
        ));
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 8, .. ProptestConfig::default() })]

    /// Random detected-op interleavings × sampled crash points: every
    /// session must recover completed-with-result or never-happened,
    /// never half-applied. Bounded (8 scripts × ~12 points) for CI; the
    /// exhaustive wire sweep in `blind_retry_wire.rs` covers depth.
    #[test]
    fn sessions_recover_whole_or_not_at_all(
        script in proptest::collection::vec(pop_strategy(), 8..28),
        seed in any::<u64>(),
    ) {
        let cfg = SweepConfig { exhaustive_limit: 0, samples: 12, seed };
        let report = crash_sweep(
            &cfg,
            PmemConfig::strict_for_test(4 << 20),
            |pool| run_script(pool, &script),
            |durable, crash_at| verify_cut(durable, crash_at, &script),
        );
        prop_assert!(
            report.total_events > 0 && !report.crash_points.is_empty(),
            "sweep exercised nothing: {} events", report.total_events
        );
        prop_assert!(report.is_ok(), "{:?}", report.failures);
    }
}
