//! Wire-level robustness: the server knobs that keep one bad client — or
//! one straggling shard — from degrading everyone else.
//!
//! * **Slow-loris reap** (`idle_timeout`): a connection that *starts* a
//!   frame must finish it within the deadline. Trickling a byte at a time
//!   resets the byte-level `read_timeout` forever, so the frame — not the
//!   byte — carries this clock.
//! * **Session cap** (`max_sessions` + the `session close` verb): each
//!   attached durable session holds one slot; attaches beyond the cap are
//!   shed with `SERVER_ERROR too many sessions`, and both `session close`
//!   and disconnect return the slot.
//! * **Fence deadline** (`fence_deadline`): when one shard's group fence
//!   cannot certify durability in time, the commit proceeds without the
//!   straggler's ops — their acks are withheld and the connection severed
//!   with `SERVER_ERROR timeout` — while connections on healthy shards
//!   commit normally.
//! * **`session close` under crash sweep**: the verb is pure connection
//!   state (it never touches the durable descriptor table), so a workload
//!   that detaches and re-attaches mid-stream must keep the exactly-once
//!   arithmetic at every crash point.

use std::io::ErrorKind;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use kvserver::{KvServer, ServerConfig, WireClient};
use kvstore::{KvBackend, KvStore, ShardedKvStore};
use montage::{EpochSys, EsysConfig, RecoveryError};
use pmem::{ChaosConfig, PmemConfig, PmemPool};
use pmem_chaos::{crash_sweep, SweepConfig};

const NBUCKETS: usize = 8;
const CAPACITY: usize = 100_000;

fn dram_store() -> Arc<KvStore> {
    Arc::new(KvStore::new(KvBackend::Dram, NBUCKETS, CAPACITY))
}

fn esys_cfg() -> EsysConfig {
    EsysConfig {
        // one server worker + recovery + headroom
        max_threads: 4,
        ..Default::default()
    }
}

// ---- slow-loris reap --------------------------------------------------------

#[test]
fn partial_frame_is_reaped_after_idle_timeout() {
    let h = KvServer::start(
        ServerConfig {
            workers: 1,
            idle_timeout: Duration::from_millis(200),
            // Far above the test horizon: if the victim dies, it died of
            // the frame deadline, not byte-level idleness.
            read_timeout: Duration::from_secs(60),
            ..Default::default()
        },
        dram_store(),
    )
    .expect("bind");

    // A healthy client with *no* partial frame survives a gap longer than
    // idle_timeout (only read_timeout applies between requests).
    let mut healthy = WireClient::connect(h.addr()).expect("connect");
    std::thread::sleep(Duration::from_millis(400));
    healthy.stats().expect("idle gap between requests is fine");

    // The slow loris: one byte of a command line every 50 ms. Each byte
    // resets last_activity, but the frame never completes — the server
    // must cut it ~idle_timeout after the fragment appeared.
    let mut loris = WireClient::connect(h.addr()).expect("connect");
    loris
        .set_read_timeout(Some(Duration::from_millis(50)))
        .expect("read timeout");
    let start = Instant::now();
    let mut buf = [0u8; 64];
    let died = loop {
        if start.elapsed() > Duration::from_secs(10) {
            break false;
        }
        if loris.send_raw(b"s").is_err() {
            break true;
        }
        // A severed connection surfaces as EOF (Ok(0)) or a reset error; a
        // read timeout means the fragment is still pending — keep dripping.
        match loris.read_some(&mut buf) {
            Ok(0) => break true,
            Ok(_) => break false, // the server must not answer a fragment
            Err(e) if matches!(e.kind(), ErrorKind::WouldBlock | ErrorKind::TimedOut) => {}
            Err(_) => break true,
        }
    };
    assert!(died, "slow-loris connection was never reaped");
    assert!(
        start.elapsed() >= Duration::from_millis(150),
        "reaped before the idle_timeout could have elapsed"
    );

    // The reap was surgical: the healthy connection still works.
    healthy
        .stats()
        .expect("healthy connection survived the reap");
    h.shutdown();
}

// ---- session cap + close ----------------------------------------------------

fn stat_value(stats: &[(String, u64)], name: &str) -> u64 {
    stats
        .iter()
        .find(|(k, _)| k == name)
        .map(|(_, v)| *v)
        .unwrap_or_else(|| panic!("stat {name} missing"))
}

#[test]
fn session_cap_sheds_and_close_releases_slots() {
    let h = KvServer::start(
        ServerConfig {
            workers: 1,
            max_sessions: 2,
            ..Default::default()
        },
        dram_store(),
    )
    .expect("bind");

    let mut c1 = WireClient::connect(h.addr()).expect("connect");
    let mut c2 = WireClient::connect(h.addr()).expect("connect");
    c1.session(1).expect("first attach");
    c2.session(2).expect("second attach");

    // Third attach is shed with an explicit error, then the connection
    // closes (shedding, like the connection cap, is terminal).
    let mut c3 = WireClient::connect(h.addr()).expect("connect");
    let err = c3.session(3).expect_err("attach beyond the cap must shed");
    assert!(
        err.to_string().contains("too many sessions"),
        "unexpected shed reply: {err}"
    );
    let mut buf = [0u8; 16];
    assert!(
        matches!(c3.read_some(&mut buf), Ok(0) | Err(_)),
        "shed connection must be closed"
    );

    // Re-attaching rides the already-held slot — no leak, no double count.
    c1.session(11).expect("re-attach on a held slot");
    assert_eq!(stat_value(&c1.stats().unwrap(), "curr_sessions"), 2);

    // `session close` frees a slot for the next attach...
    c1.session_close().expect("close");
    assert_eq!(stat_value(&c1.stats().unwrap(), "curr_sessions"), 1);
    let mut c4 = WireClient::connect(h.addr()).expect("connect");
    c4.session(4).expect("slot freed by close");

    // ...and so does plain disconnect.
    drop(c2);
    let deadline = Instant::now() + Duration::from_secs(10);
    loop {
        if stat_value(&c4.stats().unwrap(), "curr_sessions") == 1 {
            break;
        }
        assert!(
            Instant::now() < deadline,
            "disconnect never released its session slot"
        );
        std::thread::sleep(Duration::from_millis(10));
    }
    let mut c5 = WireClient::connect(h.addr()).expect("connect");
    c5.session(5).expect("slot freed by disconnect");
    h.shutdown();
}

// ---- fence deadline ---------------------------------------------------------

/// One shard wears a straggler fault plan (every persistence event sleeps),
/// the other is healthy. A mutation routed to the healthy shard group-commits
/// and acks normally; one routed to the straggler blows the fence deadline —
/// its ack is withheld and the connection is severed with
/// `SERVER_ERROR timeout`.
#[test]
fn straggling_shard_fence_times_out_and_severs_only_its_connections() {
    let slow_pool = PmemPool::new(PmemConfig {
        chaos: ChaosConfig {
            straggler_permille: 1000,
            straggler_delay_us: 20_000,
            ..Default::default()
        },
        ..PmemConfig::strict_for_test(16 << 20)
    });
    let fast_pool = PmemPool::new(PmemConfig::strict_for_test(16 << 20));
    let mk = |pool: PmemPool| {
        Arc::new(KvStore::new(
            KvBackend::Montage(EpochSys::format(pool, esys_cfg())),
            NBUCKETS,
            CAPACITY,
        ))
    };
    // Shard 0 straggles, shard 1 is healthy.
    let store = ShardedKvStore::from_shards(vec![mk(slow_pool), mk(fast_pool)]);

    // Steer one key to each shard.
    let key_on = |shard: usize| {
        (0..)
            .map(|i| format!("k{i}"))
            .find(|k| store.shard_of_bytes(k.as_bytes()) == Some(shard))
            .unwrap()
    };
    let (slow_key, fast_key) = (key_on(0), key_on(1));

    let h = KvServer::start_sharded(
        ServerConfig {
            workers: 1,
            sync_every: Some(1),
            // Well under one straggler-delayed advance (every clwb/fence
            // on shard 0 sleeps 20 ms), comfortably above a healthy fence.
            fence_deadline: Some(Duration::from_millis(40)),
            ..Default::default()
        },
        store,
    )
    .expect("bind");

    // Healthy shard: the group fence makes the deadline and the ack flows.
    let mut fast = WireClient::connect(h.addr()).expect("connect");
    assert_eq!(fast.set(&fast_key, 0, b"v").expect("healthy set"), "STORED");

    // Straggling shard: the STORED ack must be withheld — the client reads
    // the timeout error instead, then EOF.
    let mut slow = WireClient::connect(h.addr()).expect("connect");
    let reply = slow.set(&slow_key, 0, b"v").expect("reply line");
    assert_eq!(reply, "SERVER_ERROR timeout");
    let mut buf = [0u8; 16];
    assert!(
        matches!(slow.read_some(&mut buf), Ok(0) | Err(_)),
        "timed-out connection must be severed"
    );

    // The degradation is observable and contained: the fence timeout is
    // counted, and the healthy shard's connection still serves.
    let stats = fast.stats().expect("stats");
    assert!(
        stat_value(&stats, "gc_fence_timeouts") >= 1,
        "fence timeout not counted"
    );
    assert_eq!(
        fast.get(&fast_key).expect("healthy get").map(|(_, v)| v),
        Some(b"v".to_vec())
    );
    h.crash(); // skip the final sync — it would wait out the straggler
}

// ---- session close under crash sweep ---------------------------------------

/// Durable session id; `rid=1` seeds the counter, `rid=2..=RIDS` increment.
const SID: u64 = 9;
const RIDS: u64 = 8;
/// The workload detaches and re-attaches after this rid.
const CLOSE_AFTER: u64 = 4;

/// Drives the counter workload with a `session close` + re-attach in the
/// middle, publishing the last rid whose ack was read.
fn drive(c: &mut WireClient, acked: &AtomicU64) {
    if c.session(SID).is_err() {
        return;
    }
    match c.set_rid("ctr", 0, b"0", 1) {
        Ok(ref l) if l == "STORED" => acked.store(1, Ordering::SeqCst),
        _ => return,
    }
    for rid in 2..=RIDS {
        match c.arith(true, "ctr", 1, Some(rid)) {
            Ok(ref l) if *l == (rid - 1).to_string() => acked.store(rid, Ordering::SeqCst),
            _ => return,
        }
        if rid == CLOSE_AFTER {
            // Detach and immediately re-attach the same identity: pure
            // connection state, invisible to the descriptor table.
            if c.session_close().is_err() || c.session(SID).is_err() {
                return;
            }
        }
    }
}

fn run_workload(pool: &PmemPool, acked: &AtomicU64) {
    acked.store(0, Ordering::SeqCst);
    let esys = EpochSys::format(pool.clone(), esys_cfg());
    let store = Arc::new(KvStore::new(KvBackend::Montage(esys), NBUCKETS, CAPACITY));
    let h = KvServer::start(
        ServerConfig {
            workers: 1,
            sync_every: Some(1),
            ..Default::default()
        },
        store,
    )
    .expect("bind");
    if let Ok(mut c) = WireClient::connect(h.addr()) {
        drive(&mut c, acked);
    }
    h.crash();
}

fn verify(durable: PmemPool, crash_at: u64, acked: &AtomicU64) -> Result<(), String> {
    let rec = match montage::try_recover(durable, esys_cfg(), 2) {
        Err(RecoveryError::UnformattedPool) => return Ok(()), // pre-format crash
        Err(e) => return Err(format!("crash_at={crash_at}: recovery failed: {e}")),
        Ok(rec) => rec,
    };
    if !rec.report.quarantined.is_empty() {
        return Err(format!(
            "crash_at={crash_at}: clean crash quarantined payloads: {:?}",
            rec.report.quarantined
        ));
    }
    let kv = Arc::new(KvStore::recover(rec.esys.clone(), NBUCKETS, CAPACITY, &rec));
    let h = KvServer::start(ServerConfig::default(), kv)
        .map_err(|e| format!("crash_at={crash_at}: rebind failed: {e}"))?;
    let mut c = WireClient::connect(h.addr())
        .map_err(|e| format!("crash_at={crash_at}: reconnect failed: {e}"))?;
    c.session(SID)
        .map_err(|e| format!("crash_at={crash_at}: re-attach failed: {e}"))?;

    // Blind retry from the first unacked rid: a mid-workload detach must
    // not change the exactly-once arithmetic one bit.
    let a = acked.load(Ordering::SeqCst);
    for rid in (a + 1)..=RIDS {
        if rid == 1 {
            let l = c
                .set_rid("ctr", 0, b"0", 1)
                .map_err(|e| format!("crash_at={crash_at}: retry rid=1 failed: {e}"))?;
            if l != "STORED" {
                return Err(format!("crash_at={crash_at}: retry rid=1 replied {l:?}"));
            }
        } else {
            let l = c
                .arith(true, "ctr", 1, Some(rid))
                .map_err(|e| format!("crash_at={crash_at}: retry rid={rid} failed: {e}"))?;
            let want = (rid - 1).to_string();
            if l != want {
                return Err(format!(
                    "crash_at={crash_at}: retry rid={rid} replied {l:?}, want {want:?} \
                     (acked={a}) — session close perturbed the dedupe"
                ));
            }
        }
    }
    let (_, data) = c
        .get("ctr")
        .map_err(|e| format!("crash_at={crash_at}: final get failed: {e}"))?
        .ok_or_else(|| format!("crash_at={crash_at}: counter missing"))?;
    let want = (RIDS - 1).to_string();
    if data != want.as_bytes() {
        return Err(format!(
            "crash_at={crash_at}: final counter {:?}, want {want:?} (acked={a})",
            String::from_utf8_lossy(&data)
        ));
    }
    h.shutdown();
    Ok(())
}

#[test]
fn session_close_is_crash_transparent_at_every_crash_point() {
    let acked = Arc::new(AtomicU64::new(0));
    let cfg = SweepConfig {
        // A server + client per point; sample the interior.
        exhaustive_limit: 256,
        samples: 48,
        seed: 0x5E55C105,
    };
    let (wl_acked, vf_acked) = (Arc::clone(&acked), Arc::clone(&acked));
    let report = crash_sweep(
        &cfg,
        PmemConfig::strict_for_test(16 << 20),
        move |pool| run_workload(pool, &wl_acked),
        move |durable, crash_at| verify(durable, crash_at, &vf_acked),
    );
    assert!(
        report.total_events >= 50,
        "workload too small to cover the session window: {} events",
        report.total_events
    );
    assert!(
        report.is_ok(),
        "{} of {} crash points broke exactly-once around session close: {:?}",
        report.failures.len(),
        report.crash_points.len(),
        report.failures
    );
}
