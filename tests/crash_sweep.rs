//! The acceptance tests for deterministic crash-point fault injection:
//!
//! 1. An exhaustive crash sweep over a mixed Montage hashmap + queue
//!    workload (several hundred persistence events): at *every* event
//!    boundary, recovery must yield exactly the abstract state after some
//!    prefix of the operation history — buffered durable linearizability,
//!    checked at machine granularity rather than at hand-picked moments.
//! 2. A deliberately corrupted pool: `montage::try_recover` must quarantine
//!    the corrupt payload into the `RecoveryReport` and carry on, never
//!    panic — and the quarantined block must stay dead across a second
//!    crash.
//! 3. A torn pending header (the `torn_line_permille` chaos knob): the
//!    header checksum must catch the tear and recovery must quarantine it.
//! 4. Property-based: random op sequences × sampled crash points.
//! 5. A *stall* sweep: at every persistence event of a single-threaded
//!    hashmap workload, park that thread mid-instruction, require a peer's
//!    puts + `sync`s to complete anyway (nonblocking advance), then cut the
//!    power with the victim still parked and require (a) the victim's ops
//!    recover as a consistent prefix and (b) nothing the peer synced is
//!    lost — the helpers' write-backs on the victim's behalf must never
//!    corrupt, and the bypassing fence must still cover acked work.
//! 6. A *mid-resize* sweep: a tiny-table workload that drives the hashmap
//!    through three full online resizes, crashed exhaustively at every
//!    persistence event — which by construction includes every resize
//!    descriptor install, every per-bucket migration mark, and every level
//!    retirement. Recovery must land on the state after some prefix of the
//!    op history (per key: exactly the pre- or the post-migration view,
//!    never a torn mix within one bucket), must never resurrect an
//!    in-flight resize, and the recovered map must remain fully usable.

use std::collections::{HashMap, VecDeque};

use montage::payload::MAGIC_LIVE;
use montage::{EpochSys, EsysConfig, RecoveryError};
use montage_ds::{MontageHashMap, MontageQueue};
use pmem::{PmemConfig, PmemPool};
use pmem_chaos::{crash_sweep, SweepConfig};
use proptest::prelude::*;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

type Key = [u8; 32];

const QTAG: u16 = 2;
const MTAG: u16 = 3;
const NBUCKETS: usize = 8;
const KEY_SPACE: u64 = 8;

fn key(i: u64) -> Key {
    let mut k = [0u8; 32];
    k[..8].copy_from_slice(&i.to_le_bytes());
    k
}

fn small_esys_cfg() -> EsysConfig {
    EsysConfig {
        max_threads: 2,
        ..Default::default()
    }
}

/// One step of the mixed workload. `Sync` is a durability barrier, not a
/// state change, so the model ignores it.
#[derive(Clone, Copy, Debug)]
enum Op {
    Enq(u64),
    Deq,
    Put(u64, u64),
    Remove(u64),
    Sync,
}

fn mixed_script(seed: u64, len: usize) -> Vec<Op> {
    let mut rng = SmallRng::seed_from_u64(seed);
    (0..len)
        .map(|i| match rng.gen_range(0u64..10) {
            0..=2 => Op::Enq(i as u64),
            3 => Op::Deq,
            4..=6 => Op::Put(rng.gen_range(0..KEY_SPACE), i as u64),
            7 => Op::Remove(rng.gen_range(0..KEY_SPACE)),
            _ => Op::Sync,
        })
        .collect()
}

/// Runs the script on a fresh Montage system over `pool`, using the checked
/// operations so a tripping fault plan degrades instead of panicking.
fn run_mixed(pool: &PmemPool, script: &[Op]) {
    let esys = EpochSys::format(pool.clone(), small_esys_cfg());
    let tid = esys.register_thread();
    let q = MontageQueue::new(esys.clone(), QTAG);
    let m = MontageHashMap::<Key>::new(esys.clone(), MTAG, NBUCKETS);
    for op in script {
        match *op {
            Op::Enq(v) => {
                let _ = q.try_enqueue(tid, &v.to_le_bytes());
            }
            Op::Deq => {
                let _ = q.try_dequeue(tid);
            }
            Op::Put(k, v) => {
                let _ = m.try_put(tid, key(k), &v.to_le_bytes());
            }
            Op::Remove(k) => {
                let _ = m.try_remove(tid, &key(k));
            }
            Op::Sync => {
                let _ = esys.try_sync();
            }
        }
    }
}

/// Abstract state of the pair of structures.
#[derive(Clone, Debug, Default, PartialEq)]
struct Model {
    queue: VecDeque<Vec<u8>>,
    map: HashMap<u64, Vec<u8>>,
}

impl Model {
    fn apply(&mut self, op: Op) {
        match op {
            Op::Enq(v) => self.queue.push_back(v.to_le_bytes().to_vec()),
            Op::Deq => {
                self.queue.pop_front();
            }
            Op::Put(k, v) => {
                self.map.insert(k, v.to_le_bytes().to_vec());
            }
            Op::Remove(k) => {
                self.map.remove(&k);
            }
            Op::Sync => {}
        }
    }
}

/// Recovers both structures from `durable` and checks the state equals the
/// model after **some** prefix of `script`. `Err(reason)` otherwise.
fn verify_mixed_prefix(durable: PmemPool, crash_at: u64, script: &[Op]) -> Result<(), String> {
    let rec = match montage::try_recover(durable, small_esys_cfg(), 1) {
        // A crash before the pool header became durable recovers to the
        // empty pre-history state — the trivial prefix.
        Err(RecoveryError::UnformattedPool) => return Ok(()),
        Err(e) => return Err(format!("crash_at={crash_at}: recovery failed: {e}")),
        Ok(rec) => rec,
    };
    if !rec.report.quarantined.is_empty() {
        return Err(format!(
            "crash_at={crash_at}: clean crash quarantined payloads: {:?}",
            rec.report.quarantined
        ));
    }
    let q = MontageQueue::recover(rec.esys.clone(), QTAG, &rec);
    let m = MontageHashMap::<Key>::recover(rec.esys.clone(), MTAG, NBUCKETS, &rec);
    let tid = rec.esys.register_thread();

    let mut recovered = Model::default();
    while let Some(v) = q.dequeue(tid) {
        recovered.queue.push_back(v);
    }
    for k in 0..KEY_SPACE {
        if let Some(v) = m.get_owned(tid, &key(k)) {
            recovered.map.insert(k, v);
        }
    }

    // Compare against every prefix of the history.
    let mut model = Model::default();
    if recovered == model {
        return Ok(());
    }
    for (i, &op) in script.iter().enumerate() {
        model.apply(op);
        if recovered == model {
            return Ok(());
        }
        let _ = i;
    }
    Err(format!(
        "crash_at={crash_at}: recovered state matches no prefix of the history: {recovered:?}"
    ))
}

/// Acceptance criterion: an exhaustive sweep over a ≥200-persistence-event
/// mixed workload passes the consistent-prefix check at every crash point.
#[test]
fn montage_mixed_workload_is_prefix_consistent_at_every_crash_point() {
    let script = mixed_script(0xC0FFEE, 56);
    let cfg = SweepConfig {
        exhaustive_limit: 4096, // force exhaustiveness even if the workload grows
        samples: 64,
        seed: 0xD15EA5E,
    };
    let report = crash_sweep(
        &cfg,
        PmemConfig::strict_for_test(8 << 20),
        |pool| run_mixed(pool, &script),
        |durable, crash_at| verify_mixed_prefix(durable, crash_at, &script),
    );
    assert!(
        report.total_events >= 200,
        "workload too small for a meaningful sweep: {} events",
        report.total_events
    );
    assert_eq!(
        report.crash_points.len() as u64,
        report.total_events + 1,
        "sweep must be exhaustive"
    );
    report.assert_ok();
}

/// Builds a synced pool holding `n` queue payloads and returns it crashed
/// (durable image only) along with the payload block offsets.
fn synced_payload_pool(n: u64, chaos_torn: bool, seed: u64) -> (PmemPool, Vec<pmem::POff>) {
    let mut cfg = PmemConfig::strict_for_test(8 << 20);
    if chaos_torn {
        cfg.chaos.torn_line_permille = 1000;
        cfg.chaos.seed = seed;
    }
    let pool = PmemPool::new(cfg);
    let esys = EpochSys::format(pool.clone(), small_esys_cfg());
    let tid = esys.register_thread();
    let mut blks = Vec::new();
    for i in 0..n {
        let g = esys.begin_op(tid);
        let h = esys.pnew_bytes(&g, QTAG, &i.to_le_bytes());
        blks.push(h.raw());
        drop(g);
    }
    esys.sync();
    (pool, blks)
}

/// Acceptance criterion: `try_recover` on a deliberately corrupted pool
/// returns a `RecoveryReport` with the corrupt payload quarantined instead
/// of panicking — and the quarantined block stays dead after another crash.
#[test]
fn corrupted_header_is_quarantined_not_fatal() {
    let (pool, blks) = synced_payload_pool(6, false, 0);
    let victim = blks[2];
    // Corrupt the victim's header *durably*: invalid kind byte, which also
    // invalidates the header checksum.
    // SAFETY: in-bounds header byte of a payload this test created; the
    // test is single-threaded.
    unsafe { pool.write::<u8>(victim.add(4), &0xFF) };
    pool.persist_range(victim, 8);

    let rec = montage::try_recover(pool.crash(), small_esys_cfg(), 1)
        .expect("recovery must degrade, not fail");
    assert_eq!(
        rec.report.quarantined.len(),
        1,
        "exactly the corrupted payload is quarantined: {:?}",
        rec.report.quarantined
    );
    assert_eq!(rec.report.quarantined[0].blk, victim);
    assert!(matches!(
        rec.report.quarantined[0].reason,
        RecoveryError::CorruptHeader { .. }
    ));
    assert_eq!(rec.report.survivors, 5, "the other payloads survive");
    assert_eq!(
        rec.esys.pool().stats().snapshot().quarantined_payloads,
        1,
        "quarantine is visible in the pool statistics"
    );

    // Crash again without touching anything: the tombstoned block must not
    // resurrect, and nothing else gets quarantined.
    let rec2 = montage::try_recover(rec.esys.pool().crash(), small_esys_cfg(), 1)
        .expect("second recovery");
    assert_eq!(rec2.report.survivors, 5);
    assert!(rec2.report.quarantined.is_empty());
}

/// A payload whose epoch field claims to be old enough to survive, but whose
/// header line was still pending (clwb'd, unfenced) when the power died and
/// got *torn* by `torn_line_permille`: the checksum catches the mixed-word
/// header and recovery quarantines it rather than resurrecting it.
#[test]
fn torn_pending_header_is_quarantined() {
    let mut quarantined_seen = 0;
    for seed in 0..8u64 {
        let (pool, blks) = synced_payload_pool(4, true, seed);
        let victim = blks[1];
        // Rewrite the victim's header in the working image with *different*
        // field values (new tag, new uid, garbage checksum) but a
        // still-plausible epoch, then clwb WITHOUT a fence: the line is
        // pending at crash time, so the chaos config tears it — a strict
        // 1..=7-word prefix of the new line lands on the old durable words.
        // SAFETY: all seven writes land inside the victim's 32-byte header,
        // which this single-threaded test owns.
        unsafe {
            pool.write::<u32>(victim, &MAGIC_LIVE);
            pool.write::<u8>(victim.add(4), &1u8); // kind: Alloc
            pool.write::<u16>(victim.add(6), &0x7777u16); // different tag
            pool.write::<u64>(victim.add(8), &2u64); // plausible old epoch
            pool.write::<u64>(victim.add(16), &0xABCD_EF01u64); // different uid
            pool.write::<u32>(victim.add(24), &8u32);
            pool.write::<u32>(victim.add(28), &0xBAD_C0DE_u32); // bogus checksum
        }
        // lint: allow(flush-no-fence): the fence is deliberately omitted so the line is pending at crash time and gets torn
        pool.clwb(victim);

        let rec = montage::try_recover(pool.crash(), small_esys_cfg(), 1)
            .expect("torn header must degrade recovery, not kill it");
        assert!(
            pool.stats().snapshot().torn_lines >= 1,
            "seed {seed}: the pending header line must have been torn"
        );
        // Whatever prefix the tear kept, the mixed header can never checksum
        // clean (old suffix with new prefix, or the bogus checksum itself):
        // the victim must be quarantined, never a survivor.
        let resurrected = rec
            .shards
            .iter()
            .flatten()
            .any(|it| it.blk == victim && it.tag == 0x7777);
        assert!(!resurrected, "seed {seed}: torn header resurrected");
        if rec.report.quarantined.iter().any(|qp| qp.blk == victim) {
            quarantined_seen += 1;
        }
    }
    assert!(
        quarantined_seen > 0,
        "no seed produced a quarantined torn header"
    );
}

// ---- stall-point sweep: liveness + crash cuts during helping ----------------

/// Mirrors `MontageHashMap::index` (DefaultHasher is deterministic), so the
/// stall sweep can pick peer keys that avoid every bucket the parked victim
/// might be holding locked.
fn bucket_of(k: &Key) -> usize {
    use std::hash::{Hash, Hasher};
    let mut h = std::collections::hash_map::DefaultHasher::new();
    k.hash(&mut h);
    (h.finish() as usize) % NBUCKETS
}

const STALL_VICTIM_PUTS: u64 = 6;
const STALL_PEER_PUTS: u64 = 3;

fn stall_victim_key(i: u64) -> Key {
    key(1000 + i)
}

/// Peer keys: the first `STALL_PEER_PUTS` candidates whose bucket collides
/// with no victim key's bucket (the victim parks holding one of those locks).
fn stall_peer_keys() -> Vec<Key> {
    let victim_buckets: std::collections::HashSet<usize> = (0..STALL_VICTIM_PUTS)
        .map(|i| bucket_of(&stall_victim_key(i)))
        .collect();
    (0..)
        .map(|j| key(2000 + j))
        .filter(|k| !victim_buckets.contains(&bucket_of(k)))
        .take(STALL_PEER_PUTS as usize)
        .collect()
}

/// Acceptance criterion for the nonblocking advance: at *every* persistence
/// event of the victim's workload, parking it there must neither block a
/// peer's puts and syncs (liveness) nor corrupt the durable image cut while
/// helpers have written back the victim's lines (consistency). Peer-synced
/// data additionally must survive the cut outright — the bypassing epoch
/// fence acked it.
#[test]
fn montage_workload_is_consistent_and_live_at_every_stall_point() {
    use std::sync::atomic::{AtomicU64, Ordering};
    use std::sync::{Arc, Mutex};
    use std::time::Duration;

    type Shared = (Arc<EpochSys>, Arc<MontageHashMap<Key>>);
    // Victim → peer handoff. The victim clears the slot *before* its first
    // persistence event, so a park during `format` leaves `None` and the
    // peer (correctly) skips montage work for that point.
    let slot: Mutex<Option<Shared>> = Mutex::new(None);
    let peer_synced = AtomicU64::new(0);
    let peer_keys = stall_peer_keys();

    let report = pmem_chaos::stall_sweep(
        &SweepConfig {
            exhaustive_limit: 4096,
            samples: 64,
            seed: 0x57A11,
        },
        PmemConfig::strict_for_test(8 << 20),
        Duration::from_secs(60),
        |pool| {
            *slot.lock().unwrap() = None;
            let esys = EpochSys::format(pool.clone(), small_esys_cfg());
            let map = Arc::new(MontageHashMap::<Key>::new(esys.clone(), MTAG, NBUCKETS));
            *slot.lock().unwrap() = Some((esys.clone(), map.clone()));
            let tid = esys.register_thread();
            for i in 0..STALL_VICTIM_PUTS {
                let _ = map.try_put(tid, stall_victim_key(i), &i.to_le_bytes());
            }
        },
        |_pool| {
            peer_synced.store(0, Ordering::SeqCst);
            let Some((esys, map)) = slot.lock().unwrap().clone() else {
                return; // victim parked inside setup: nothing to drive yet
            };
            let tid = esys.register_thread();
            for (j, k) in peer_keys.iter().enumerate() {
                if map.try_put(tid, *k, &(j as u64).to_le_bytes()).is_err() {
                    return;
                }
                if esys.try_sync().is_err() {
                    return;
                }
                peer_synced.fetch_add(1, Ordering::SeqCst);
            }
        },
        |durable, stall_at| {
            let synced = peer_synced.load(Ordering::SeqCst);
            let rec = match montage::try_recover(durable, small_esys_cfg(), 1) {
                Err(RecoveryError::UnformattedPool) => {
                    // Cut before the pool header became durable: only legal
                    // when the peer never completed a sync on this pool.
                    return if synced == 0 {
                        Ok(())
                    } else {
                        Err(format!(
                            "stall_at={stall_at}: {synced} peer syncs acked on an \
                             unformatted pool"
                        ))
                    };
                }
                Err(e) => return Err(format!("stall_at={stall_at}: recovery failed: {e}")),
                Ok(rec) => rec,
            };
            if !rec.report.quarantined.is_empty() {
                return Err(format!(
                    "stall_at={stall_at}: helping corrupted payloads: {:?}",
                    rec.report.quarantined
                ));
            }
            let m = MontageHashMap::<Key>::recover(rec.esys.clone(), MTAG, NBUCKETS, &rec);
            let tid = rec.esys.register_thread();

            // Victim puts recover as a consistent prefix of v0..v5.
            let mut seen_gap = false;
            for i in 0..STALL_VICTIM_PUTS {
                match m.get_owned(tid, &stall_victim_key(i)) {
                    Some(v) => {
                        if seen_gap {
                            return Err(format!(
                                "stall_at={stall_at}: victim put {i} survived after a gap \
                                 — not a prefix"
                            ));
                        }
                        if v != i.to_le_bytes() {
                            return Err(format!("stall_at={stall_at}: victim put {i} torn: {v:?}"));
                        }
                    }
                    None => seen_gap = true,
                }
            }

            // Everything the peer synced before the cut is acked: it must
            // survive even though the epoch fence bypassed a parked thread.
            for (j, k) in peer_keys.iter().enumerate().take(synced as usize) {
                match m.get_owned(tid, k) {
                    Some(v) if v == (j as u64).to_le_bytes() => {}
                    other => {
                        return Err(format!(
                            "stall_at={stall_at}: peer put {j} was synced but recovered \
                             as {other:?}"
                        ))
                    }
                }
            }
            Ok(())
        },
    );
    assert!(
        report.total_events >= 64,
        "victim workload too small for a meaningful stall sweep: {} events",
        report.total_events
    );
    assert_eq!(
        report.stall_points.len() as u64,
        report.total_events + 1,
        "stall sweep must be exhaustive"
    );
    assert_eq!(
        report.parked_points as u64, report.total_events,
        "every interior stall point must park the victim"
    );
    report.assert_ok();
}

// ---- mid-resize crash sweep -------------------------------------------------

const R_NBUCKETS: usize = 2;
const R_MAX_LOAD: usize = 1;
/// Distinct keys inserted: with a 2-bucket table and load factor 1 the map
/// resizes at 3, 5, and 9 live entries — three full descriptor/migrate/retire
/// cycles inside one scripted run.
const R_KEYS: u64 = 12;
const R_MAX_CAP: usize = 16;

/// One step of the resize workload (same shape as `Op`, map-only).
#[derive(Clone, Copy, Debug)]
enum ROp {
    Put(u64, u64),
    Remove(u64),
    Sync,
}

/// Deterministic script: mostly fresh-key puts (the growth driver), with
/// periodic syncs (durability boundaries for the cut to land between) and a
/// few remove + re-put pairs so `pdelete` runs while levels migrate.
fn resize_script() -> Vec<ROp> {
    let mut s = Vec::new();
    for i in 0..R_KEYS {
        s.push(ROp::Put(i, i + 1));
        if i % 3 == 2 {
            s.push(ROp::Sync);
        }
        if i % 4 == 3 {
            s.push(ROp::Remove(i - 2));
            s.push(ROp::Put(i - 2, 100 + i));
        }
    }
    s.push(ROp::Sync);
    s
}

/// Runs the resize script on a fresh map over `pool`; returns how many
/// resizes completed so the test can prove the script is not vacuous.
fn run_resize(pool: &PmemPool, script: &[ROp]) -> usize {
    let esys = EpochSys::format(pool.clone(), small_esys_cfg());
    let tid = esys.register_thread();
    let m = MontageHashMap::<Key>::with_max_load(esys.clone(), MTAG, R_NBUCKETS, R_MAX_LOAD);
    for op in script {
        match *op {
            ROp::Put(k, v) => {
                let _ = m.try_put(tid, key(k), &v.to_le_bytes());
            }
            ROp::Remove(k) => {
                let _ = m.try_remove(tid, &key(k));
            }
            ROp::Sync => {
                let _ = esys.try_sync();
            }
        }
    }
    m.resizes_completed()
}

/// The mid-resize recovery contract, checked at one crash point:
/// no in-flight resize survives, the geometry is a sane power of two, the
/// contents equal the model after **some** prefix of the script (each key is
/// wholly pre- or post-cut — a mixed bucket could never equal any single
/// prefix), and the recovered map still takes writes and survives a forced
/// drain of whatever level the rolled-forward geometry implies.
fn verify_resize_prefix(durable: PmemPool, crash_at: u64, script: &[ROp]) -> Result<(), String> {
    let rec = match montage::try_recover(durable, small_esys_cfg(), 1) {
        Err(RecoveryError::UnformattedPool) => return Ok(()),
        Err(e) => return Err(format!("crash_at={crash_at}: recovery failed: {e}")),
        Ok(rec) => rec,
    };
    if !rec.report.quarantined.is_empty() {
        return Err(format!(
            "crash_at={crash_at}: clean crash quarantined payloads: {:?}",
            rec.report.quarantined
        ));
    }
    let m = MontageHashMap::<Key>::recover(rec.esys.clone(), MTAG, R_NBUCKETS, &rec);
    if m.resizing() {
        return Err(format!(
            "crash_at={crash_at}: recovery resurrected an in-flight resize"
        ));
    }
    let cap = m.capacity();
    if !cap.is_power_of_two() || !(R_NBUCKETS..=R_MAX_CAP).contains(&cap) {
        return Err(format!(
            "crash_at={crash_at}: recovered geometry {cap} is not a legal level size"
        ));
    }
    let tid = rec.esys.register_thread();

    let mut recovered: HashMap<u64, u64> = HashMap::new();
    for k in 0..R_KEYS {
        if let Some(v) = m.get_owned(tid, &key(k)) {
            let mut w = [0u8; 8];
            w.copy_from_slice(&v[..8]);
            recovered.insert(k, u64::from_le_bytes(w));
        }
    }

    let mut model: HashMap<u64, u64> = HashMap::new();
    let mut prefix_ok = recovered == model;
    if !prefix_ok {
        for op in script {
            match *op {
                ROp::Put(k, v) => {
                    model.insert(k, v);
                }
                ROp::Remove(k) => {
                    model.remove(&k);
                }
                ROp::Sync => {}
            }
            if recovered == model {
                prefix_ok = true;
                break;
            }
        }
    }
    if !prefix_ok {
        return Err(format!(
            "crash_at={crash_at}: recovered state (cap {cap}) matches no prefix \
             of the history: {recovered:?}"
        ));
    }

    // Usability probe: the recovered map keeps working — a fresh write, a
    // forced drain of any growth it triggers, and nothing recovered is lost.
    m.put(tid, key(R_KEYS + 1), &0xFEEDu64.to_le_bytes());
    m.finish_resize(tid);
    for (k, v) in &recovered {
        match m.get_owned(tid, &key(*k)) {
            Some(b) if b[..8] == v.to_le_bytes() => {}
            other => {
                return Err(format!(
                    "crash_at={crash_at}: key {k} lost/torn after post-recovery \
                     migration: {other:?}"
                ))
            }
        }
    }
    if m.get_owned(tid, &key(R_KEYS + 1)).is_none() {
        return Err(format!(
            "crash_at={crash_at}: recovered map dropped a fresh write"
        ));
    }
    Ok(())
}

/// Acceptance criterion: crashing at *every* persistence event of a run
/// holding three in-flight resizes — descriptor installs, per-bucket
/// migration marks, level retirements, and the key payloads between them —
/// always recovers a consistent prefix with a legal, usable geometry.
#[test]
fn resize_protocol_is_prefix_consistent_at_every_crash_point() {
    let script = resize_script();
    // The script must genuinely drive multiple online resizes, or the sweep
    // proves nothing about the resize protocol.
    let clean = PmemPool::new(PmemConfig::strict_for_test(8 << 20));
    let completed = run_resize(&clean, &script);
    assert!(
        completed >= 2,
        "resize script is vacuous: only {completed} resizes completed"
    );

    let cfg = SweepConfig {
        exhaustive_limit: 4096,
        samples: 64,
        seed: 0x2E512E,
    };
    let report = crash_sweep(
        &cfg,
        PmemConfig::strict_for_test(8 << 20),
        |pool| {
            run_resize(pool, &script);
        },
        |durable, crash_at| verify_resize_prefix(durable, crash_at, &script),
    );
    assert!(
        report.total_events >= 100,
        "resize workload too small for a meaningful sweep: {} events",
        report.total_events
    );
    assert_eq!(
        report.crash_points.len() as u64,
        report.total_events + 1,
        "mid-resize sweep must be exhaustive"
    );
    report.assert_ok();
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        3 => any::<u8>().prop_map(|v| Op::Enq(v as u64)),
        2 => Just(Op::Deq),
        3 => (any::<u8>(), any::<u8>()).prop_map(|(k, v)| Op::Put(k as u64 % KEY_SPACE, v as u64)),
        1 => any::<u8>().prop_map(|k| Op::Remove(k as u64 % KEY_SPACE)),
        1 => Just(Op::Sync),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 6, .. ProptestConfig::default() })]

    /// Random op sequences × sampled crash points: every combination must
    /// recover to a consistent prefix. Bounded (6 sequences × ~18 points)
    /// to stay inside a CI budget; the exhaustive test above covers depth.
    #[test]
    fn random_histories_are_prefix_consistent_at_sampled_crash_points(
        ops in proptest::collection::vec(op_strategy(), 10..40),
        seed in any::<u64>(),
    ) {
        let cfg = SweepConfig { exhaustive_limit: 0, samples: 16, seed };
        let report = crash_sweep(
            &cfg,
            PmemConfig::strict_for_test(8 << 20),
            |pool| run_mixed(pool, &ops),
            |durable, crash_at| verify_mixed_prefix(durable, crash_at, &ops),
        );
        prop_assert!(report.is_ok(), "{:?}", report.failures);
    }
}

// ---- shard-aware sweep over the multi-pool store ----------------------------

/// One step of the sharded-store workload. Syncs are per-shard (the server's
/// periodic barrier works the same way), so a crash can land between them.
#[derive(Clone, Copy, Debug)]
enum SOp {
    Set(u64, u64),
    Del(u64),
    SyncAll,
}

const S_SHARDS: usize = 4;
const S_VICTIM: usize = 1;
const S_KEYS: u64 = 24;
const S_STRIPES: usize = 4;
const S_CAP: usize = 1024;

fn sharded_script(seed: u64, len: usize) -> Vec<SOp> {
    let mut rng = SmallRng::seed_from_u64(seed);
    (0..len)
        .map(|i| match rng.gen_range(0u64..10) {
            0..=5 => SOp::Set(rng.gen_range(0..S_KEYS), i as u64 + 1),
            6..=7 => SOp::Del(rng.gen_range(0..S_KEYS)),
            _ => SOp::SyncAll,
        })
        .collect()
}

/// Runs the script over a 4-shard store built on the caller's (chaos-armed)
/// pools. Ops on the victim degrade to errors once its plan trips; at the
/// end every *healthy* shard is synced so it is entitled to lose nothing.
fn run_sharded(pools: &[pmem::PmemPool], script: &[SOp]) {
    use kvstore::ShardedKvStore;
    let store = ShardedKvStore::format_pools(pools.to_vec(), small_esys_cfg(), S_STRIPES, S_CAP);
    let lease = store.lease();
    for op in script {
        match *op {
            SOp::Set(k, v) => {
                let _ = store.set(&lease, kvstore::make_key(k), &v.to_le_bytes());
            }
            SOp::Del(k) => {
                let _ = store.delete(&lease, &kvstore::make_key(k));
            }
            SOp::SyncAll => {
                for s in 0..S_SHARDS {
                    let _ = store.sync_shard(s);
                }
            }
        }
    }
    for s in 0..S_SHARDS {
        if s != S_VICTIM {
            store
                .sync_shard(s)
                .expect("non-victim shards must stay healthy through the sweep");
        }
    }
}

/// Recovers the 4 crashed pools as one store and checks the contract:
/// the victim holds the state after some prefix of *its* routed-op
/// subsequence; every other shard holds exactly its final state.
fn verify_sharded_prefix(
    pools: Vec<pmem::PmemPool>,
    crash_at: u64,
    script: &[SOp],
) -> Result<(), String> {
    use kvstore::ShardedKvStore;
    use std::collections::HashMap;

    let (store, report) =
        ShardedKvStore::recover(pools, small_esys_cfg(), S_STRIPES, S_CAP, S_SHARDS);
    for sr in &report.shards {
        if let Some(err) = &sr.fatal {
            // Only the victim may come back fatal, and only because the
            // crash predates its pool header (formatted-fresh ⇒ empty,
            // which the trivial prefix below accepts).
            if sr.shard != S_VICTIM || !matches!(err, RecoveryError::UnformattedPool) {
                return Err(format!(
                    "crash_at={crash_at}: shard {} fatal: {err}",
                    sr.shard
                ));
            }
        }
        if sr.quarantined != 0 {
            return Err(format!(
                "crash_at={crash_at}: clean crash quarantined payloads on shard {}",
                sr.shard
            ));
        }
    }

    // Read back everything, bucketed by owning shard.
    let mut recovered: Vec<HashMap<u64, u64>> = vec![HashMap::new(); S_SHARDS];
    for k in 0..S_KEYS {
        let key = kvstore::make_key(k);
        if let Some(v) = store.get(&key, |b| {
            let mut w = [0u8; 8];
            w.copy_from_slice(&b[..8]);
            u64::from_le_bytes(w)
        }) {
            recovered[store.shard_of(&key)].insert(k, v);
        }
    }

    // Replay the script: full model per shard, plus the victim's routed
    // subsequence for the prefix check.
    let router = kvstore::ShardRouter::new(S_SHARDS);
    let mut full: Vec<HashMap<u64, u64>> = vec![HashMap::new(); S_SHARDS];
    let mut victim_ops = Vec::new();
    for op in script {
        if let SOp::Set(k, _) | SOp::Del(k) = op {
            let s = router.route(&kvstore::make_key(*k));
            if s == S_VICTIM {
                victim_ops.push(*op);
            }
            match *op {
                SOp::Set(k, v) => {
                    full[s].insert(k, v);
                }
                SOp::Del(k) => {
                    full[s].remove(&k);
                }
                SOp::SyncAll => unreachable!(),
            }
        }
    }

    for s in 0..S_SHARDS {
        if s == S_VICTIM {
            continue;
        }
        if recovered[s] != full[s] {
            return Err(format!(
                "crash_at={crash_at}: healthy shard {s} lost data: \
                 recovered {:?} != expected {:?}",
                recovered[s], full[s]
            ));
        }
    }

    let mut model: HashMap<u64, u64> = HashMap::new();
    if recovered[S_VICTIM] == model {
        return Ok(());
    }
    for op in &victim_ops {
        match *op {
            SOp::Set(k, v) => {
                model.insert(k, v);
            }
            SOp::Del(k) => {
                model.remove(&k);
            }
            SOp::SyncAll => unreachable!(),
        }
        if recovered[S_VICTIM] == model {
            return Ok(());
        }
    }
    Err(format!(
        "crash_at={crash_at}: victim shard matches no prefix of its {} routed ops: {:?}",
        victim_ops.len(),
        recovered[S_VICTIM]
    ))
}

// ---- descriptor/payload atomicity under a shard crash -----------------------

/// Sessions and request ids for the detected-operation sweep: session `s`
/// mutates only key `1000 + s`, so its descriptor and payload live — and
/// co-crash — on that key's shard.
const D_SIDS: u64 = 8;
const D_RIDS: u64 = 4;
const D_OP_KIND: u8 = 7;

/// Runs `D_RIDS` rounds of detected upserts: in round `r`, session `s`
/// writes value `r` (8-byte LE) under rid `r` and records result `r`.
/// Per-shard syncs between rounds give the sweep epoch boundaries to cut
/// at; ops and syncs on the victim degrade to errors once its plan trips.
fn run_detected_sharded(pools: &[pmem::PmemPool]) {
    use kvstore::{DetectedWrite, ShardedKvStore};
    let store = ShardedKvStore::format_pools(pools.to_vec(), small_esys_cfg(), S_STRIPES, S_CAP);
    let lease = store.lease();
    for rid in 1..=D_RIDS {
        for sid in 0..D_SIDS {
            let key = kvstore::make_key(1000 + sid);
            let _ = store.detected(&lease, sid, rid, D_OP_KIND, &key, |_cur| {
                (
                    DetectedWrite::Upsert(rid.to_le_bytes().to_vec()),
                    rid.to_le_bytes().to_vec(),
                )
            });
        }
        for s in 0..S_SHARDS {
            let _ = store.sync_shard(s);
        }
    }
    for s in 0..S_SHARDS {
        if s != S_VICTIM {
            store
                .sync_shard(s)
                .expect("non-victim shards must stay healthy through the sweep");
        }
    }
}

/// The atomicity contract, checked per session on the recovered store:
/// a session's descriptor and its payload ride one epoch window, so the
/// victim shard holds an *exact prefix* — descriptor at rid `r` with value
/// `r`, or neither — never a descriptor without its mutation or a mutation
/// without its descriptor. Healthy shards hold the full final state.
fn verify_detected_sharded(pools: Vec<pmem::PmemPool>, crash_at: u64) -> Result<(), String> {
    use kvstore::ShardedKvStore;

    let (store, report) =
        ShardedKvStore::recover(pools, small_esys_cfg(), S_STRIPES, S_CAP, S_SHARDS);
    for sr in &report.shards {
        if let Some(err) = &sr.fatal {
            if sr.shard != S_VICTIM || !matches!(err, RecoveryError::UnformattedPool) {
                return Err(format!(
                    "crash_at={crash_at}: shard {} fatal: {err}",
                    sr.shard
                ));
            }
        }
        if sr.quarantined != 0 {
            return Err(format!(
                "crash_at={crash_at}: clean crash quarantined payloads on shard {}",
                sr.shard
            ));
        }
    }

    let mut survivors_per_shard = [0u64; S_SHARDS];
    for sid in 0..D_SIDS {
        let key = kvstore::make_key(1000 + sid);
        let shard = store.shard_of(&key);
        let desc = store.shard_session_descriptor(shard, sid);
        let value = store.get(&key, |b| {
            let mut w = [0u8; 8];
            w.copy_from_slice(&b[..8]);
            u64::from_le_bytes(w)
        });
        match (&desc, value) {
            (None, None) => {
                // Pre-history cut: legal only on the crashed shard.
                if shard != S_VICTIM {
                    return Err(format!(
                        "crash_at={crash_at}: healthy shard {shard} lost session {sid} entirely"
                    ));
                }
            }
            (Some((rid, kind, result)), Some(v)) => {
                survivors_per_shard[shard] += 1;
                let want_result = rid.to_le_bytes().to_vec();
                if *kind != D_OP_KIND || *result != want_result || v != *rid {
                    return Err(format!(
                        "crash_at={crash_at}: session {sid} on shard {shard} is torn: \
                         descriptor (rid {rid}, kind {kind}, result {result:?}) vs value {v}"
                    ));
                }
                if *rid > D_RIDS || *rid == 0 {
                    return Err(format!(
                        "crash_at={crash_at}: session {sid} descriptor rid {rid} out of range"
                    ));
                }
                if shard != S_VICTIM && *rid != D_RIDS {
                    return Err(format!(
                        "crash_at={crash_at}: healthy shard {shard} lost acked rounds of \
                         session {sid}: stuck at rid {rid}"
                    ));
                }
            }
            (desc, value) => {
                // One side without the other is exactly the half-applied
                // state the single-epoch-window design forbids — on any
                // shard, victim included.
                return Err(format!(
                    "crash_at={crash_at}: session {sid} on shard {shard} half-applied: \
                     descriptor {desc:?} vs value {value:?}"
                ));
            }
        }
    }

    // The per-shard descriptor counters the `stats` command surfaces must
    // agree with what actually survived on each shard.
    let per_shard = store.detect_stats_per_shard();
    for (shard, stats) in per_shard.iter().enumerate() {
        if stats.descriptors != survivors_per_shard[shard] {
            return Err(format!(
                "crash_at={crash_at}: shard {shard} reports {} descriptors, \
                 recovery found {}",
                stats.descriptors, survivors_per_shard[shard]
            ));
        }
    }
    let merged = store.detect_stats_merged();
    if merged.descriptors != per_shard.iter().map(|s| s.descriptors).sum::<u64>() {
        return Err(format!(
            "crash_at={crash_at}: merged descriptor count disagrees with per-shard sum"
        ));
    }
    Ok(())
}

/// Acceptance criterion: at every one of the victim shard's persistence
/// events, each session's descriptor and payload survive or vanish
/// *together* — the mutation is half-applied at no crash point — and the
/// healthy shards keep every synced round.
#[test]
fn detected_descriptor_and_payload_are_atomic_per_shard() {
    let cfg = SweepConfig {
        exhaustive_limit: 768,
        samples: 96,
        seed: 0x0DE7EC,
    };
    let report = pmem_chaos::shard_crash_sweep(
        &cfg,
        PmemConfig::strict_for_test(4 << 20),
        S_SHARDS,
        S_VICTIM,
        run_detected_sharded,
        verify_detected_sharded,
    );
    assert!(
        report.total_events >= 64,
        "victim shard saw too few events for a meaningful sweep: {}",
        report.total_events
    );
    report.assert_ok();
}

/// Acceptance criterion: an exhaustive crash sweep over a 4-shard store,
/// crashing shard 1 at every one of its persistence events, always recovers
/// a consistent prefix on the victim while the untouched shards lose
/// nothing past their final sync.
#[test]
fn sharded_store_crash_is_contained_to_the_victim_shard() {
    let script = sharded_script(0x5AA4D, 48);
    let cfg = SweepConfig {
        exhaustive_limit: 4096,
        samples: 64,
        seed: 0xD15EA5E,
    };
    let report = pmem_chaos::shard_crash_sweep(
        &cfg,
        PmemConfig::strict_for_test(4 << 20),
        S_SHARDS,
        S_VICTIM,
        |pools| run_sharded(pools, &script),
        |pools, crash_at| verify_sharded_prefix(pools, crash_at, &script),
    );
    assert!(
        report.total_events >= 64,
        "victim shard saw too few events for a meaningful sweep: {}",
        report.total_events
    );
    assert_eq!(
        report.crash_points.len() as u64,
        report.total_events + 1,
        "shard sweep must be exhaustive"
    );
    report.assert_ok();
}
