//! Exactly-once acceptance for detectable operations: blind retries over a
//! real socket, swept across crash points, plus retry-collapsed histories
//! through the durable-linearizability checker.
//!
//! ## The wire sweep
//!
//! The client attaches a durable session, stores a counter under `rid=1`,
//! then issues `incr` under `rid=2..=N` closed-loop, remembering the last
//! request id whose ack it actually read. A [`pmem_chaos::crash_sweep`]
//! re-runs that workload with a crash injected at every persistence-event
//! boundary. After each recovery the client reconnects, re-attaches the
//! *same* session, and blindly retries every request from the first
//! unacked rid onward — the protocol under test is precisely "retry
//! without knowing whether the original landed". Exactly-once then has a
//! sharp arithmetic signature: the retry of rid `r` must answer `r − 1`
//! (replayed from the descriptor if the original committed, applied fresh
//! if it never happened — the two are indistinguishable, which is the
//! point), and the final counter must equal exactly N − 1. A lost acked
//! increment or a double-applied retry both shift the arithmetic and fail
//! the sweep.
//!
//! This leans on the group-commit severing rule: with `sync_every = 1` an
//! ack is only flushed after its batch's fence, and a failed fence cuts
//! the connection instead of letting the ack escape — so "acked" implies
//! "durable with descriptor", which is what makes blind retry from the
//! first unacked rid sufficient.
//!
//! ## The checker histories
//!
//! 120 seeded single-session runs against the flat store, each op blindly
//! retried 1–3×. Exactly-once means the duplicates are not operations at
//! all, so each retry burst collapses to **one** [`OpRecord`] (its epoch
//! interval spanning every attempt) and the recovered state after a
//! mid-run crash snapshot must be a legal epoch cut of the *collapsed*
//! history. A double-applied increment makes the recovered value
//! unexplainable by any cut, so the checker — not just the reply text —
//! vouches for the dedupe.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use kvserver::{KvServer, ServerConfig, WireClient};
use kvstore::protocol::Session;
use kvstore::{KvBackend, KvStore};
use montage::{EpochSys, EsysConfig, RecoveryError};
use pmem::{PmemConfig, PmemPool};
use pmem_chaos::{crash_sweep, SweepConfig};

use montage_suite::history::{
    check_durable_prefix, check_linearizable, classify_by_epoch, Counter, CtrOp, CtrRet,
    Durability, Recorder,
};

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

const NBUCKETS: usize = 8;
const CAPACITY: usize = 100_000;
/// Durable session id the wire client re-attaches after every recovery.
const SID: u64 = 7;
/// Request ids 1 (set) ..= RIDS (increments); final counter = RIDS − 1.
const RIDS: u64 = 12;

fn esys_cfg() -> EsysConfig {
    EsysConfig {
        // one server worker + recovery + headroom
        max_threads: 4,
        ..Default::default()
    }
}

/// Drives the session workload until done or the injected crash severs the
/// connection, publishing the last rid whose ack the client read.
fn drive(c: &mut WireClient, acked: &AtomicU64) {
    if c.session(SID).is_err() {
        return;
    }
    match c.set_rid("ctr", 0, b"0", 1) {
        Ok(ref l) if l == "STORED" => acked.store(1, Ordering::SeqCst),
        _ => return,
    }
    for rid in 2..=RIDS {
        match c.arith(true, "ctr", 1, Some(rid)) {
            Ok(ref l) if *l == (rid - 1).to_string() => acked.store(rid, Ordering::SeqCst),
            _ => return,
        }
    }
}

fn run_workload(pool: &PmemPool, acked: &AtomicU64) {
    acked.store(0, Ordering::SeqCst);
    let esys = EpochSys::format(pool.clone(), esys_cfg());
    let store = Arc::new(KvStore::new(KvBackend::Montage(esys), NBUCKETS, CAPACITY));
    let h = KvServer::start(
        ServerConfig {
            workers: 1,
            sync_every: Some(1),
            ..Default::default()
        },
        store,
    )
    .expect("bind");
    if let Ok(mut c) = WireClient::connect(h.addr()) {
        drive(&mut c, acked);
    }
    // Crash-style stop: acks that never left the machine stay unread.
    h.crash();
}

/// Recovery check for one crash point: blind retry from the first unacked
/// rid must be exactly-once.
fn verify(durable: PmemPool, crash_at: u64, acked: &AtomicU64) -> Result<(), String> {
    let rec = match montage::try_recover(durable, esys_cfg(), 2) {
        Err(RecoveryError::UnformattedPool) => return Ok(()), // pre-format crash
        Err(e) => return Err(format!("crash_at={crash_at}: recovery failed: {e}")),
        Ok(rec) => rec,
    };
    if !rec.report.quarantined.is_empty() {
        return Err(format!(
            "crash_at={crash_at}: clean crash quarantined payloads: {:?}",
            rec.report.quarantined
        ));
    }
    let kv = Arc::new(KvStore::recover(rec.esys.clone(), NBUCKETS, CAPACITY, &rec));
    let h = KvServer::start(ServerConfig::default(), kv)
        .map_err(|e| format!("crash_at={crash_at}: rebind failed: {e}"))?;
    let mut c = WireClient::connect(h.addr())
        .map_err(|e| format!("crash_at={crash_at}: reconnect failed: {e}"))?;
    c.session(SID)
        .map_err(|e| format!("crash_at={crash_at}: session re-attach failed: {e}"))?;

    let a = acked.load(Ordering::SeqCst);
    // Blind retry: the client does not know whether rid a+1 committed
    // before the crash. If it did, the descriptor replays its recorded
    // reply; if not, it applies fresh — either way the answer is the one
    // the original would have produced, and later rids continue from it.
    for rid in (a + 1)..=RIDS {
        if rid == 1 {
            let l = c
                .set_rid("ctr", 0, b"0", 1)
                .map_err(|e| format!("crash_at={crash_at}: retry rid=1 failed: {e}"))?;
            if l != "STORED" {
                return Err(format!(
                    "crash_at={crash_at}: retry rid=1 replied {l:?} (acked={a})"
                ));
            }
        } else {
            let l = c
                .arith(true, "ctr", 1, Some(rid))
                .map_err(|e| format!("crash_at={crash_at}: retry rid={rid} failed: {e}"))?;
            let want = (rid - 1).to_string();
            if l != want {
                return Err(format!(
                    "crash_at={crash_at}: retry rid={rid} replied {l:?}, want {want:?} \
                     (acked={a}) — an increment was lost or double-applied"
                ));
            }
        }
    }
    // N increments must have happened exactly once each, no matter where
    // the crash fell or how many requests were retried.
    let (_, data) = c
        .get("ctr")
        .map_err(|e| format!("crash_at={crash_at}: final get failed: {e}"))?
        .ok_or_else(|| format!("crash_at={crash_at}: counter missing after retries"))?;
    let want = (RIDS - 1).to_string();
    if data != want.as_bytes() {
        return Err(format!(
            "crash_at={crash_at}: final counter {:?}, want {want:?} (acked={a})",
            String::from_utf8_lossy(&data)
        ));
    }
    h.shutdown();
    Ok(())
}

/// Acceptance: every swept crash point recovers to a state from which
/// blind retry yields exactly-once effects — N increments, exactly +N.
#[test]
fn blind_retry_is_exactly_once_at_every_crash_point() {
    let acked = Arc::new(AtomicU64::new(0));
    let cfg = SweepConfig {
        // A server + two clients per point; sample the interior rather
        // than sweeping thousands of points exhaustively.
        exhaustive_limit: 320,
        samples: 96,
        seed: 0xDE7EC7,
    };
    let (wl_acked, vf_acked) = (Arc::clone(&acked), Arc::clone(&acked));
    let report = crash_sweep(
        &cfg,
        PmemConfig::strict_for_test(64 << 20),
        move |pool| run_workload(pool, &wl_acked),
        move |durable, crash_at| verify(durable, crash_at, &vf_acked),
    );
    assert!(
        report.total_events >= 100,
        "workload too small to cover the apply/fence/descriptor window: {} events",
        report.total_events
    );
    assert!(
        report.is_ok(),
        "{} of {} crash points violated exactly-once: {:?}",
        report.failures.len(),
        report.crash_points.len(),
        report.failures
    );
}

fn ctr_key() -> kvstore::Key {
    let mut k = [0u8; 32];
    k[..3].copy_from_slice(b"ctr");
    k
}

/// Item bytes are `flags u32 | expires_at u64 | cas u64 | data`; the
/// counter's data is its decimal text.
fn counter_value(store: &KvStore) -> Option<u64> {
    store.get(0, &ctr_key(), |b| {
        std::str::from_utf8(&b[20..])
            .expect("counter data is decimal text")
            .parse::<u64>()
            .expect("counter data parses")
    })
}

/// 120 seeded retry histories, each collapsed to one op per request id and
/// checked against the recovered state of a mid-run crash snapshot.
#[test]
fn retry_collapsed_histories_are_durably_linearizable() {
    const SEEDS: u64 = 120;
    const N_OPS: usize = 14;
    let mut histories = 0usize;
    let mut retried_total = 0u64;
    let mut must_include_total = 0usize;
    let mut must_exclude_total = 0usize;

    for seed in 0..SEEDS {
        let pool = PmemPool::new(PmemConfig::strict_for_test(8 << 20));
        let esys = EpochSys::format(pool.clone(), EsysConfig::default());
        let store = Arc::new(KvStore::new(
            KvBackend::Montage(Arc::clone(&esys)),
            NBUCKETS,
            4096,
        ));
        let session = Session::new(Arc::clone(&store));
        let sid = 1000 + seed;
        let mut rng = SmallRng::seed_from_u64(0xB11D ^ seed);
        let clock = Recorder::<CtrOp, CtrRet>::shared_clock();
        let mut recorder = Recorder::new(clock, 0);
        let crash_idx = rng.gen_range(1..N_OPS);
        let mut crashed: Option<PmemPool> = None;
        let mut extra_attempts = 0u64;

        for i in 0..N_OPS {
            if i % 3 == 2 {
                esys.advance_epoch();
            }
            if i == crash_idx {
                crashed = Some(pool.crash());
            }
            let rid = (i + 1) as u64;
            let attempts = rng.gen_range(1u32..=3);
            extra_attempts += u64::from(attempts - 1);
            let e = || esys.curr_epoch();
            // Every attempt of one rid is the *same* request; they must all
            // answer identically and collapse to one history op.
            let replies = |line: String, data: &'static [u8]| {
                let session = &session;
                move || {
                    let mut last: Option<String> = None;
                    for _ in 0..attempts {
                        let r = session.execute_with(&line, data, Some(sid));
                        if let Some(prev) = &last {
                            assert_eq!(prev, &r, "seed {seed}: retry of rid {rid} diverged");
                        }
                        last = Some(r);
                    }
                    last.expect("at least one attempt")
                }
            };
            if i == 0 {
                let f = replies(format!("set ctr 0 0 1 rid={rid}"), b"0");
                recorder.record(CtrOp::Create(0), e, || {
                    assert_eq!(f(), "STORED", "seed {seed}: initial set refused");
                    CtrRet::Stored
                });
            } else {
                let f = replies(format!("incr ctr 1 rid={rid}"), b"");
                recorder.record(CtrOp::Incr, e, || {
                    let v: u64 = f().parse().expect("incr replies the new value");
                    assert_eq!(
                        v, i as u64,
                        "seed {seed}: rid {rid} saw value {v} — an increment \
                         was lost or double-applied"
                    );
                    CtrRet::Value(v)
                });
            }
        }
        retried_total += extra_attempts;
        assert_eq!(
            store.detect_stats().dedupe_hits,
            extra_attempts,
            "seed {seed}: every duplicate attempt must be a descriptor hit"
        );
        // The live (uncrashed) run must also linearize as recorded.
        check_linearizable::<Counter>(&recorder.ops)
            .unwrap_or_else(|e| panic!("seed {seed}: live history: {e}"));

        let crashed = crashed.expect("snapshot taken");
        let rec = montage::try_recover(crashed, EsysConfig::default(), 1)
            .unwrap_or_else(|e| panic!("seed {seed}: recovery failed: {e}"));
        assert!(
            rec.report.quarantined.is_empty(),
            "seed {seed}: clean crash quarantined payloads"
        );
        let rstore = KvStore::recover(rec.esys.clone(), NBUCKETS, 4096, &rec);
        let target = Counter {
            value: counter_value(&rstore),
        };
        // Recovery resumes the clock two epochs past the durable value, and
        // the cutoff is two below it: everything ≤ curr − 4 survived.
        let cutoff = rec.esys.curr_epoch() - 4;
        let durability = classify_by_epoch(&recorder.ops, cutoff);
        must_include_total += durability
            .iter()
            .filter(|d| **d == Durability::MustInclude)
            .count();
        must_exclude_total += durability
            .iter()
            .filter(|d| **d == Durability::MustExclude)
            .count();
        check_durable_prefix(&recorder.ops, &durability, &target).unwrap_or_else(|e| {
            panic!(
                "seed {seed}, cutoff {cutoff}: {e}\nrecovered {target:?}\n\
                 history: {:#?}\nclasses: {durability:?}",
                recorder.ops
            )
        });
        histories += 1;
    }

    assert!(
        histories >= 100,
        "need at least 100 retry histories, got {histories}"
    );
    assert!(
        retried_total >= 100,
        "too few duplicate attempts to exercise dedupe: {retried_total}"
    );
    // Both sides of the cut must occur somewhere, or the epoch
    // classification is vacuous.
    assert!(must_include_total > 0, "no op ever classified must-include");
    assert!(must_exclude_total > 0, "no op ever classified must-exclude");
}
