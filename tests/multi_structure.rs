//! Several Montage structures sharing one pool/epoch system, recovered
//! together from a single crash — the "manages persistent payload blocks on
//! behalf of one or more concurrent data structures" claim.

use montage::{EpochSys, EsysConfig};
use montage_ds::{
    tags, MontageGraph, MontageHashMap, MontageNbMap, MontageNbQueue, MontageQueue,
    MontageSkipListMap, MontageStack,
};
use pmem::{PmemConfig, PmemPool};

type Key = [u8; 32];

fn key(i: u64) -> Key {
    let mut k = [0u8; 32];
    k[..8].copy_from_slice(&i.to_le_bytes());
    k
}

#[test]
fn four_structures_one_pool() {
    let esys = EpochSys::format(
        PmemPool::new(PmemConfig::strict_for_test(128 << 20)),
        EsysConfig::default(),
    );
    let tid = esys.register_thread();

    let map = MontageHashMap::<Key>::new(esys.clone(), tags::HASHMAP, 64);
    let queue = MontageQueue::new(esys.clone(), tags::QUEUE);
    let nbq = MontageNbQueue::new(esys.clone(), tags::NBQUEUE);
    let graph = MontageGraph::new(esys.clone(), tags::GRAPH_VERTEX, tags::GRAPH_EDGE, 128);

    for i in 0..30 {
        map.put(tid, key(i), format!("m{i}").as_bytes());
        queue.enqueue(tid, format!("q{i}").as_bytes());
        nbq.enqueue(tid, format!("n{i}").as_bytes());
    }
    for v in 0..20 {
        graph.add_vertex(tid, v, b"v");
    }
    for v in 1..20 {
        graph.add_edge(tid, 0, v, b"e");
    }
    // Mutations across all structures.
    map.remove(tid, &key(7));
    queue.dequeue(tid);
    nbq.dequeue(tid);
    graph.remove_edge(tid, 0, 5);
    esys.sync();

    let rec = montage::recovery::recover(esys.pool().crash(), EsysConfig::default(), 3);
    let map2 = MontageHashMap::<Key>::recover(rec.esys.clone(), tags::HASHMAP, 64, &rec);
    let queue2 = MontageQueue::recover(rec.esys.clone(), tags::QUEUE, &rec);
    let nbq2 = MontageNbQueue::recover(rec.esys.clone(), tags::NBQUEUE, &rec);
    let graph2 = MontageGraph::recover(
        rec.esys.clone(),
        tags::GRAPH_VERTEX,
        tags::GRAPH_EDGE,
        128,
        &rec,
    );

    assert_eq!(map2.len(), 29);
    assert_eq!(queue2.len(), 29);
    assert_eq!(queue2.seq_bounds(), (1, 30));
    assert_eq!(graph2.vertex_count(), 20);
    assert_eq!(graph2.edge_count(), 18);
    graph2.check_invariants();

    let tid2 = rec.esys.register_thread();
    assert!(map2.get_owned(tid2, &key(7)).is_none());
    assert_eq!(map2.get_owned(tid2, &key(8)).unwrap(), b"m8");
    assert_eq!(queue2.dequeue(tid2).unwrap(), b"q1");
    assert_eq!(nbq2.dequeue(tid2).unwrap(), b"n1");

    // All structures remain fully usable post-recovery.
    map2.put(tid2, key(100), b"new");
    queue2.enqueue(tid2, b"new");
    nbq2.enqueue(tid2, b"new");
    assert!(graph2.add_vertex(tid2, 99, b"new"));
    assert!(graph2.add_edge(tid2, 0, 99, b"new"));
    graph2.check_invariants();
}

#[test]
fn nonblocking_and_ordered_structures_share_a_pool() {
    let esys = EpochSys::format(
        PmemPool::new(PmemConfig::strict_for_test(128 << 20)),
        EsysConfig::default(),
    );
    let tid = esys.register_thread();

    let nbmap = MontageNbMap::<u64>::new(esys.clone(), tags::NBMAP, 32);
    let skiplist = MontageSkipListMap::<u64>::new(esys.clone(), tags::SKIPLIST);
    let stack = MontageStack::new(esys.clone(), tags::STACK);

    for i in 0..40u64 {
        assert!(nbmap.insert(tid, i, &i.to_le_bytes()));
        assert!(skiplist.insert(tid, i * 2, &i.to_le_bytes()));
        stack.push(tid, &i.to_le_bytes());
        if i % 7 == 0 {
            esys.advance_epoch();
        }
    }
    nbmap.remove(tid, &5);
    skiplist.remove(tid, &10);
    stack.pop(tid);
    esys.sync();

    let rec = montage::recovery::recover(esys.pool().crash(), EsysConfig::default(), 3);
    let nbmap2 = MontageNbMap::<u64>::recover(rec.esys.clone(), tags::NBMAP, 32, &rec);
    let skiplist2 = MontageSkipListMap::<u64>::recover(rec.esys.clone(), tags::SKIPLIST, &rec);
    let stack2 = MontageStack::recover(rec.esys.clone(), tags::STACK, &rec);

    assert_eq!(nbmap2.len(), 39);
    assert_eq!(skiplist2.len(), 39);
    assert_eq!(stack2.len_approx(), 39);

    let tid2 = rec.esys.register_thread();
    assert!(nbmap2.get(tid2, &5, |_| ()).is_none());
    assert!(skiplist2.get(tid2, &10, |_| ()).is_none());
    assert_eq!(stack2.pop(tid2).unwrap(), 38u64.to_le_bytes());
    let keys = skiplist2.keys();
    assert!(
        keys.windows(2).all(|w| w[0] < w[1]),
        "skip list stays sorted"
    );
}

#[test]
fn tags_isolate_structures() {
    // Two maps with different tags in one pool must not see each other's
    // payloads after recovery.
    let esys = EpochSys::format(
        PmemPool::new(PmemConfig::strict_for_test(64 << 20)),
        EsysConfig::default(),
    );
    let tid = esys.register_thread();
    let a = MontageHashMap::<Key>::new(esys.clone(), 100, 16);
    let b = MontageHashMap::<Key>::new(esys.clone(), 101, 16);
    a.put(tid, key(1), b"from-a");
    b.put(tid, key(1), b"from-b");
    b.put(tid, key(2), b"only-b");
    esys.sync();

    let rec = montage::recovery::recover(esys.pool().crash(), EsysConfig::default(), 1);
    let a2 = MontageHashMap::<Key>::recover(rec.esys.clone(), 100, 16, &rec);
    let b2 = MontageHashMap::<Key>::recover(rec.esys.clone(), 101, 16, &rec);
    let tid2 = rec.esys.register_thread();
    assert_eq!(a2.len(), 1);
    assert_eq!(b2.len(), 2);
    assert_eq!(a2.get_owned(tid2, &key(1)).unwrap(), b"from-a");
    assert_eq!(b2.get_owned(tid2, &key(1)).unwrap(), b"from-b");
    assert!(a2.get_owned(tid2, &key(2)).is_none());
}
