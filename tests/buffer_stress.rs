//! Stress tests for the lock-free write-back buffers: worker threads hammer
//! `PNEW`/`set` while a fast background advancer concurrently steals from
//! their rings at every epoch boundary. The seed implementation serialized
//! these paths behind a per-thread mutex; the ring's push/steal protocol has
//! to deliver the same durability guarantees without one.

use std::sync::atomic::Ordering;
use std::time::Duration;

use montage::{Advancer, EpochSys, EsysConfig, PersistStrategy};
use montage_ds::{tags, MontageHashMap};
use pmem::{PmemConfig, PmemPool};

type Key = [u8; 32];

fn key(i: u64) -> Key {
    let mut k = [0u8; 32];
    k[..8].copy_from_slice(&i.to_le_bytes());
    k
}

/// Workers push into their rings as fast as they can while a 1 ms advancer
/// concurrently drains them; a tiny ring capacity forces constant overflow
/// write-backs racing against the advancer's steals. After `sync`, every
/// completed operation must survive the crash.
#[test]
fn concurrent_pushes_and_drains_survive_crash() {
    const WORKERS: u64 = 3;
    const ROUNDS: u64 = 300;

    let esys = EpochSys::format(
        PmemPool::new(PmemConfig::strict_for_test(64 << 20)),
        EsysConfig {
            persist: PersistStrategy::Buffered(4),
            ..Default::default()
        },
    );
    let map = MontageHashMap::<Key>::new(esys.clone(), tags::HASHMAP, 256);
    let advancer = Advancer::start_with_period(esys.clone(), Some(Duration::from_millis(1)));

    std::thread::scope(|s| {
        for w in 0..WORKERS {
            let map = &map;
            let esys = &esys;
            s.spawn(move || {
                let tid = esys.register_thread();
                for r in 0..ROUNDS {
                    let k = w * ROUNDS + r;
                    map.put(tid, key(k), &[r as u8; 16]);
                    // In-epoch updates of the key just written: the repeat
                    // pushes hit the coalescing table mid-stress.
                    for v in 0..3u8 {
                        map.put(tid, key(k), &[v; 16]);
                    }
                    if k % 8 == 7 {
                        map.remove(tid, &key(k));
                    }
                }
            });
        }
    });

    esys.sync();
    drop(advancer);

    let expected: Vec<u64> = (0..WORKERS * ROUNDS).filter(|k| k % 8 != 7).collect();
    assert!(
        esys.stats().flushes_coalesced.load(Ordering::Relaxed) > 0,
        "repeat in-epoch puts should exercise the coalescing path"
    );

    let rec = montage::recovery::recover(esys.pool().crash(), EsysConfig::default(), 4);
    let map2 = MontageHashMap::<Key>::recover(rec.esys.clone(), tags::HASHMAP, 256, &rec);
    let tid = rec.esys.register_thread();
    for &k in &expected {
        let got = map2.get_owned(tid, &key(k));
        assert_eq!(
            got.as_deref(),
            Some(&[2u8; 16][..]),
            "synced key {k} lost or stale after crash"
        );
    }
    for k in (0..WORKERS * ROUNDS).filter(|k| k % 8 == 7) {
        assert!(
            map2.get_owned(tid, &key(k)).is_none(),
            "removed key {k} resurrected"
        );
    }
}

/// The paper's `sync` helps drain *other* threads' buffers. Run workers with
/// no background advancer at all and let a fourth thread call `sync`
/// concurrently — sync's helping drains plus the workers' own overflow
/// write-backs race on the same rings.
#[test]
fn sync_helpers_steal_from_live_workers() {
    const WORKERS: u64 = 3;
    const ROUNDS: u64 = 200;

    let esys = EpochSys::format(
        PmemPool::new(PmemConfig::strict_for_test(64 << 20)),
        EsysConfig {
            persist: PersistStrategy::Buffered(2),
            ..Default::default()
        },
    );
    let map = MontageHashMap::<Key>::new(esys.clone(), tags::HASHMAP, 256);

    std::thread::scope(|s| {
        for w in 0..WORKERS {
            let map = &map;
            let esys = &esys;
            s.spawn(move || {
                let tid = esys.register_thread();
                for r in 0..ROUNDS {
                    map.put(tid, key(w * ROUNDS + r), &[r as u8; 16]);
                    if r % 32 == 31 {
                        esys.sync();
                    }
                }
            });
        }
    });

    esys.sync();
    let rec = montage::recovery::recover(esys.pool().crash(), EsysConfig::default(), 4);
    let map2 = MontageHashMap::<Key>::recover(rec.esys.clone(), tags::HASHMAP, 256, &rec);
    assert_eq!(map2.len() as u64, WORKERS * ROUNDS);
}
