//! Durable-linearizability acceptance tests: record timestamped
//! invoke/response histories from *real concurrent runs* of the Montage
//! hashmap and queue, and feed them to the Wing&Gong-style checker in
//! `montage_suite::history`.
//!
//! Three layers, with fixed seeds throughout:
//!
//! 1. **Live map runs** — several threads hammer a small key space; each
//!    per-key projection of the merged history must linearize against a
//!    register model (map ops touch exactly one key, so the map is
//!    linearizable iff every projection is). 20 runs × 8 keys ⇒ 160
//!    checked histories.
//! 2. **Live queue runs** — whole-history FIFO checking (queues don't
//!    decompose), with unique values so matches are exact.
//! 3. **Crash-cut runs** — a coordinator thread advances the epoch clock
//!    and snapshots the durable image (`pool.crash()`) mid-run while the
//!    workers finish cleanly, so the full history has every response.
//!    Recovery must then linearize to a prefix cut at an epoch boundary:
//!    ops that completed by the recovery cutoff must survive, ops that
//!    began after it must not, and straddlers may fall either way.
//!    24 map runs + 8 queue runs ⇒ 32 crash-cut histories.
//!
//! The acceptance bar (≥100 histories, ≥20 crash-cut, zero violations) is
//! asserted explicitly in each test.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Duration;

use montage::{EpochSys, EsysConfig};
use montage_ds::{MontageHashMap, MontageQueue, MontageSortedList};
use montage_suite::history::{
    check_durable_prefix, check_linearizable, classify_by_epoch, Durability, FifoQueue, MapOp,
    MapRet, OpRecord, OrderedMap, QueueOp, Recorder, RegOp, RegRet, Register,
};
use pmem::{PmemConfig, PmemPool};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

type Key = [u8; 32];

const MTAG: u16 = 3;
const QTAG: u16 = 2;
const NBUCKETS: usize = 8;
const KEY_SPACE: u64 = 8;

fn key(i: u64) -> Key {
    let mut k = [0u8; 32];
    k[..8].copy_from_slice(&i.to_le_bytes());
    k
}

fn fresh_esys() -> Arc<EpochSys> {
    let pool = PmemPool::new(PmemConfig::strict_for_test(8 << 20));
    EpochSys::format(pool, EsysConfig::default())
}

fn parse_u64(v: &[u8]) -> u64 {
    let mut b = [0u8; 8];
    b.copy_from_slice(&v[..8]);
    u64::from_le_bytes(b)
}

/// Projects a merged `(key, op)` history onto one key.
fn project(history: &[OpRecord<(u64, RegOp), RegRet>], k: u64) -> Vec<OpRecord<RegOp, RegRet>> {
    history
        .iter()
        .filter(|r| r.op.0 == k)
        .map(|r| OpRecord {
            thread: r.thread,
            invoke: r.invoke,
            response: r.response,
            epoch_lo: r.epoch_lo,
            epoch_hi: r.epoch_hi,
            op: r.op.1,
            ret: r.ret,
        })
        .collect()
}

/// Runs `threads` workers over a shared Montage map, each performing `ops`
/// random single-key operations, and returns the merged history.
fn record_map_run(
    esys: &Arc<EpochSys>,
    map: &MontageHashMap<Key>,
    seed: u64,
    threads: usize,
    ops: usize,
    track_epochs: bool,
    op_delay: Option<Duration>,
) -> Vec<OpRecord<(u64, RegOp), RegRet>> {
    let clock = Recorder::<(u64, RegOp), RegRet>::shared_clock();
    let mut merged = Vec::new();
    std::thread::scope(|s| {
        let handles: Vec<_> = (0..threads)
            .map(|t| {
                let clock = Arc::clone(&clock);
                let esys = Arc::clone(esys);
                s.spawn(move || {
                    let tid = esys.register_thread();
                    let mut rng = SmallRng::seed_from_u64(seed ^ (t as u64).wrapping_mul(0x9E37));
                    let mut rec = Recorder::new(clock, t);
                    let epoch = |esys: &Arc<EpochSys>| {
                        let esys = Arc::clone(esys);
                        move || {
                            if track_epochs {
                                esys.curr_epoch()
                            } else {
                                0
                            }
                        }
                    };
                    for i in 0..ops {
                        let k = rng.gen_range(0..KEY_SPACE);
                        let v = (t * ops + i) as u64 + 1;
                        match rng.gen_range(0u32..10) {
                            0..=4 => rec.record((k, RegOp::Put(v)), epoch(&esys), || {
                                RegRet::Existed(map.put(tid, key(k), &v.to_le_bytes()))
                            }),
                            5..=7 => rec.record((k, RegOp::Get), epoch(&esys), || {
                                RegRet::Value(map.get_owned(tid, &key(k)).map(|b| parse_u64(&b)))
                            }),
                            _ => rec.record((k, RegOp::Del), epoch(&esys), || {
                                RegRet::Existed(map.remove(tid, &key(k)))
                            }),
                        }
                        if let Some(d) = op_delay {
                            std::thread::sleep(d);
                        }
                    }
                    esys.unregister_thread(tid);
                    rec.ops
                })
            })
            .collect();
        for h in handles {
            merged.extend(h.join().expect("worker panicked"));
        }
    });
    merged
}

/// Layer 1: per-key projections of live concurrent map runs all linearize.
/// 20 seeded runs × 8 keys ⇒ 160 checked histories (well past the 100-history
/// acceptance floor even before the queue and crash-cut layers).
#[test]
fn live_concurrent_map_histories_linearize() {
    let mut checked = 0usize;
    for seed in 0..20u64 {
        let esys = fresh_esys();
        let map = MontageHashMap::<Key>::new(esys.clone(), MTAG, NBUCKETS);
        let history = record_map_run(&esys, &map, 0xAB5EED ^ seed, 3, 18, false, None);
        assert_eq!(history.len(), 3 * 18);
        for k in 0..KEY_SPACE {
            let proj = project(&history, k);
            if proj.is_empty() {
                continue;
            }
            check_linearizable::<Register>(&proj)
                .unwrap_or_else(|e| panic!("seed {seed}, key {k}: {e}\nhistory: {proj:#?}"));
            checked += 1;
        }
    }
    assert!(
        checked >= 100,
        "need at least 100 checked histories, got {checked}"
    );
}

/// Layer 2: live concurrent queue runs linearize as whole histories against
/// the FIFO model. Values are globally unique per run so every dequeue
/// return pins its matching enqueue.
#[test]
fn live_concurrent_queue_histories_linearize() {
    for seed in 0..10u64 {
        let esys = fresh_esys();
        let q = MontageQueue::new(esys.clone(), QTAG);
        let clock = Recorder::<QueueOp, Option<u64>>::shared_clock();
        let next_val = AtomicU64::new(1);
        let mut merged: Vec<OpRecord<QueueOp, Option<u64>>> = Vec::new();
        std::thread::scope(|s| {
            let handles: Vec<_> = (0..2)
                .map(|t| {
                    let clock = Arc::clone(&clock);
                    let esys = Arc::clone(&esys);
                    let q = &q;
                    let next_val = &next_val;
                    s.spawn(move || {
                        let tid = esys.register_thread();
                        let mut rng = SmallRng::seed_from_u64(0xF1F0 ^ seed ^ (t as u64) << 17);
                        let mut rec = Recorder::new(clock, t);
                        for _ in 0..12 {
                            if rng.gen_range(0u32..10) < 6 {
                                let v = next_val.fetch_add(1, Ordering::Relaxed);
                                rec.record(
                                    QueueOp::Enq(v),
                                    || 0,
                                    || {
                                        q.enqueue(tid, &v.to_le_bytes());
                                        None
                                    },
                                );
                            } else {
                                rec.record(
                                    QueueOp::Deq,
                                    || 0,
                                    || q.dequeue(tid).map(|b| parse_u64(&b)),
                                );
                            }
                        }
                        esys.unregister_thread(tid);
                        rec.ops
                    })
                })
                .collect();
            for h in handles {
                merged.extend(h.join().expect("worker panicked"));
            }
        });
        check_linearizable::<FifoQueue>(&merged)
            .unwrap_or_else(|e| panic!("seed {seed}: {e}\nhistory: {merged:#?}"));
    }
}

/// Runs a concurrent map workload while a coordinator advances the epoch
/// clock and snapshots the durable image mid-run; returns the *complete*
/// history (every op has a response — the snapshot is a clone, the live
/// pool is undisturbed) plus the crashed image.
type MapHistory = Vec<OpRecord<(u64, RegOp), RegRet>>;

fn record_crashed_map_run(seed: u64) -> (MapHistory, PmemPool) {
    let esys = fresh_esys();
    let map = MontageHashMap::<Key>::new(esys.clone(), MTAG, NBUCKETS);
    let snapshot: Mutex<Option<PmemPool>> = Mutex::new(None);
    let crash_tick = 4 + seed % 8;
    let mut history = Vec::new();
    std::thread::scope(|s| {
        let esys2 = Arc::clone(&esys);
        let snapshot = &snapshot;
        s.spawn(move || {
            for tick in 0..16u64 {
                std::thread::sleep(Duration::from_micros(300));
                esys2.advance_epoch();
                if tick == crash_tick {
                    *snapshot.lock().unwrap() = Some(esys2.pool().crash());
                }
            }
        });
        history = record_map_run(
            &esys,
            &map,
            0xDEAD ^ seed,
            2,
            24,
            true,
            Some(Duration::from_micros(150)),
        );
    });
    let crashed = snapshot.lock().unwrap().take().expect("snapshot taken");
    (history, crashed)
}

/// Layer 3 (the durable extension): recovered state after a mid-run crash
/// must linearize against a prefix of the history cut at an epoch boundary.
/// 24 crash-cut histories, each checked per key with the epoch-derived
/// must-include / must-exclude sets.
#[test]
fn crashed_map_runs_linearize_to_an_epoch_cut_prefix() {
    let mut crash_histories = 0usize;
    let mut must_include_total = 0usize;
    let mut must_exclude_total = 0usize;
    for seed in 0..24u64 {
        let (history, crashed) = record_crashed_map_run(seed);
        let rec = montage::try_recover(crashed, EsysConfig::default(), 1)
            .unwrap_or_else(|e| panic!("seed {seed}: recovery failed: {e}"));
        assert!(
            rec.report.quarantined.is_empty(),
            "seed {seed}: clean crash quarantined payloads"
        );
        let rmap = MontageHashMap::<Key>::recover(rec.esys.clone(), MTAG, NBUCKETS, &rec);
        let rtid = rec.esys.register_thread();
        // Recovery resumes the clock two epochs past the durable value, and
        // the cutoff is two below it: everything ≤ curr − 4 survived.
        let cutoff = rec.esys.curr_epoch() - 4;

        let durability = classify_by_epoch(&history, cutoff);
        must_include_total += durability
            .iter()
            .filter(|d| **d == Durability::MustInclude)
            .count();
        must_exclude_total += durability
            .iter()
            .filter(|d| **d == Durability::MustExclude)
            .count();

        for k in 0..KEY_SPACE {
            let proj = project(&history, k);
            if proj.is_empty() {
                continue;
            }
            let dproj: Vec<Durability> = history
                .iter()
                .zip(&durability)
                .filter(|(r, _)| r.op.0 == k)
                .map(|(_, d)| *d)
                .collect();
            let target = Register {
                value: rmap.get_owned(rtid, &key(k)).map(|b| parse_u64(&b)),
            };
            check_durable_prefix(&proj, &dproj, &target).unwrap_or_else(|e| {
                panic!(
                    "seed {seed}, key {k}, cutoff {cutoff}: {e}\n\
                     recovered {target:?}\nhistory: {proj:#?}\nclasses: {dproj:?}"
                )
            });
        }
        crash_histories += 1;
    }
    assert!(
        crash_histories >= 20,
        "need at least 20 crash-cut histories, got {crash_histories}"
    );
    // The sweep must actually exercise both sides of the cut somewhere —
    // otherwise the epoch classification is vacuous.
    assert!(
        must_include_total > 0,
        "no op ever classified must-include: crash snapshots fired too early"
    );
    assert!(
        must_exclude_total > 0,
        "no op ever classified must-exclude: crash snapshots fired too late"
    );
}

// ---- resize + scan layers (ISSUE 9) ------------------------------------
//
// Layer 4: live map runs that cross ≥1 online resize mid-history — the
// resize must be invisible to linearizability (25 runs × per-key checks).
// Layer 5: sorted-list runs where threads interleave put/remove/get with
// consistent range scans, checked as WHOLE histories against the
// OrderedMap model (scans couple keys, so no per-key decomposition).
// Layer 6: buffered crash cuts of both — resize in flight at the snapshot,
// and scan histories cut at an epoch boundary.
// 25 + 20 + 15 + 10 = 70 recorded resize/scan histories (≥ 50 required).

/// Layer 4: histories recorded *across* online resizes still linearize
/// per key. Tiny initial table + max_load 1 forces several resizes inside
/// every run; writers migrate buckets mid-op (help-on-lookup), readers
/// race the directory swap.
#[test]
fn map_histories_across_online_resizes_linearize() {
    let mut checked = 0usize;
    let mut resized_runs = 0usize;
    for seed in 0..25u64 {
        let esys = fresh_esys();
        let map = MontageHashMap::<Key>::with_max_load(esys.clone(), MTAG, 2, 1);
        let history = record_map_run(&esys, &map, 0x5E12E ^ seed, 3, 24, false, None);
        assert_eq!(history.len(), 3 * 24);
        if map.resizes_completed() >= 1 || map.resizing() {
            resized_runs += 1;
        }
        for k in 0..KEY_SPACE {
            let proj = project(&history, k);
            if proj.is_empty() {
                continue;
            }
            check_linearizable::<Register>(&proj).unwrap_or_else(|e| {
                panic!("seed {seed}, key {k} (mid-resize): {e}\nhistory: {proj:#?}")
            });
            checked += 1;
        }
    }
    assert!(
        resized_runs >= 20,
        "resize trigger too lazy: only {resized_runs}/25 runs resized"
    );
    assert!(checked >= 100, "checked only {checked} projections");
}

/// Records one concurrent sorted-list run mixing mutations with consistent
/// range scans; returns the merged whole-history record.
fn record_scan_run(
    esys: &Arc<EpochSys>,
    list: &MontageSortedList<u64>,
    seed: u64,
    threads: usize,
    ops: usize,
    track_epochs: bool,
) -> Vec<OpRecord<MapOp, MapRet>> {
    const SCAN_KEYS: u64 = 6;
    let clock = Recorder::<MapOp, MapRet>::shared_clock();
    let mut merged = Vec::new();
    std::thread::scope(|s| {
        let handles: Vec<_> = (0..threads)
            .map(|t| {
                let clock = Arc::clone(&clock);
                let esys = Arc::clone(esys);
                s.spawn(move || {
                    let tid = esys.register_thread();
                    let mut rng = SmallRng::seed_from_u64(seed ^ (t as u64).wrapping_mul(0x51AB));
                    let mut rec = Recorder::new(clock, t);
                    let epoch = |esys: &Arc<EpochSys>| {
                        let esys = Arc::clone(esys);
                        move || if track_epochs { esys.curr_epoch() } else { 0 }
                    };
                    for i in 0..ops {
                        let k = rng.gen_range(0..SCAN_KEYS);
                        let v = (t * ops + i) as u64 + 1;
                        match rng.gen_range(0u32..10) {
                            0..=3 => rec.record(MapOp::Put(k, v), epoch(&esys), || {
                                MapRet::Existed(list.put(tid, k, &v.to_le_bytes()))
                            }),
                            4..=5 => rec.record(MapOp::Del(k), epoch(&esys), || {
                                MapRet::Existed(list.remove(tid, &k))
                            }),
                            6..=7 => rec.record(MapOp::Get(k), epoch(&esys), || {
                                MapRet::Value(list.get_owned(tid, &k).map(|b| parse_u64(&b)))
                            }),
                            _ => {
                                let lo = rng.gen_range(0..SCAN_KEYS);
                                let hi = rng.gen_range(lo..SCAN_KEYS);
                                rec.record(MapOp::Scan(lo, hi), epoch(&esys), || {
                                    MapRet::Snapshot(
                                        list.range(tid, &lo, &hi)
                                            .into_iter()
                                            .map(|(k, v)| (k, parse_u64(&v)))
                                            .collect(),
                                    )
                                })
                            }
                        }
                    }
                    esys.unregister_thread(tid);
                    rec.ops
                })
            })
            .collect();
        for h in handles {
            merged.extend(h.join().expect("worker panicked"));
        }
    });
    merged
}

/// Layer 5: concurrent sorted-list histories with range scans linearize as
/// whole histories — every scan return must be a consistent cut. 20 seeded
/// runs, 3 threads each, every run containing at least one scan.
#[test]
fn live_scan_histories_are_consistent_cuts() {
    let mut scans_total = 0usize;
    for seed in 0..20u64 {
        let esys = fresh_esys();
        let list = MontageSortedList::<u64>::new(esys.clone(), montage_ds::tags::SORTED_LIST);
        let history = record_scan_run(&esys, &list, 0x5CA0 ^ seed, 3, 8, false);
        assert_eq!(history.len(), 3 * 8);
        scans_total += history
            .iter()
            .filter(|r| matches!(r.op, MapOp::Scan(..)))
            .count();
        check_linearizable::<OrderedMap>(&history)
            .unwrap_or_else(|e| panic!("seed {seed}: {e}\nhistory: {history:#?}"));
    }
    assert!(
        scans_total >= 20,
        "scan mix too thin: {scans_total} scans across 20 runs"
    );
}

/// Layer 6a: crash cuts taken **while a resize is in flight**. The
/// workload drives a tiny map through repeated growth; the coordinator
/// snapshots mid-run. Per-key recovered state must be a legal epoch-cut
/// prefix — resize metadata must never bleed into key visibility.
#[test]
fn crashed_mid_resize_runs_linearize_to_an_epoch_cut_prefix() {
    let mut crash_histories = 0usize;
    let mut resizing_at_crash = 0usize;
    for seed in 0..15u64 {
        let esys = fresh_esys();
        let map = MontageHashMap::<Key>::with_max_load(esys.clone(), MTAG, 2, 1);
        let snapshot: Mutex<Option<PmemPool>> = Mutex::new(None);
        let crash_tick = 3 + seed % 8;
        let mut history = Vec::new();
        std::thread::scope(|s| {
            let esys2 = Arc::clone(&esys);
            let snapshot = &snapshot;
            s.spawn(move || {
                for tick in 0..16u64 {
                    std::thread::sleep(Duration::from_micros(300));
                    esys2.advance_epoch();
                    if tick == crash_tick {
                        *snapshot.lock().unwrap() = Some(esys2.pool().crash());
                    }
                }
            });
            history = record_map_run(
                &esys,
                &map,
                0x2E512E ^ seed,
                2,
                24,
                true,
                Some(Duration::from_micros(150)),
            );
        });
        let crashed = snapshot.lock().unwrap().take().expect("snapshot taken");

        let rec = montage::try_recover(crashed, EsysConfig::default(), 1)
            .unwrap_or_else(|e| panic!("seed {seed}: recovery failed: {e}"));
        assert!(
            rec.report.quarantined.is_empty(),
            "seed {seed}: clean crash quarantined payloads"
        );
        let rmap = MontageHashMap::<Key>::recover(rec.esys.clone(), MTAG, 2, &rec);
        assert!(!rmap.resizing(), "recovery left a resize in flight");
        if rmap.capacity() > 2 {
            resizing_at_crash += 1; // a durable descriptor rolled us forward
        }
        let rtid = rec.esys.register_thread();
        let cutoff = rec.esys.curr_epoch() - 4;
        let durability = classify_by_epoch(&history, cutoff);
        for k in 0..KEY_SPACE {
            let proj = project(&history, k);
            if proj.is_empty() {
                continue;
            }
            let dproj: Vec<Durability> = history
                .iter()
                .zip(&durability)
                .filter(|(r, _)| r.op.0 == k)
                .map(|(_, d)| *d)
                .collect();
            let target = Register {
                value: rmap.get_owned(rtid, &key(k)).map(|b| parse_u64(&b)),
            };
            check_durable_prefix(&proj, &dproj, &target).unwrap_or_else(|e| {
                panic!(
                    "seed {seed}, key {k}, cutoff {cutoff} (mid-resize cut): {e}\n\
                     recovered {target:?}\nhistory: {proj:#?}\nclasses: {dproj:?}"
                )
            });
        }
        crash_histories += 1;
    }
    assert_eq!(crash_histories, 15);
    // The sweep must actually catch durable resize descriptors sometimes,
    // or the "mid-resize" label is vacuous.
    assert!(
        resizing_at_crash >= 3,
        "only {resizing_at_crash}/15 cuts caught a rolled-forward geometry"
    );
}

/// Layer 6b: buffered crash cuts of scan histories. Single recording
/// thread (whole-history durable checks stay tractable), epoch advances
/// interleaved; the recovered list's full contents must be a legal
/// epoch-cut prefix of a history that *includes* `Scan` ops.
#[test]
fn crashed_scan_runs_linearize_to_an_epoch_cut_prefix() {
    for seed in 0..10u64 {
        let esys = fresh_esys();
        let list = MontageSortedList::<u64>::new(esys.clone(), montage_ds::tags::SORTED_LIST);
        let tid = esys.register_thread();
        let clock = Recorder::<MapOp, MapRet>::shared_clock();
        let mut rec = Recorder::new(Arc::clone(&clock), 0);
        let mut rng = SmallRng::seed_from_u64(0x5CACC ^ seed);
        let crash_at = 8 + (seed as usize % 8) * 2;
        let mut crashed: Option<PmemPool> = None;
        for i in 0..26usize {
            if i % 3 == 0 {
                esys.advance_epoch();
            }
            if i == crash_at {
                crashed = Some(esys.pool().crash());
            }
            let e = || esys.curr_epoch();
            let k = rng.gen_range(0..5u64);
            let v = i as u64 + 1;
            match rng.gen_range(0u32..10) {
                0..=4 => rec.record(MapOp::Put(k, v), e, || {
                    MapRet::Existed(list.put(tid, k, &v.to_le_bytes()))
                }),
                5..=6 => rec.record(MapOp::Del(k), e, || MapRet::Existed(list.remove(tid, &k))),
                _ => rec.record(MapOp::Scan(0, 9), e, || {
                    MapRet::Snapshot(
                        list.range(tid, &0, &9)
                            .into_iter()
                            .map(|(k, v)| (k, parse_u64(&v)))
                            .collect(),
                    )
                }),
            }
        }
        let crashed = crashed.expect("snapshot taken");
        let history = rec.ops;

        let recd = montage::try_recover(crashed, EsysConfig::default(), 1)
            .unwrap_or_else(|e| panic!("seed {seed}: recovery failed: {e}"));
        let rlist = MontageSortedList::<u64>::recover(
            recd.esys.clone(),
            montage_ds::tags::SORTED_LIST,
            &recd,
        );
        let rtid = recd.esys.register_thread();
        let cutoff = recd.esys.curr_epoch() - 4;
        let target = OrderedMap {
            entries: rlist
                .range(rtid, &0, &u64::MAX)
                .into_iter()
                .map(|(k, v)| (k, parse_u64(&v)))
                .collect(),
        };
        let durability = classify_by_epoch(&history, cutoff);
        check_durable_prefix(&history, &durability, &target).unwrap_or_else(|e| {
            panic!(
                "seed {seed}, cutoff {cutoff}: {e}\nrecovered {target:?}\n\
                 history: {history:#?}\nclasses: {durability:?}"
            )
        });
    }
}

/// Queue flavour of the durable check: single recording thread (queues need
/// whole-history checking, so we keep the search small), epoch advances
/// interleaved with ops, snapshot mid-run, then the recovered queue contents
/// must equal the model after an epoch-cut prefix.
#[test]
fn crashed_queue_runs_linearize_to_an_epoch_cut_prefix() {
    for seed in 0..8u64 {
        let esys = fresh_esys();
        let q = MontageQueue::new(esys.clone(), QTAG);
        let tid = esys.register_thread();
        let clock = Recorder::<QueueOp, Option<u64>>::shared_clock();
        let mut rec = Recorder::new(Arc::clone(&clock), 0);
        let mut rng = SmallRng::seed_from_u64(0x0DDB1_u64 ^ seed);
        let mut next_val = 1u64;
        let crash_at = 10 + (seed as usize % 8) * 2;
        let mut crashed: Option<PmemPool> = None;
        for i in 0..28usize {
            if i % 3 == 0 {
                esys.advance_epoch();
            }
            if i == crash_at {
                crashed = Some(esys.pool().crash());
            }
            let e = || esys.curr_epoch();
            if rng.gen_range(0u32..10) < 6 {
                let v = next_val;
                next_val += 1;
                rec.record(QueueOp::Enq(v), e, || {
                    q.enqueue(tid, &v.to_le_bytes());
                    None
                });
            } else {
                rec.record(QueueOp::Deq, e, || q.dequeue(tid).map(|b| parse_u64(&b)));
            }
        }
        let crashed = crashed.expect("snapshot taken");
        let history = rec.ops;

        let recd = montage::try_recover(crashed, EsysConfig::default(), 1)
            .unwrap_or_else(|e| panic!("seed {seed}: recovery failed: {e}"));
        let rq = MontageQueue::recover(recd.esys.clone(), QTAG, &recd);
        let rtid = recd.esys.register_thread();
        let cutoff = recd.esys.curr_epoch() - 4;

        let mut target = FifoQueue::default();
        while let Some(v) = rq.dequeue(rtid) {
            target.items.push_back(parse_u64(&v));
        }

        let durability = classify_by_epoch(&history, cutoff);
        check_durable_prefix(&history, &durability, &target).unwrap_or_else(|e| {
            panic!(
                "seed {seed}, cutoff {cutoff}: {e}\nrecovered {target:?}\n\
                 history: {history:#?}\nclasses: {durability:?}"
            )
        });
    }
}
