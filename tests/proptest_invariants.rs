//! Property-based tests (proptest) on the core invariants.

use std::collections::{HashMap, VecDeque};

use montage::{EpochSys, EsysConfig};
use montage_ds::{tags, MontageHashMap, MontageQueue};
use pmem::{PmemConfig, PmemPool};
use proptest::prelude::*;
use ralloc::Ralloc;

type Key = [u8; 32];

fn key(i: u64) -> Key {
    let mut k = [0u8; 32];
    k[..8].copy_from_slice(&i.to_le_bytes());
    k
}

fn strict_sys(mb: usize) -> std::sync::Arc<EpochSys> {
    EpochSys::format(
        PmemPool::new(PmemConfig::strict_for_test(mb << 20)),
        EsysConfig::default(),
    )
}

#[derive(Clone, Debug)]
enum MapOp {
    Put(u8, u8),
    Remove(u8),
    Advance,
}

fn map_op_strategy() -> impl Strategy<Value = MapOp> {
    prop_oneof![
        3 => (any::<u8>(), any::<u8>()).prop_map(|(k, v)| MapOp::Put(k % 24, v)),
        2 => any::<u8>().prop_map(|k| MapOp::Remove(k % 24)),
        1 => Just(MapOp::Advance),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 24, .. ProptestConfig::default() })]

    /// Synced state always recovers exactly (the oracle), regardless of the
    /// interleaving of puts/removes/epoch advances.
    #[test]
    fn map_recovery_matches_oracle(ops in proptest::collection::vec(map_op_strategy(), 1..120)) {
        let s = strict_sys(32);
        let map = MontageHashMap::<Key>::new(s.clone(), tags::HASHMAP, 32);
        let tid = s.register_thread();
        let mut oracle: HashMap<u64, Vec<u8>> = HashMap::new();
        for op in &ops {
            match *op {
                MapOp::Put(k, v) => {
                    map.put(tid, key(k as u64), &[v; 8]);
                    oracle.insert(k as u64, vec![v; 8]);
                }
                MapOp::Remove(k) => {
                    map.remove(tid, &key(k as u64));
                    oracle.remove(&(k as u64));
                }
                MapOp::Advance => s.advance_epoch(),
            }
        }
        s.sync();
        let rec = montage::recovery::recover(s.pool().crash(), EsysConfig::default(), 1);
        let map2 = MontageHashMap::<Key>::recover(rec.esys.clone(), tags::HASHMAP, 32, &rec);
        let tid2 = rec.esys.register_thread();
        prop_assert_eq!(map2.len(), oracle.len());
        for (k, v) in &oracle {
            let got = map2.get_owned(tid2, &key(*k));
            prop_assert_eq!(got.as_ref(), Some(v));
        }
    }

    /// Queue recovery equals the oracle FIFO after an arbitrary synced
    /// history, and drains in order.
    #[test]
    fn queue_recovery_matches_oracle(ops in proptest::collection::vec(any::<bool>(), 1..150)) {
        let s = strict_sys(32);
        let q = MontageQueue::new(s.clone(), tags::QUEUE);
        let tid = s.register_thread();
        let mut oracle: VecDeque<u32> = VecDeque::new();
        for (i, enq) in ops.iter().enumerate() {
            if *enq {
                q.enqueue(tid, &(i as u32).to_le_bytes());
                oracle.push_back(i as u32);
            } else {
                let got = q.dequeue(tid);
                let expect = oracle.pop_front();
                prop_assert_eq!(got.is_some(), expect.is_some());
            }
            if i % 17 == 0 {
                s.advance_epoch();
            }
        }
        s.sync();
        let rec = montage::recovery::recover(s.pool().crash(), EsysConfig::default(), 1);
        let q2 = MontageQueue::recover(rec.esys.clone(), tags::QUEUE, &rec);
        let tid2 = rec.esys.register_thread();
        prop_assert_eq!(q2.len(), oracle.len());
        while let Some(expect) = oracle.pop_front() {
            let got = q2.dequeue(tid2).unwrap();
            prop_assert_eq!(got, expect.to_le_bytes().to_vec());
        }
    }

    /// Allocator: live blocks never overlap and always satisfy the request,
    /// under arbitrary alloc/free interleavings.
    #[test]
    fn ralloc_no_overlap(script in proptest::collection::vec((1usize..5000, any::<bool>()), 1..200)) {
        let r = Ralloc::format(PmemPool::new(PmemConfig { size: 32 << 20, ..Default::default() }));
        let mut live: Vec<(u64, u64)> = Vec::new(); // (start, end)
        for (size, free_one) in script {
            let off = r.alloc(size);
            let end = off.raw() + r.usable_size(off) as u64;
            prop_assert!(r.usable_size(off) >= size);
            for &(s0, e0) in &live {
                prop_assert!(off.raw() >= e0 || end <= s0, "overlap");
            }
            live.push((off.raw(), end));
            if free_one && live.len() > 1 {
                let (s0, _) = live.swap_remove(live.len() / 2);
                r.dealloc(pmem::POff::new(s0));
            }
        }
    }

    /// Zipfian samples stay in range for arbitrary n and theta.
    #[test]
    fn zipfian_in_range(n in 1u64..10_000, theta in 0.01f64..0.999, seed in any::<u64>()) {
        use rand::SeedableRng;
        let z = workloads::zipfian::Zipfian::new(n, theta);
        let mut rng = rand::rngs::SmallRng::seed_from_u64(seed);
        for _ in 0..200 {
            prop_assert!(z.sample(&mut rng) < n);
            prop_assert!(z.sample_scrambled(&mut rng) < n);
        }
    }

    /// Payload algebra: after arbitrary set/advance interleavings, the last
    /// written value is what reads observe, and uid stays fixed across
    /// copy-on-write.
    #[test]
    fn payload_set_last_write_wins(writes in proptest::collection::vec((any::<u64>(), any::<bool>()), 1..60)) {
        let s = strict_sys(16);
        let tid = s.register_thread();
        let mut h = {
            let g = s.begin_op(tid);
            s.pnew(&g, 0, &0u64)
        };
        let mut last = 0u64;
        for (v, advance) in writes {
            if advance {
                s.advance_epoch();
            }
            let g = s.begin_op(tid);
            h = s.set(&g, h, |slot| *slot = v).unwrap();
            last = v;
            prop_assert_eq!(s.read(&g, h).unwrap(), last);
        }
        let g = s.begin_op(tid);
        prop_assert_eq!(s.read(&g, h).unwrap(), last);
    }

    /// Skip-list recovery equals a sorted-map oracle for arbitrary synced
    /// histories (and iteration stays sorted).
    #[test]
    fn skiplist_recovery_matches_oracle(ops in proptest::collection::vec((any::<u8>(), any::<u8>()), 1..100)) {
        use montage_ds::MontageSkipListMap;
        let s = strict_sys(32);
        let m = MontageSkipListMap::<u64>::new(s.clone(), 8);
        let tid = s.register_thread();
        let mut oracle = std::collections::BTreeMap::new();
        for (i, (k, action)) in ops.iter().enumerate() {
            let k = (*k % 32) as u64;
            match action % 3 {
                0 => {
                    if m.insert(tid, k, &[*action; 4]) {
                        oracle.insert(k, vec![*action; 4]);
                    }
                }
                1 => {
                    m.remove(tid, &k);
                    oracle.remove(&k);
                }
                _ => {
                    if m.update(tid, &k, &[*action; 4]) {
                        oracle.insert(k, vec![*action; 4]);
                    }
                }
            }
            if i % 13 == 0 {
                s.advance_epoch();
            }
        }
        s.sync();
        let rec = montage::recovery::recover(s.pool().crash(), EsysConfig::default(), 1);
        let m2 = MontageSkipListMap::<u64>::recover(rec.esys.clone(), 8, &rec);
        let tid2 = rec.esys.register_thread();
        prop_assert_eq!(m2.len(), oracle.len());
        prop_assert_eq!(m2.keys(), oracle.keys().copied().collect::<Vec<_>>());
        for (k, v) in &oracle {
            let got = m2.get(tid2, k, |b| b.to_vec());
            prop_assert_eq!(got.as_ref(), Some(v));
        }
    }

    /// Stack recovery equals a Vec oracle (LIFO preserved) for arbitrary
    /// synced histories.
    #[test]
    fn stack_recovery_matches_oracle(ops in proptest::collection::vec(any::<bool>(), 1..120)) {
        use montage_ds::MontageStack;
        let s = strict_sys(32);
        let st = MontageStack::new(s.clone(), 9);
        let tid = s.register_thread();
        let mut oracle: Vec<u32> = Vec::new();
        for (i, push) in ops.iter().enumerate() {
            if *push {
                st.push(tid, &(i as u32).to_le_bytes());
                oracle.push(i as u32);
            } else {
                let got = st.pop(tid);
                let expect = oracle.pop();
                prop_assert_eq!(got.is_some(), expect.is_some());
            }
            if i % 19 == 0 {
                s.advance_epoch();
            }
        }
        s.sync();
        let rec = montage::recovery::recover(s.pool().crash(), EsysConfig::default(), 1);
        let st2 = MontageStack::recover(rec.esys.clone(), 9, &rec);
        let tid2 = rec.esys.register_thread();
        while let Some(expect) = oracle.pop() {
            let got = st2.pop(tid2).unwrap();
            prop_assert_eq!(got, expect.to_le_bytes().to_vec());
        }
        prop_assert!(st2.pop(tid2).is_none());
    }

    /// Graph dataset generator: structurally valid for arbitrary sizes.
    #[test]
    fn graphgen_valid(v in 10u64..500, epv in 1u32..8, seed in any::<u64>()) {
        let ds = workloads::graphgen::GraphDataset::generate(workloads::graphgen::GraphGenConfig {
            vertices: v,
            edges_per_vertex: epv,
            seed,
            partitions: 3,
        });
        for part in &ds.partitions {
            for &(a, b) in part {
                prop_assert!(a != b);
                prop_assert!((a as u64) < v && (b as u64) < v);
            }
        }
        // Round-trip through the binary format.
        for p in 0..3 {
            let enc = ds.encode_partition(p);
            prop_assert_eq!(
                workloads::graphgen::GraphDataset::decode_partition(&enc),
                ds.partitions[p].clone()
            );
        }
    }
}

// ---- key→shard router properties --------------------------------------------

use kvstore::{make_key, ShardRouter, ShardedKvStore};
use workloads::Zipfian;

proptest! {
    /// Routing is a pure function of (key, shard count): two independently
    /// constructed routers — e.g. before and after a server restart — agree
    /// on every key, and always stay in range.
    #[test]
    fn router_assignment_is_stable_across_restarts(
        keys in proptest::collection::vec(any::<u64>(), 1..64),
        n_shards in 1usize..16,
    ) {
        let before = ShardRouter::new(n_shards);
        let after = ShardRouter::new(n_shards);
        for k in keys {
            let key = make_key(k);
            let s = before.route(&key);
            prop_assert!(s < n_shards);
            prop_assert_eq!(s, after.route(&key), "restart changed the route");
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 4, .. ProptestConfig::default() })]

    /// Shard load stays within 2× of ideal under a Zipfian key-popularity
    /// skew (YCSB's default, θ = 0.99): the hottest key carries ~13% of all
    /// ops, so per-*key* balance is impossible — but hashing must keep any
    /// single shard from absorbing the skew twice over.
    #[test]
    fn router_spreads_zipfian_load_within_2x_of_ideal(seed in any::<u64>()) {
        const N_SHARDS: usize = 4;
        const SAMPLES: usize = 8_000;
        let router = ShardRouter::new(N_SHARDS);
        let zipf = Zipfian::new(1024, 0.99);
        let mut rng = SmallRng::seed_from_u64(seed);
        let mut per_shard = [0usize; N_SHARDS];
        for _ in 0..SAMPLES {
            let k = zipf.sample_scrambled(&mut rng);
            per_shard[router.route(&make_key(k))] += 1;
        }
        let ideal = SAMPLES / N_SHARDS;
        for (s, &load) in per_shard.iter().enumerate() {
            prop_assert!(
                load <= 2 * ideal,
                "shard {} holds {} of {} ops (ideal {}): skew concentrated",
                s, load, SAMPLES, ideal
            );
        }
    }
}

#[derive(Clone, Debug)]
enum StoreOp {
    Set(u8, u8),
    Del(u8),
}

fn store_op_strategy() -> impl Strategy<Value = StoreOp> {
    prop_oneof![
        3 => (any::<u8>(), any::<u8>()).prop_map(|(k, v)| StoreOp::Set(k % 48, v)),
        1 => any::<u8>().prop_map(|k| StoreOp::Del(k % 48)),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 5, .. ProptestConfig::default() })]

    /// Routing/recovery round trip: the same op sequence applied to a
    /// 4-shard store and to the single-pool store, both synced, crashed and
    /// recovered, yields the same observable map — sharding changes *where*
    /// bytes live, never *what* the store contains.
    #[test]
    fn sharded_and_single_pool_stores_agree_after_recovery(
        ops in proptest::collection::vec(store_op_strategy(), 10..48),
    ) {
        let esys_cfg = EsysConfig::default();
        let mk = |n: usize| ShardedKvStore::format(
            n,
            PmemConfig::strict_for_test(4 << 20),
            esys_cfg,
            4,
            1024,
        );
        let mut recovered = Vec::new();
        for n_shards in [4usize, 1] {
            let store = mk(n_shards);
            let lease = store.lease();
            for op in &ops {
                match *op {
                    StoreOp::Set(k, v) => {
                        store.set(&lease, make_key(k as u64), &[v]).unwrap();
                    }
                    StoreOp::Del(k) => {
                        store.delete(&lease, &make_key(k as u64)).unwrap();
                    }
                }
            }
            store.sync().unwrap();
            let (store2, report) = ShardedKvStore::recover(
                store.crash_pools(),
                esys_cfg,
                4,
                1024,
                n_shards,
            );
            prop_assert!(report.is_clean(), "{report:?}");
            recovered.push(store2);
        }
        let (sharded, single) = (&recovered[0], &recovered[1]);
        prop_assert_eq!(sharded.len(), single.len());
        for k in 0..48u64 {
            let key = make_key(k);
            prop_assert_eq!(
                sharded.get(&key, |b| b.to_vec()),
                single.get(&key, |b| b.to_vec()),
                "key {} diverged between sharded and single-pool recovery", k
            );
        }
    }
}
