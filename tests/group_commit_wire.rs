//! Crash-cut acceptance for the event-driven server's group commit.
//!
//! The group-commit protocol acks a whole batch only after one shared
//! fence. The window this test aims at is the one the design note calls
//! out: the batch's payloads are applied (and sitting in their epoch's
//! write buffers) but the crash lands **before or inside the shared
//! fence**. Buffered durability then owes us an epoch-consistent cut —
//! never a torn value, never a later write without the earlier writes of
//! the same and prior batches that share its epoch.
//!
//! Mechanically this is a [`pmem_chaos::crash_sweep`]: the workload drives
//! pipelined 8-set rounds (one group commit each, `sync_every = 1`) over a
//! real socket, the sweep re-runs it with a crash injected at persistence
//! event 0, 1, 2, … and recovery is checked after every one. Each round
//! writes round number `r` to all eight keys, so the recovered state must
//! be a *cut*: every key at round `n_i`, the set of `n_i` spanning at most
//! two adjacent rounds (an epoch boundary can split one in-flight batch),
//! with the newer round held by a prefix of the batch's key order — the
//! same consistent-prefix rule the durable-linearizability checker
//! enforces, specialized to this workload's register semantics.
//!
//! Lives in the root suite because it needs `kvserver` (the wire path) and
//! `pmem-chaos` (the sweep driver) together.

use std::sync::Arc;

use kvserver::{KvServer, PipeOp, ServerConfig, WireClient};
use kvstore::{KvBackend, KvStore};
use montage::{EsysConfig, RecoveryError};
use pmem::{PmemConfig, PmemPool};
use pmem_chaos::{crash_sweep, SweepConfig};

const KEYS: usize = 8;
const ROUNDS: u64 = 10;
const NBUCKETS: usize = 8;
const CAPACITY: usize = 100_000;

fn esys_cfg() -> EsysConfig {
    EsysConfig {
        // one server worker + recovery + headroom
        max_threads: 4,
        ..Default::default()
    }
}

fn checksum(k: usize, r: u64) -> u64 {
    (k as u64).wrapping_mul(0x9E37_79B9) ^ r.wrapping_mul(0x85EB_CA6B)
}

fn value(k: usize, r: u64) -> String {
    format!("r{r}:k{k}:{}", checksum(k, r))
}

/// Drives the pipelined workload until it finishes or the injected crash
/// poisons the pool under the server (surfacing as wire errors).
fn run_workload(pool: &PmemPool) {
    let esys = montage::EpochSys::format(pool.clone(), esys_cfg());
    let store = Arc::new(KvStore::new(KvBackend::Montage(esys), NBUCKETS, CAPACITY));
    let h = KvServer::start(
        ServerConfig {
            workers: 1,
            sync_every: Some(1),
            ..Default::default()
        },
        store,
    )
    .expect("bind");
    let mut c = match WireClient::connect(h.addr()) {
        Ok(c) => c,
        Err(_) => {
            h.crash();
            return;
        }
    };
    'rounds: for r in 1..=ROUNDS {
        let vals: Vec<String> = (0..KEYS).map(|k| value(k, r)).collect();
        let keys: Vec<String> = (0..KEYS).map(|k| format!("gk{k}")).collect();
        let reqs: Vec<PipeOp> = keys
            .iter()
            .zip(&vals)
            .map(|(k, v)| PipeOp::Set(k, v.as_bytes()))
            .collect();
        if c.round(&reqs).is_err() {
            break 'rounds; // the injected crash reached the server
        }
    }
    // Crash-style stop: no final sync — the durable image stays exactly as
    // buffered durability (or the injected crash) left it.
    h.crash();
}

/// Recovery check for one crash point: the recovered image must be an
/// epoch-consistent cut of the round history.
fn verify(durable: PmemPool, crash_at: u64) -> Result<(), String> {
    let rec = match montage::try_recover(durable, esys_cfg(), 2) {
        Err(RecoveryError::UnformattedPool) => return Ok(()), // pre-format crash
        Err(e) => return Err(format!("crash_at={crash_at}: recovery failed: {e}")),
        Ok(rec) => rec,
    };
    if !rec.report.quarantined.is_empty() {
        return Err(format!(
            "crash_at={crash_at}: clean crash quarantined payloads: {:?}",
            rec.report.quarantined
        ));
    }
    let kv = Arc::new(KvStore::recover(rec.esys.clone(), NBUCKETS, CAPACITY, &rec));
    let h = match KvServer::start(ServerConfig::default(), kv) {
        Ok(h) => h,
        Err(e) => return Err(format!("crash_at={crash_at}: rebind failed: {e}")),
    };
    let mut c = WireClient::connect(h.addr())
        .map_err(|e| format!("crash_at={crash_at}: reconnect failed: {e}"))?;

    let mut rounds = [0u64; KEYS];
    for (k, slot) in rounds.iter_mut().enumerate() {
        match c
            .get(&format!("gk{k}"))
            .map_err(|e| format!("crash_at={crash_at}: get failed: {e}"))?
        {
            None => {} // round 0: this key never became durable
            Some((_, raw)) => {
                let s = String::from_utf8(raw)
                    .map_err(|_| format!("crash_at={crash_at}: torn value (not utf8)"))?;
                let mut parts = s.split(':');
                let r: u64 = parts
                    .next()
                    .and_then(|p| p.strip_prefix('r'))
                    .and_then(|p| p.parse().ok())
                    .ok_or_else(|| format!("crash_at={crash_at}: torn value {s:?}"))?;
                let kk: usize = parts
                    .next()
                    .and_then(|p| p.strip_prefix('k'))
                    .and_then(|p| p.parse().ok())
                    .ok_or_else(|| format!("crash_at={crash_at}: torn value {s:?}"))?;
                let sum: u64 = parts
                    .next()
                    .and_then(|p| p.parse().ok())
                    .ok_or_else(|| format!("crash_at={crash_at}: torn value {s:?}"))?;
                if kk != k || sum != checksum(k, r) || r == 0 || r > ROUNDS {
                    return Err(format!(
                        "crash_at={crash_at}: torn or misplaced value {s:?} under gk{k}"
                    ));
                }
                *slot = r;
            }
        }
    }
    h.shutdown();

    // The cut rule. All keys within one batch ride the same pinned epoch
    // window, so the recovered rounds span at most two adjacent values …
    let hi = rounds.iter().copied().max().unwrap();
    let lo = rounds.iter().copied().min().unwrap();
    if hi - lo > 1 {
        return Err(format!(
            "crash_at={crash_at}: rounds {rounds:?} span more than one batch boundary"
        ));
    }
    // … and when a batch is split, the epoch tick fell at one point in the
    // batch's key order: the newer round occupies a *prefix* of k0..k7.
    if hi != lo {
        let first_lo = rounds.iter().position(|&r| r == lo).unwrap();
        if rounds[first_lo..].contains(&hi) {
            return Err(format!(
                "crash_at={crash_at}: rounds {rounds:?} — newer round is not a prefix, \
                 acked batch was torn out of order"
            ));
        }
    }
    Ok(())
}

/// Acceptance: every crash point in a multi-batch group-commit run — the
/// apply-to-fence window included — recovers to an epoch-consistent cut,
/// with zero violations.
#[test]
fn group_commit_is_cut_consistent_at_every_crash_point() {
    let cfg = SweepConfig {
        // The wire workload costs a server + client per point; sample the
        // interior instead of sweeping thousands of points exhaustively.
        exhaustive_limit: 384,
        samples: 96,
        seed: 0xBA7C4,
    };
    let report = crash_sweep(
        &cfg,
        PmemConfig::strict_for_test(64 << 20),
        run_workload,
        verify,
    );
    assert!(
        report.total_events >= 100,
        "workload too small to cover the apply/fence window: {} events",
        report.total_events
    );
    assert!(
        report.is_ok(),
        "{} of {} crash points violated the cut rule: {:?}",
        report.failures.len(),
        report.crash_points.len(),
        report.failures
    );
}
