//! End-to-end crash-consistency tests: run real workloads on the strict
//! (shadow-image) pool, kill the machine at adversarial points, recover, and
//! check that the recovered abstract state is a **consistent prefix** of the
//! pre-crash history — the definition of buffered durable linearizability.

use std::collections::HashMap;

use montage::{EpochSys, EsysConfig};
use montage_ds::{tags, MontageHashMap, MontageQueue};
use pmem::{ChaosConfig, LatencyModel, PmemConfig, PmemMode, PmemPool};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

type Key = [u8; 32];

fn key(i: u64) -> Key {
    let mut k = [0u8; 32];
    k[..8].copy_from_slice(&i.to_le_bytes());
    k
}

fn strict_sys() -> std::sync::Arc<EpochSys> {
    EpochSys::format(
        PmemPool::new(PmemConfig::strict_for_test(64 << 20)),
        EsysConfig::default(),
    )
}

/// Oracle model of the map.
#[derive(Clone, PartialEq, Debug, Default)]
struct Model(HashMap<u64, Vec<u8>>);

#[derive(Clone, Copy, Debug)]
enum Op {
    Put(u64, u8),
    Remove(u64),
}

fn apply(model: &mut Model, op: Op) {
    match op {
        Op::Put(k, v) => {
            model.0.insert(k, vec![v; 16]);
        }
        Op::Remove(k) => {
            model.0.remove(&k);
        }
    }
}

fn dump(map: &MontageHashMap<Key>, esys: &EpochSys, keys: u64) -> Model {
    let tid = esys.register_thread();
    let mut m = Model::default();
    for k in 0..keys {
        if let Some(v) = map.get_owned(tid, &key(k)) {
            m.0.insert(k, v);
        }
    }
    m
}

/// Single-threaded: after a crash, the recovered map must equal the model
/// after the first K operations for some K at least as large as the last
/// synced operation.
#[test]
fn map_recovers_a_consistent_prefix() {
    const KEYS: u64 = 40;
    const OPS: usize = 300;
    const SYNC_AT: usize = 150;

    let s = strict_sys();
    let map = MontageHashMap::<Key>::new(s.clone(), tags::HASHMAP, 64);
    let tid = s.register_thread();

    let mut rng = SmallRng::seed_from_u64(42);
    let mut states: Vec<Model> = Vec::with_capacity(OPS + 1);
    let mut model = Model::default();
    states.push(model.clone());
    for i in 0..OPS {
        let op = if rng.gen_bool(0.7) {
            Op::Put(rng.gen_range(0..KEYS), i as u8)
        } else {
            Op::Remove(rng.gen_range(0..KEYS))
        };
        match op {
            Op::Put(k, v) => {
                map.put(tid, key(k), &[v; 16]);
            }
            Op::Remove(k) => {
                map.remove(tid, &key(k));
            }
        }
        apply(&mut model, op);
        states.push(model.clone());
        if i + 1 == SYNC_AT {
            s.sync();
        }
        if i % 37 == 0 {
            s.advance_epoch(); // some background clock movement
        }
    }

    let rec = montage::recovery::recover(s.pool().crash(), EsysConfig::default(), 2);
    let map2 = MontageHashMap::<Key>::recover(rec.esys.clone(), tags::HASHMAP, 64, &rec);
    let recovered = dump(&map2, &rec.esys, KEYS);

    let matching: Vec<usize> = (0..=OPS).filter(|&k| states[k] == recovered).collect();
    assert!(
        !matching.is_empty(),
        "recovered state is not any prefix of the history"
    );
    assert!(
        matching.iter().any(|&k| k >= SYNC_AT),
        "recovered state lost synced operations (prefixes matching: {matching:?})"
    );
}

/// Multi-threaded: each thread inserts its own keys in increasing order;
/// recovery must yield a per-thread *prefix* (epochs respect per-thread
/// program order), and everything inserted before the sync must survive.
#[test]
fn multithreaded_inserts_recover_per_thread_prefixes() {
    const PER: u64 = 300;
    const THREADS: u64 = 4;

    let s = strict_sys();
    let map = std::sync::Arc::new(MontageHashMap::<Key>::new(s.clone(), tags::HASHMAP, 512));

    // Phase 1 (synced): first half of each thread's keys.
    std::thread::scope(|sc| {
        for t in 0..THREADS {
            let map = map.clone();
            let s = s.clone();
            sc.spawn(move || {
                let tid = s.register_thread();
                for i in 0..PER / 2 {
                    map.put(tid, key(t * 10_000 + i), &t.to_le_bytes());
                }
            });
        }
    });
    s.sync();
    // Phase 2 (unsynced): the rest, racing with epoch advances.
    std::thread::scope(|sc| {
        for t in 0..THREADS {
            let map = map.clone();
            let s = s.clone();
            sc.spawn(move || {
                let tid = s.register_thread();
                for i in PER / 2..PER {
                    map.put(tid, key(t * 10_000 + i), &t.to_le_bytes());
                }
            });
        }
        for _ in 0..5 {
            s.advance_epoch();
        }
    });

    let rec = montage::recovery::recover(s.pool().crash(), EsysConfig::default(), 4);
    let map2 = MontageHashMap::<Key>::recover(rec.esys.clone(), tags::HASHMAP, 512, &rec);
    let tid = rec.esys.register_thread();

    for t in 0..THREADS {
        // Find this thread's recovered prefix length.
        let mut len = 0;
        while len < PER && map2.get_owned(tid, &key(t * 10_000 + len)).is_some() {
            len += 1;
        }
        assert!(
            len >= PER / 2,
            "thread {t}: synced prefix lost (only {len} of {} survived)",
            PER / 2
        );
        // No holes beyond the prefix.
        for i in len..PER {
            assert!(
                map2.get_owned(tid, &key(t * 10_000 + i)).is_none(),
                "thread {t}: key {i} survived beyond a gap at {len} — not a prefix"
            );
        }
    }
}

/// Queue under concurrent producers/consumers + crash: the recovered queue
/// is a contiguous window of sequence numbers with FIFO order.
#[test]
fn queue_recovers_contiguous_window() {
    let s = strict_sys();
    let q = std::sync::Arc::new(MontageQueue::new(s.clone(), tags::QUEUE));

    std::thread::scope(|sc| {
        for t in 0..3u64 {
            let q = q.clone();
            let s = s.clone();
            sc.spawn(move || {
                let tid = s.register_thread();
                for i in 0..200u64 {
                    q.enqueue(tid, &(t * 1000 + i).to_le_bytes());
                    if i % 3 == 0 {
                        q.dequeue(tid);
                    }
                }
            });
        }
        for _ in 0..6 {
            s.advance_epoch();
            std::thread::sleep(std::time::Duration::from_millis(1));
        }
    });
    s.sync();

    let rec = montage::recovery::recover(s.pool().crash(), EsysConfig::default(), 2);
    // `recover` debug-asserts contiguity internally; verify bounds too.
    let q2 = MontageQueue::recover(rec.esys.clone(), tags::QUEUE, &rec);
    let (head, next) = q2.seq_bounds();
    assert_eq!((next - head) as usize, q2.len());
    // Drain in order.
    let tid = rec.esys.register_thread();
    let mut n = 0;
    while q2.dequeue(tid).is_some() {
        n += 1;
    }
    assert_eq!(n, (next - head) as usize);
}

/// With chaos mode, arbitrary unflushed cache lines may ALSO persist (as on
/// real hardware, where dirty lines can be evicted at any time). Recovery
/// must still produce a consistent prefix.
#[test]
fn chaos_evictions_do_not_break_recovery() {
    for permille in [100u16, 500, 900] {
        let pool = PmemPool::new(PmemConfig {
            size: 64 << 20,
            mode: PmemMode::Strict,
            latency: LatencyModel::ZERO,
            chaos: ChaosConfig {
                spontaneous_evict_permille: permille,
                seed: permille as u64,
                ..ChaosConfig::default()
            },
        });
        let s = EpochSys::format(pool, EsysConfig::default());
        let map = MontageHashMap::<Key>::new(s.clone(), tags::HASHMAP, 64);
        let tid = s.register_thread();
        for i in 0..100 {
            map.put(tid, key(i % 20), &[i as u8; 32]);
            if i % 10 == 0 {
                map.remove(tid, &key(i % 20));
            }
        }
        s.sync();
        for i in 0..50 {
            map.put(tid, key(i % 20), &[0xFF; 32]); // unsynced tail
        }
        let rec = montage::recovery::recover(s.pool().crash(), EsysConfig::default(), 1);
        let map2 = MontageHashMap::<Key>::recover(rec.esys.clone(), tags::HASHMAP, 64, &rec);
        // Structure must be internally consistent and usable.
        let tid2 = rec.esys.register_thread();
        for i in 0..20 {
            let _ = map2.get_owned(tid2, &key(i));
        }
        map2.put(tid2, key(999), b"usable after chaos recovery");
        assert_eq!(
            map2.get_owned(tid2, &key(999)).unwrap(),
            b"usable after chaos recovery"
        );
    }
}

/// Repeated crash/recover cycles (generational survival): each generation
/// adds one synced entry, crashes, and recovers everything so far.
#[test]
fn multiple_crash_generations() {
    let esys = strict_sys();
    let map = MontageHashMap::<Key>::new(esys.clone(), tags::HASHMAP, 64);
    let tid = esys.register_thread();
    map.put(tid, key(0), &0u64.to_le_bytes());
    esys.sync();
    let mut esys = esys;
    for generation in 1..=5u64 {
        let expected = generation;
        let rec = montage::recovery::recover(esys.pool().crash(), EsysConfig::default(), 1);
        let map = MontageHashMap::<Key>::recover(rec.esys.clone(), tags::HASHMAP, 64, &rec);
        assert_eq!(map.len() as u64, expected, "generation {generation}");
        for g in 0..expected {
            assert_eq!(
                map.get_owned(rec.esys.register_thread(), &key(g)).unwrap(),
                g.to_le_bytes()
            );
        }
        let tid = rec.esys.register_thread();
        map.put(tid, key(generation), &generation.to_le_bytes());
        rec.esys.sync();
        esys = rec.esys;
    }
}
