//! Regression chaos test: an item that leaves the cache — evicted by LRU
//! or reaped by lazy expiry — must leave the per-stripe ordered mirror
//! too, and must stay gone across a crash-restart. The mirror is what
//! `scan` walks; a stale entry would either panic the ordered walk (key in
//! the mirror, gone from the map) or resurrect a dead item over the wire.
//!
//! Also pins the deliberate asymmetry of lazy expiry across a crash: an
//! expired-but-never-touched item *is* resident again after recovery (the
//! index rebuild cannot consult a clock the protocol layer owns), but scan
//! filters it, and the first touch reaps it from map and mirror together —
//! observable as the mirror's byte accounting shrinking by exactly one
//! key's footprint.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use kvstore::protocol::{Clock, Session};
use kvstore::{KvBackend, KvStore};
use montage::{EpochSys, EsysConfig};
use pmem::{PmemConfig, PmemPool};

struct MockClock(AtomicU64);

impl Clock for MockClock {
    fn now_ms(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

const STRIPES: usize = 1;
const CAPACITY: usize = 8;

fn esys_cfg() -> EsysConfig {
    EsysConfig {
        max_threads: 4,
        ..Default::default()
    }
}

fn scan_keys(s: &Session) -> Vec<String> {
    let reply = s.execute("scan a z 1000", b"");
    reply
        .lines()
        .filter_map(|l| l.strip_prefix("VALUE "))
        .map(|rest| rest.split_whitespace().next().unwrap().to_string())
        .collect()
}

#[test]
fn evicted_and_expired_items_leave_the_mirror_across_crash_restart() {
    let esys = EpochSys::format(
        PmemPool::new(PmemConfig::strict_for_test(16 << 20)),
        esys_cfg(),
    );
    let store = Arc::new(KvStore::new(
        KvBackend::Montage(esys.clone()),
        STRIPES,
        CAPACITY,
    ));
    let clock = Arc::new(MockClock(AtomicU64::new(1_000_000)));
    let s = Session::new(Arc::clone(&store)).with_clock(clock.clone());

    // Five immortal keys, two with a 1-second TTL.
    for k in ["k1", "k2", "k3", "k4", "k5"] {
        assert_eq!(s.execute(&format!("set {k} 0 0 4"), b"live"), "STORED");
    }
    for e in ["e1", "e2"] {
        assert_eq!(s.execute(&format!("set {e} 0 1 4"), b"dead"), "STORED");
    }
    assert_eq!(store.len(), 7);
    let per_key = store.ordered_mirror_bytes() / store.len();
    assert!(per_key >= 32, "mirror must cost at least the key bytes");

    // Let the TTLs lapse; touching e1 reaps it (lazy expiry), which must
    // drop it from the mirror too — the accounting shrinks by one key.
    clock.0.store(1_002_000, Ordering::Relaxed);
    assert_eq!(s.execute("get e1", b""), "END");
    assert_eq!(store.len(), 6);
    assert_eq!(store.ordered_mirror_bytes(), 6 * per_key);

    // Fill back to capacity and overflow by one: k1 (LRU) is evicted.
    for k in ["k6", "k7"] {
        assert_eq!(s.execute(&format!("set {k} 0 0 4"), b"live"), "STORED");
    }
    assert_eq!(store.len(), CAPACITY, "filled to the per-stripe cap");
    assert_eq!(s.execute("set k9 0 0 4", b"live"), "STORED");
    assert_eq!(store.len(), CAPACITY);
    assert_eq!(store.evictions(), 1);
    assert_eq!(s.execute("get k1", b""), "END", "k1 must be evicted");

    // Pre-crash: the mirror serves scan; e2 is resident but expired, so it
    // is filtered without being reaped; e1 and k1 are gone outright.
    assert_eq!(
        scan_keys(&s),
        ["k2", "k3", "k4", "k5", "k6", "k7", "k9"]
            .iter()
            .map(|k| k.to_string())
            .collect::<Vec<_>>(),
        "scan must hide the expired survivor and the dead keys"
    );
    assert_eq!(store.ordered_mirror_bytes(), CAPACITY * per_key);

    esys.sync();

    // Hard crash, recovery, and a fresh protocol session over the same
    // (frozen) clock.
    let rec =
        montage::try_recover(esys.pool().crash(), esys_cfg(), 1).expect("clean crash must recover");
    let store2 = Arc::new(KvStore::recover(rec.esys.clone(), STRIPES, CAPACITY, &rec));
    let s2 = Session::new(Arc::clone(&store2)).with_clock(clock.clone());

    // The evicted key and the reaped key must not resurrect — not in the
    // index, not in the mirror, not over the wire.
    assert_eq!(store2.len(), CAPACITY, "8 resident items synced pre-crash");
    assert_eq!(store2.ordered_mirror_bytes(), CAPACITY * per_key);
    assert_eq!(s2.execute("get k1", b""), "END", "evicted key resurrected");
    assert_eq!(s2.execute("get e1", b""), "END", "reaped key resurrected");
    assert_eq!(
        scan_keys(&s2),
        ["k2", "k3", "k4", "k5", "k6", "k7", "k9"]
            .iter()
            .map(|k| k.to_string())
            .collect::<Vec<_>>(),
        "scan after restart must hide the expired survivor and the dead keys"
    );

    // e2 survived the crash as a resident-but-expired item (recovery cannot
    // consult the protocol clock). Its first touch reaps it — map and
    // mirror together, shrinking the accounting by exactly one key.
    assert_eq!(s2.execute("get e2", b""), "END");
    assert_eq!(store2.len(), CAPACITY - 1);
    assert_eq!(store2.ordered_mirror_bytes(), (CAPACITY - 1) * per_key);
    assert_eq!(scan_keys(&s2).len(), CAPACITY - 1);

    // And the reap itself is durable: a second crash-restart must not
    // bring e2 back resident.
    rec.esys.sync();
    let rec2 = montage::try_recover(rec.esys.pool().crash(), esys_cfg(), 1)
        .expect("second crash must recover");
    let store3 = Arc::new(KvStore::recover(
        rec2.esys.clone(),
        STRIPES,
        CAPACITY,
        &rec2,
    ));
    let s3 = Session::new(Arc::clone(&store3)).with_clock(clock);
    assert_eq!(store3.len(), CAPACITY - 1);
    assert_eq!(store3.ordered_mirror_bytes(), (CAPACITY - 1) * per_key);
    assert_eq!(scan_keys(&s3).len(), CAPACITY - 1);
}
