//! Offline shim for the `parking_lot` crate.
//!
//! The build environment has no access to crates.io, so the workspace vendors
//! a minimal, API-compatible subset of `parking_lot` on top of `std::sync`.
//! Poisoning is swallowed (parking_lot mutexes are poison-free): a panicked
//! critical section yields the inner data as-is, matching parking_lot
//! semantics closely enough for this workspace's usage (plain `lock()`,
//! `try_lock()`, `Mutex::default`, guards held across scopes).

use std::fmt;
use std::ops::{Deref, DerefMut};

/// Poison-free mutual exclusion, API-compatible with `parking_lot::Mutex`.
#[derive(Default)]
pub struct Mutex<T: ?Sized> {
    inner: std::sync::Mutex<T>,
}

/// RAII guard returned by [`Mutex::lock`].
pub struct MutexGuard<'a, T: ?Sized> {
    inner: std::sync::MutexGuard<'a, T>,
}

impl<T> Mutex<T> {
    pub const fn new(val: T) -> Mutex<T> {
        Mutex {
            inner: std::sync::Mutex::new(val),
        }
    }

    pub fn into_inner(self) -> T {
        match self.inner.into_inner() {
            Ok(v) => v,
            Err(p) => p.into_inner(),
        }
    }
}

impl<T: ?Sized> Mutex<T> {
    pub fn lock(&self) -> MutexGuard<'_, T> {
        MutexGuard {
            inner: match self.inner.lock() {
                Ok(g) => g,
                Err(p) => p.into_inner(),
            },
        }
    }

    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(g) => Some(MutexGuard { inner: g }),
            Err(std::sync::TryLockError::Poisoned(p)) => Some(MutexGuard {
                inner: p.into_inner(),
            }),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    pub fn get_mut(&mut self) -> &mut T {
        match self.inner.get_mut() {
            Ok(v) => v,
            Err(p) => p.into_inner(),
        }
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.try_lock() {
            Some(g) => f.debug_struct("Mutex").field("data", &&*g).finish(),
            None => f.debug_struct("Mutex").field("data", &"<locked>").finish(),
        }
    }
}

impl<T: ?Sized> Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T: ?Sized> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.inner
    }
}

/// Poison-free reader-writer lock, API-compatible with `parking_lot::RwLock`.
#[derive(Default)]
pub struct RwLock<T: ?Sized> {
    inner: std::sync::RwLock<T>,
}

pub struct RwLockReadGuard<'a, T: ?Sized> {
    inner: std::sync::RwLockReadGuard<'a, T>,
}

pub struct RwLockWriteGuard<'a, T: ?Sized> {
    inner: std::sync::RwLockWriteGuard<'a, T>,
}

impl<T> RwLock<T> {
    pub const fn new(val: T) -> RwLock<T> {
        RwLock {
            inner: std::sync::RwLock::new(val),
        }
    }
}

impl<T: ?Sized> RwLock<T> {
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        RwLockReadGuard {
            inner: match self.inner.read() {
                Ok(g) => g,
                Err(p) => p.into_inner(),
            },
        }
    }

    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        RwLockWriteGuard {
            inner: match self.inner.write() {
                Ok(g) => g,
                Err(p) => p.into_inner(),
            },
        }
    }
}

impl<T: ?Sized> Deref for RwLockReadGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T: ?Sized> Deref for RwLockWriteGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T: ?Sized> DerefMut for RwLockWriteGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.inner
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lock_roundtrip() {
        let m = Mutex::new(1u32);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
    }

    #[test]
    fn try_lock_contended() {
        let m = Mutex::new(0u32);
        let g = m.lock();
        assert!(m.try_lock().is_none());
        drop(g);
        assert!(m.try_lock().is_some());
    }

    #[test]
    fn default_and_debug() {
        let m: Mutex<u64> = Mutex::default();
        assert_eq!(*m.lock(), 0);
        assert!(format!("{m:?}").contains("Mutex"));
    }

    #[test]
    fn rwlock_readers_and_writer() {
        let l = RwLock::new(5u32);
        {
            let a = l.read();
            let b = l.read();
            assert_eq!(*a + *b, 10);
        }
        *l.write() = 7;
        assert_eq!(*l.read(), 7);
    }
}
