//! Offline shim for the `parking_lot` crate.
//!
//! The build environment has no access to crates.io, so the workspace vendors
//! a minimal, API-compatible subset of `parking_lot` on top of `std::sync`.
//! Poisoning is swallowed (parking_lot mutexes are poison-free): a panicked
//! critical section yields the inner data as-is, matching parking_lot
//! semantics closely enough for this workspace's usage (plain `lock()`,
//! `try_lock()`, `Mutex::default`, guards held across scopes).

use std::fmt;
use std::ops::{Deref, DerefMut};

/// Poison-free mutual exclusion, API-compatible with `parking_lot::Mutex`.
#[derive(Default)]
pub struct Mutex<T: ?Sized> {
    inner: std::sync::Mutex<T>,
}

/// RAII guard returned by [`Mutex::lock`].
pub struct MutexGuard<'a, T: ?Sized> {
    inner: std::sync::MutexGuard<'a, T>,
}

impl<T> Mutex<T> {
    pub const fn new(val: T) -> Mutex<T> {
        Mutex {
            inner: std::sync::Mutex::new(val),
        }
    }

    pub fn into_inner(self) -> T {
        match self.inner.into_inner() {
            Ok(v) => v,
            Err(p) => p.into_inner(),
        }
    }
}

impl<T: ?Sized> Mutex<T> {
    pub fn lock(&self) -> MutexGuard<'_, T> {
        MutexGuard {
            inner: match self.inner.lock() {
                Ok(g) => g,
                Err(p) => p.into_inner(),
            },
        }
    }

    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(g) => Some(MutexGuard { inner: g }),
            Err(std::sync::TryLockError::Poisoned(p)) => Some(MutexGuard {
                inner: p.into_inner(),
            }),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    pub fn get_mut(&mut self) -> &mut T {
        match self.inner.get_mut() {
            Ok(v) => v,
            Err(p) => p.into_inner(),
        }
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.try_lock() {
            Some(g) => f.debug_struct("Mutex").field("data", &&*g).finish(),
            None => f.debug_struct("Mutex").field("data", &"<locked>").finish(),
        }
    }
}

impl<T: ?Sized> Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T: ?Sized> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.inner
    }
}

/// Condition variable, API-compatible with `parking_lot::Condvar` (the
/// `&mut MutexGuard` waiting style, rather than `std`'s by-value style).
#[derive(Default)]
pub struct Condvar {
    inner: std::sync::Condvar,
}

/// Result of a timed wait on a [`Condvar`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct WaitTimeoutResult(bool);

impl WaitTimeoutResult {
    pub fn timed_out(&self) -> bool {
        self.0
    }
}

/// Aborts the process if dropped; armed around the by-value wait below so a
/// panic inside `std`'s wait cannot unwind past a duplicated guard (which
/// would double-unlock the mutex — UB). Disarmed with `mem::forget` on the
/// normal path.
struct AbortBomb;

impl Drop for AbortBomb {
    fn drop(&mut self) {
        std::process::abort();
    }
}

impl Condvar {
    pub const fn new() -> Condvar {
        Condvar {
            inner: std::sync::Condvar::new(),
        }
    }

    pub fn notify_one(&self) {
        self.inner.notify_one();
    }

    pub fn notify_all(&self) {
        self.inner.notify_all();
    }

    /// Bridges parking_lot's `&mut guard` wait to `std`'s by-value wait:
    /// moves the inner guard out, runs `f`, writes the returned guard back.
    fn requeue<'a, T, F>(&self, guard: &mut MutexGuard<'a, T>, f: F) -> bool
    where
        F: FnOnce(std::sync::MutexGuard<'a, T>) -> (std::sync::MutexGuard<'a, T>, bool),
    {
        // SAFETY: `inner` is moved out by value and unconditionally written
        // back before the borrow ends; the moved-from slot is overwritten
        // with `ptr::write`, never dropped. If `f` unwinds after consuming
        // the guard the bomb aborts instead of letting the duplicate drop.
        unsafe {
            let taken = std::ptr::read(&guard.inner);
            let bomb = AbortBomb;
            let (new, timed_out) = f(taken);
            std::mem::forget(bomb);
            std::ptr::write(&mut guard.inner, new);
            timed_out
        }
    }

    /// Blocks until notified. Like parking_lot (and unlike raw futexes in
    /// general), spurious wakeups are possible; callers loop on a predicate.
    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        self.requeue(guard, |g| {
            let g = match self.inner.wait(g) {
                Ok(g) => g,
                Err(p) => p.into_inner(),
            };
            (g, false)
        });
    }

    /// Blocks until notified or `deadline` passes; reports which happened.
    pub fn wait_until<T>(
        &self,
        guard: &mut MutexGuard<'_, T>,
        deadline: std::time::Instant,
    ) -> WaitTimeoutResult {
        let timeout = deadline.saturating_duration_since(std::time::Instant::now());
        self.wait_for(guard, timeout)
    }

    /// Blocks until notified or `timeout` elapses; reports which happened.
    pub fn wait_for<T>(
        &self,
        guard: &mut MutexGuard<'_, T>,
        timeout: std::time::Duration,
    ) -> WaitTimeoutResult {
        let timed_out = self.requeue(guard, |g| match self.inner.wait_timeout(g, timeout) {
            Ok((g, r)) => (g, r.timed_out()),
            Err(p) => {
                let (g, r) = p.into_inner();
                (g, r.timed_out())
            }
        });
        WaitTimeoutResult(timed_out)
    }
}

impl fmt::Debug for Condvar {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Condvar").finish_non_exhaustive()
    }
}

/// Poison-free reader-writer lock, API-compatible with `parking_lot::RwLock`.
#[derive(Default)]
pub struct RwLock<T: ?Sized> {
    inner: std::sync::RwLock<T>,
}

pub struct RwLockReadGuard<'a, T: ?Sized> {
    inner: std::sync::RwLockReadGuard<'a, T>,
}

pub struct RwLockWriteGuard<'a, T: ?Sized> {
    inner: std::sync::RwLockWriteGuard<'a, T>,
}

impl<T> RwLock<T> {
    pub const fn new(val: T) -> RwLock<T> {
        RwLock {
            inner: std::sync::RwLock::new(val),
        }
    }
}

impl<T: ?Sized> RwLock<T> {
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        RwLockReadGuard {
            inner: match self.inner.read() {
                Ok(g) => g,
                Err(p) => p.into_inner(),
            },
        }
    }

    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        RwLockWriteGuard {
            inner: match self.inner.write() {
                Ok(g) => g,
                Err(p) => p.into_inner(),
            },
        }
    }
}

impl<T: ?Sized> Deref for RwLockReadGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T: ?Sized> Deref for RwLockWriteGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T: ?Sized> DerefMut for RwLockWriteGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.inner
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lock_roundtrip() {
        let m = Mutex::new(1u32);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
    }

    #[test]
    fn try_lock_contended() {
        let m = Mutex::new(0u32);
        let g = m.lock();
        assert!(m.try_lock().is_none());
        drop(g);
        assert!(m.try_lock().is_some());
    }

    #[test]
    fn default_and_debug() {
        let m: Mutex<u64> = Mutex::default();
        assert_eq!(*m.lock(), 0);
        assert!(format!("{m:?}").contains("Mutex"));
    }

    #[test]
    fn condvar_notify_and_timeout() {
        use std::sync::Arc;
        use std::time::{Duration, Instant};

        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let p2 = Arc::clone(&pair);
        let t = std::thread::spawn(move || {
            let (m, cv) = &*p2;
            let mut g = m.lock();
            while !*g {
                cv.wait(&mut g);
            }
        });
        {
            let (m, cv) = &*pair;
            let mut g = m.lock();
            *g = true;
            cv.notify_all();
        }
        t.join().unwrap();

        // Timed wait on a predicate that never turns true must time out and
        // hand the (still-locked) guard back.
        let (m, cv) = &*pair;
        let mut g = m.lock();
        let deadline = Instant::now() + Duration::from_millis(10);
        let res = cv.wait_until(&mut g, deadline);
        assert!(res.timed_out());
        assert!(*g, "guard still protects the data after a timeout");
    }

    #[test]
    fn rwlock_readers_and_writer() {
        let l = RwLock::new(5u32);
        {
            let a = l.read();
            let b = l.read();
            assert_eq!(*a + *b, 10);
        }
        *l.write() = 7;
        assert_eq!(*l.read(), 7);
    }
}
