//! Offline shim for the `criterion` crate.
//!
//! Implements the builder + `bench_function` + `criterion_group!` /
//! `criterion_main!` surface this workspace's benches use. Measurement is a
//! straightforward warm-up followed by timed batches with a median-of-samples
//! report — no statistical regression analysis, plotting, or persistence.
//! Good enough to compare flush/fence counts and relative hot-path costs.

use std::hint::black_box as std_black_box;
use std::time::{Duration, Instant};

/// Opaque-value helper (re-export of `std::hint::black_box`).
pub fn black_box<T>(value: T) -> T {
    std_black_box(value)
}

/// Benchmark driver (subset of `criterion::Criterion`).
pub struct Criterion {
    sample_size: usize,
    warm_up_time: Duration,
    measurement_time: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            sample_size: 20,
            warm_up_time: Duration::from_millis(200),
            measurement_time: Duration::from_millis(500),
        }
    }
}

impl Criterion {
    pub fn sample_size(mut self, n: usize) -> Self {
        assert!(n >= 2, "sample_size must be at least 2");
        self.sample_size = n;
        self
    }

    pub fn warm_up_time(mut self, d: Duration) -> Self {
        self.warm_up_time = d;
        self
    }

    pub fn measurement_time(mut self, d: Duration) -> Self {
        self.measurement_time = d;
        self
    }

    pub fn bench_function<F>(&mut self, id: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher {
            mode: Mode::WarmUp {
                until: Instant::now() + self.warm_up_time,
                iters_per_call: 1,
            },
        };
        f(&mut b);

        // Size batches so each sample runs long enough to time reliably.
        let iters_per_call = match b.mode {
            Mode::WarmUp { iters_per_call, .. } => iters_per_call.max(1),
            _ => 1,
        };
        let mut samples = Vec::with_capacity(self.sample_size);
        let budget_per_sample = self.measurement_time / self.sample_size as u32;
        for _ in 0..self.sample_size {
            let mut b = Bencher {
                mode: Mode::Measure {
                    iters: iters_per_call,
                    elapsed: Duration::ZERO,
                },
            };
            let deadline = Instant::now() + budget_per_sample;
            let mut total = Duration::ZERO;
            let mut iters: u64 = 0;
            loop {
                f(&mut b);
                if let Mode::Measure { elapsed, .. } = &mut b.mode {
                    total += *elapsed;
                    *elapsed = Duration::ZERO;
                }
                iters += iters_per_call;
                if Instant::now() >= deadline {
                    break;
                }
            }
            samples.push(total.as_nanos() as f64 / iters.max(1) as f64);
        }
        samples.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let median = samples[samples.len() / 2];
        let (lo, hi) = (samples[0], samples[samples.len() - 1]);
        println!(
            "{id:<40} time: [{} {} {}]",
            fmt_ns(lo),
            fmt_ns(median),
            fmt_ns(hi)
        );
        self
    }
}

fn fmt_ns(ns: f64) -> String {
    if ns < 1_000.0 {
        format!("{ns:.2} ns")
    } else if ns < 1_000_000.0 {
        format!("{:.2} µs", ns / 1_000.0)
    } else if ns < 1_000_000_000.0 {
        format!("{:.2} ms", ns / 1_000_000.0)
    } else {
        format!("{:.2} s", ns / 1_000_000_000.0)
    }
}

enum Mode {
    /// Calibration pass: run and grow the batch size until calls are timeable.
    WarmUp { until: Instant, iters_per_call: u64 },
    /// Timed pass: run `iters` iterations, accumulate into `elapsed`.
    Measure { iters: u64, elapsed: Duration },
}

/// Per-benchmark iteration driver (subset of `criterion::Bencher`).
pub struct Bencher {
    mode: Mode,
}

impl Bencher {
    pub fn iter<O, R>(&mut self, mut routine: R)
    where
        R: FnMut() -> O,
    {
        match &mut self.mode {
            Mode::WarmUp {
                until,
                iters_per_call,
            } => {
                let deadline = *until;
                loop {
                    let t0 = Instant::now();
                    for _ in 0..*iters_per_call {
                        std_black_box(routine());
                    }
                    let dt = t0.elapsed();
                    // Grow the batch until one call takes ≥ ~50 µs.
                    if dt < Duration::from_micros(50) && *iters_per_call < 1 << 20 {
                        *iters_per_call *= 2;
                    }
                    if Instant::now() >= deadline {
                        break;
                    }
                }
            }
            Mode::Measure { iters, elapsed } => {
                let n = *iters;
                let t0 = Instant::now();
                for _ in 0..n {
                    std_black_box(routine());
                }
                *elapsed += t0.elapsed();
            }
        }
    }
}

/// Declares a benchmark group (subset of `criterion::criterion_group!`).
#[macro_export]
macro_rules! criterion_group {
    (
        name = $name:ident;
        config = $config:expr;
        targets = $($target:path),+ $(,)?
    ) => {
        pub fn $name() {
            let mut criterion: $crate::Criterion = $config;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group! {
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        }
    };
}

/// Declares the benchmark entry point (subset of `criterion::criterion_main!`).
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick() -> Criterion {
        Criterion::default()
            .sample_size(2)
            .warm_up_time(Duration::from_millis(1))
            .measurement_time(Duration::from_millis(4))
    }

    #[test]
    fn bench_function_runs_routine() {
        let mut calls = 0u64;
        quick().bench_function("noop", |b| {
            b.iter(|| {
                calls += 1;
                calls
            })
        });
        assert!(calls > 0);
    }

    #[test]
    fn group_macro_compiles() {
        fn target(c: &mut Criterion) {
            c.bench_function("t", |b| b.iter(|| 1u32 + 1));
        }
        criterion_group! {
            name = g;
            config = quick();
            targets = target
        }
        g();
    }
}
