//! Offline shim for the `crossbeam` crate.
//!
//! The build environment has no crates.io access, so the workspace vendors
//! the two crossbeam facilities it uses:
//!
//! * [`utils::CachePadded`] — alignment padding for per-thread hot atomics;
//! * [`epoch`] — a small but real epoch-based reclamation (EBR) runtime with
//!   the `pin` / `Guard::defer_unchecked` / `Atomic`–`Owned`–`Shared` API
//!   subset the lock-free structures in this workspace rely on.
//!
//! The EBR core is the textbook three-era scheme: threads publish the global
//! era into a slot while pinned; deferred destructors are tagged with the era
//! current at `defer` time and executed only once every slot has been
//! observed at a strictly later era (or idle). This gives the same safety
//! contract as crossbeam-epoch for the usage here (unlink before defer,
//! access only through a pinned guard).

pub mod utils {
    use std::fmt;
    use std::ops::{Deref, DerefMut};

    /// Pads and aligns a value to 128 bytes (two x86-64 prefetch lines),
    /// mirroring `crossbeam_utils::CachePadded`.
    #[derive(Clone, Copy, Default, PartialEq, Eq)]
    #[repr(align(128))]
    pub struct CachePadded<T> {
        value: T,
    }

    impl<T> CachePadded<T> {
        pub const fn new(value: T) -> CachePadded<T> {
            CachePadded { value }
        }

        pub fn into_inner(self) -> T {
            self.value
        }
    }

    impl<T> Deref for CachePadded<T> {
        type Target = T;
        fn deref(&self) -> &T {
            &self.value
        }
    }

    impl<T> DerefMut for CachePadded<T> {
        fn deref_mut(&mut self) -> &mut T {
            &mut self.value
        }
    }

    impl<T: fmt::Debug> fmt::Debug for CachePadded<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            self.value.fmt(f)
        }
    }

    impl<T> From<T> for CachePadded<T> {
        fn from(value: T) -> Self {
            CachePadded::new(value)
        }
    }
}

pub mod epoch {
    use std::cell::Cell;
    use std::marker::PhantomData;
    use std::ops::{Deref, DerefMut};
    use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
    use std::sync::Mutex;

    /// Maximum simultaneously-registered threads (slot array size).
    const MAX_THREADS: usize = 1024;
    /// Slot value: unclaimed.
    const FREE: u64 = u64::MAX;
    /// Slot value: claimed by a thread that is not currently pinned.
    const IDLE: u64 = u64::MAX - 1;
    /// Collect every this-many pins per thread.
    const PINS_BETWEEN_COLLECT: u64 = 64;

    /// Global era clock. Starts at 1 so a 0 slot value is never ambiguous.
    static ERA: AtomicU64 = AtomicU64::new(1);
    /// Per-thread published eras (`FREE`, `IDLE`, or the pinned era).
    static SLOTS: [AtomicU64; MAX_THREADS] = [const { AtomicU64::new(FREE) }; MAX_THREADS];

    struct Deferred {
        era: u64,
        call: Box<dyn FnOnce() + 'static>,
    }
    // SAFETY: deferred closures may close over raw pointers; executing them on
    // another thread is exactly the (unsafe) contract of `defer_unchecked`,
    // identical to crossbeam-epoch's internal `Deferred`.
    unsafe impl Send for Deferred {}

    fn garbage() -> &'static Mutex<Vec<Deferred>> {
        static GARBAGE: Mutex<Vec<Deferred>> = Mutex::new(Vec::new());
        &GARBAGE
    }

    thread_local! {
        /// (slot index + 1, nesting depth, pins since last collect).
        static TLS: Cell<(usize, usize, u64)> = const { Cell::new((0, 0, 0)) };
        /// Releases this thread's slot on exit.
        static SLOT_RELEASER: SlotReleaser = const { SlotReleaser };
    }

    struct SlotReleaser;
    impl Drop for SlotReleaser {
        fn drop(&mut self) {
            let (slot1, _, _) = TLS.get();
            if slot1 != 0 {
                SLOTS[slot1 - 1].store(FREE, Ordering::SeqCst);
            }
        }
    }

    fn claim_slot() -> usize {
        let (slot1, depth, pins) = TLS.get();
        if slot1 != 0 {
            return slot1 - 1;
        }
        for (i, s) in SLOTS.iter().enumerate() {
            if s.load(Ordering::Relaxed) == FREE
                && s.compare_exchange(FREE, IDLE, Ordering::SeqCst, Ordering::Relaxed)
                    .is_ok()
            {
                TLS.set((i + 1, depth, pins));
                SLOT_RELEASER.with(|_| {}); // force registration of the destructor
                return i;
            }
        }
        panic!("crossbeam shim: more than {MAX_THREADS} concurrent threads");
    }

    /// Oldest era any pinned thread may still be reading under, or the
    /// current era when nobody is pinned.
    fn min_pinned_era() -> u64 {
        let now = ERA.load(Ordering::SeqCst);
        SLOTS
            .iter()
            .map(|s| s.load(Ordering::SeqCst))
            .filter(|&v| v < IDLE)
            .min()
            .unwrap_or(now)
    }

    /// Advances the era and runs every deferred destructor whose era is
    /// strictly older than every pinned thread's era.
    fn collect() {
        ERA.fetch_add(1, Ordering::SeqCst);
        let min = min_pinned_era();
        let ready: Vec<Deferred> = {
            let mut g = match garbage().lock() {
                Ok(g) => g,
                Err(p) => p.into_inner(),
            };
            let mut ready = Vec::new();
            let mut i = 0;
            while i < g.len() {
                if g[i].era < min {
                    ready.push(g.swap_remove(i));
                } else {
                    i += 1;
                }
            }
            ready
        };
        // Run destructors outside the lock: they may themselves defer.
        for d in ready {
            (d.call)();
        }
    }

    /// An RAII epoch pin (subset of `crossbeam_epoch::Guard`).
    ///
    /// Unlike crossbeam's, this guard is `Sync` (needed for the static
    /// [`unprotected`] guard); the workspace never moves guards across
    /// threads.
    pub struct Guard {
        active: bool,
    }

    /// Pins the current thread and returns a guard; memory deferred by other
    /// threads cannot be freed while the guard lives.
    pub fn pin() -> Guard {
        let slot = claim_slot();
        let (slot1, depth, pins) = TLS.get();
        if depth == 0 {
            // Publish the era, re-reading until it is stable so a concurrent
            // collector either sees our slot or we see its newer era.
            let mut e = ERA.load(Ordering::SeqCst);
            loop {
                SLOTS[slot].store(e, Ordering::SeqCst);
                let e2 = ERA.load(Ordering::SeqCst);
                if e2 == e {
                    break;
                }
                e = e2;
            }
        }
        TLS.set((slot1, depth + 1, pins + 1));
        if depth == 0 && pins.is_multiple_of(PINS_BETWEEN_COLLECT) {
            collect();
        }
        Guard { active: true }
    }

    /// A guard that does not pin: deferred work runs immediately.
    ///
    /// # Safety
    /// The caller must guarantee no other thread can concurrently access the
    /// data whose reclamation is deferred through this guard.
    pub unsafe fn unprotected() -> &'static Guard {
        static UNPROTECTED: Guard = Guard { active: false };
        &UNPROTECTED
    }

    impl Guard {
        /// Defers `f` until all currently-pinned threads unpin.
        ///
        /// # Safety
        /// `f` will be called from an arbitrary thread once no guard from
        /// before this call is live; the closure (typically a deallocation of
        /// an already-unlinked node) must be sound under that contract.
        pub unsafe fn defer_unchecked<F, R>(&self, f: F)
        where
            F: FnOnce() -> R,
        {
            if !self.active {
                let _ = f();
                return;
            }
            let call: Box<dyn FnOnce() + '_> = Box::new(move || {
                let _ = f();
            });
            // SAFETY: lifetime erasure is the documented contract of
            // defer_unchecked — the caller vouches the closure stays valid
            // until it runs.
            let call: Box<dyn FnOnce() + 'static> = unsafe { std::mem::transmute(call) };
            let era = ERA.load(Ordering::SeqCst);
            match garbage().lock() {
                Ok(mut g) => g.push(Deferred { era, call }),
                Err(p) => p.into_inner().push(Deferred { era, call }),
            }
        }

        /// Defers dropping the heap allocation behind `ptr`.
        ///
        /// # Safety
        /// `ptr` must have come from [`Owned::into_shared`] and be unlinked
        /// from the structure (unreachable to threads that pin later).
        pub unsafe fn defer_destroy<T>(&self, ptr: Shared<'_, T>) {
            let raw = ptr.untagged_raw();
            if raw == 0 {
                return;
            }
            // SAFETY: per this function's contract.
            unsafe { self.defer_unchecked(move || drop(Box::from_raw(raw as *mut T))) }
        }
    }

    impl Drop for Guard {
        fn drop(&mut self) {
            if !self.active {
                return;
            }
            let (slot1, depth, pins) = TLS.get();
            debug_assert!(slot1 != 0 && depth > 0, "guard dropped off-thread");
            TLS.set((slot1, depth - 1, pins));
            if depth == 1 {
                SLOTS[slot1 - 1].store(IDLE, Ordering::SeqCst);
            }
        }
    }

    const fn low_bits<T>() -> usize {
        std::mem::align_of::<T>() - 1
    }

    /// An atomic tagged pointer to a heap `T` (subset of
    /// `crossbeam_epoch::Atomic`).
    pub struct Atomic<T> {
        data: AtomicUsize,
        _marker: PhantomData<*mut T>,
    }

    // SAFETY: same bounds as crossbeam_epoch::Atomic — it is a pointer whose
    // pointees are handed out as `&T` across threads.
    unsafe impl<T: Send + Sync> Send for Atomic<T> {}
    unsafe impl<T: Send + Sync> Sync for Atomic<T> {}

    impl<T> Atomic<T> {
        pub fn null() -> Atomic<T> {
            Atomic {
                data: AtomicUsize::new(0),
                _marker: PhantomData,
            }
        }

        pub fn new(value: T) -> Atomic<T> {
            Atomic {
                data: AtomicUsize::new(Box::into_raw(Box::new(value)) as usize),
                _marker: PhantomData,
            }
        }

        pub fn load<'g>(&self, ord: Ordering, _guard: &'g Guard) -> Shared<'g, T> {
            Shared {
                data: self.data.load(ord),
                _marker: PhantomData,
            }
        }

        pub fn store(&self, new: Shared<'_, T>, ord: Ordering) {
            self.data.store(new.data, ord);
        }

        /// CAS on the tagged pointer word (subset of
        /// `crossbeam_epoch::Atomic::compare_exchange`; the failure arm
        /// returns the observed value instead of crossbeam's error struct).
        pub fn compare_exchange<'g>(
            &self,
            current: Shared<'_, T>,
            new: Shared<'g, T>,
            success: Ordering,
            failure: Ordering,
            _guard: &'g Guard,
        ) -> Result<Shared<'g, T>, Shared<'g, T>> {
            match self
                .data
                .compare_exchange(current.data, new.data, success, failure)
            {
                Ok(_) => Ok(new),
                Err(observed) => Err(Shared {
                    data: observed,
                    _marker: PhantomData,
                }),
            }
        }
    }

    impl<T> Drop for Atomic<T> {
        fn drop(&mut self) {
            // Matches crossbeam: dropping an Atomic does NOT free the pointee
            // (ownership is ambiguous); containers free nodes explicitly.
        }
    }

    /// A tagged pointer valid for the lifetime of a guard.
    pub struct Shared<'g, T> {
        data: usize,
        _marker: PhantomData<(&'g (), *mut T)>,
    }

    impl<T> Clone for Shared<'_, T> {
        fn clone(&self) -> Self {
            *self
        }
    }
    impl<T> Copy for Shared<'_, T> {}

    impl<T> PartialEq for Shared<'_, T> {
        fn eq(&self, other: &Self) -> bool {
            self.data == other.data
        }
    }
    impl<T> Eq for Shared<'_, T> {}

    impl<'g, T> Shared<'g, T> {
        pub fn null() -> Shared<'g, T> {
            Shared {
                data: 0,
                _marker: PhantomData,
            }
        }

        pub fn is_null(&self) -> bool {
            self.untagged_raw() == 0
        }

        fn untagged_raw(&self) -> usize {
            self.data & !low_bits::<T>()
        }

        pub fn tag(&self) -> usize {
            self.data & low_bits::<T>()
        }

        pub fn with_tag(&self, tag: usize) -> Shared<'g, T> {
            Shared {
                data: self.untagged_raw() | (tag & low_bits::<T>()),
                _marker: PhantomData,
            }
        }

        pub fn as_raw(&self) -> *const T {
            self.untagged_raw() as *const T
        }

        /// # Safety
        /// If non-null, the pointee must be alive (guard pinned before the
        /// node could be freed).
        pub unsafe fn as_ref(&self) -> Option<&'g T> {
            let raw = self.untagged_raw();
            if raw == 0 {
                None
            } else {
                // SAFETY: per this function's contract.
                Some(unsafe { &*(raw as *const T) })
            }
        }

        /// # Safety
        /// The pointer must be non-null and the pointee alive (guard pinned
        /// before the node could be freed).
        pub unsafe fn deref(&self) -> &'g T {
            // SAFETY: per this function's contract.
            unsafe { &*(self.untagged_raw() as *const T) }
        }

        /// # Safety
        /// The caller must exclusively own the pointee (e.g. single-threaded
        /// teardown) and the pointer must be non-null.
        pub unsafe fn into_owned(self) -> Owned<T> {
            debug_assert!(!self.is_null());
            // SAFETY: per this function's contract.
            Owned {
                boxed: unsafe { Box::from_raw(self.untagged_raw() as *mut T) },
            }
        }
    }

    /// A uniquely-owned heap `T` not yet published (subset of
    /// `crossbeam_epoch::Owned`).
    pub struct Owned<T> {
        boxed: Box<T>,
    }

    impl<T> Owned<T> {
        pub fn new(value: T) -> Owned<T> {
            Owned {
                boxed: Box::new(value),
            }
        }

        pub fn into_shared<'g>(self, _guard: &'g Guard) -> Shared<'g, T> {
            Shared {
                data: Box::into_raw(self.boxed) as usize,
                _marker: PhantomData,
            }
        }
    }

    impl<T> Deref for Owned<T> {
        type Target = T;
        fn deref(&self) -> &T {
            &self.boxed
        }
    }

    impl<T> DerefMut for Owned<T> {
        fn deref_mut(&mut self) -> &mut T {
            &mut self.boxed
        }
    }

    #[cfg(test)]
    mod tests {
        use super::*;
        use std::sync::atomic::AtomicU64 as StdAtomicU64;
        use std::sync::Arc;

        #[test]
        fn atomic_publish_and_read() {
            let a = Atomic::new(41u64);
            let g = pin();
            let s = a.load(Ordering::Acquire, &g);
            assert!(!s.is_null());
            assert_eq!(unsafe { *s.deref() }, 41);
            unsafe { g.defer_destroy(s) };
        }

        #[test]
        fn tags_ride_low_bits() {
            let a = Atomic::new(7u64);
            let g = pin();
            let s = a.load(Ordering::Acquire, &g).with_tag(1);
            assert_eq!(s.tag(), 1);
            assert_eq!(unsafe { *s.deref() }, 7);
            assert_eq!(s.with_tag(0).tag(), 0);
            unsafe { g.defer_destroy(s) };
        }

        #[test]
        fn deferred_work_eventually_runs() {
            let hits = Arc::new(StdAtomicU64::new(0));
            {
                let g = pin();
                for _ in 0..10 {
                    let hits = hits.clone();
                    unsafe {
                        g.defer_unchecked(move || {
                            hits.fetch_add(1, Ordering::SeqCst);
                        })
                    };
                }
            }
            // Unpinned now: repeated pins must eventually collect all 10.
            for _ in 0..(PINS_BETWEEN_COLLECT * 4) {
                drop(pin());
            }
            assert_eq!(hits.load(Ordering::SeqCst), 10);
        }

        #[test]
        fn pinned_reader_blocks_reclamation() {
            let hits = Arc::new(StdAtomicU64::new(0));
            let reader = pin();
            {
                let h = hits.clone();
                let g = pin();
                unsafe {
                    g.defer_unchecked(move || {
                        h.fetch_add(1, Ordering::SeqCst);
                    })
                };
            }
            // Our own pin (from before the defer) must hold the garbage live.
            collect();
            collect();
            assert_eq!(hits.load(Ordering::SeqCst), 0);
            drop(reader);
            collect();
            assert_eq!(hits.load(Ordering::SeqCst), 1);
        }

        #[test]
        fn unprotected_defer_runs_immediately() {
            let hits = Arc::new(StdAtomicU64::new(0));
            let h = hits.clone();
            unsafe {
                unprotected().defer_unchecked(move || {
                    h.fetch_add(1, Ordering::SeqCst);
                });
            }
            assert_eq!(hits.load(Ordering::SeqCst), 1);
        }

        #[test]
        fn concurrent_defer_and_collect_stress() {
            let freed = Arc::new(StdAtomicU64::new(0));
            let mut handles = vec![];
            for _ in 0..4 {
                let freed = freed.clone();
                handles.push(std::thread::spawn(move || {
                    for _ in 0..500 {
                        let g = pin();
                        let f = freed.clone();
                        unsafe {
                            g.defer_unchecked(move || {
                                f.fetch_add(1, Ordering::SeqCst);
                            })
                        };
                    }
                }));
            }
            for h in handles {
                h.join().unwrap();
            }
            for _ in 0..(PINS_BETWEEN_COLLECT * 4) {
                drop(pin());
            }
            assert_eq!(freed.load(Ordering::SeqCst), 2000);
        }
    }
}
