//! Offline shim for the `proptest` crate.
//!
//! Implements the subset of proptest this workspace's property tests use:
//! the [`proptest!`] macro (with `#![proptest_config]`), [`Strategy`] with
//! `prop_map`, [`any`], [`Just`], weighted [`prop_oneof!`], range strategies,
//! tuple strategies, [`collection::vec`], and `prop_assert*`.
//!
//! Differences from real proptest, acceptable for this workspace:
//! * No shrinking — a failing case reports its inputs (via panic message
//!   context) but is not minimized.
//! * Case generation is seeded deterministically from the test name, so runs
//!   are reproducible across invocations and machines.

use std::marker::PhantomData;
use std::ops::Range;

use rand::rngs::SmallRng;
use rand::{RandomValue, Rng, SampleRange};

/// Run configuration (subset of `proptest::test_runner::Config`).
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of random cases to execute per test.
    pub cases: u32,
    /// Accepted for API compatibility; shrinking is not implemented.
    pub max_shrink_iters: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig {
            cases: 64,
            max_shrink_iters: 0,
        }
    }
}

/// FNV-1a, used to derive a stable per-test RNG seed from the test name.
pub fn seed_for(name: &str) -> u64 {
    let mut h: u64 = 0xCBF2_9CE4_8422_2325;
    for b in name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

/// A generator of random values (subset of `proptest::strategy::Strategy`).
pub trait Strategy {
    type Value;

    fn generate(&self, rng: &mut SmallRng) -> Self::Value;

    fn prop_map<O, F>(self, func: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { source: self, func }
    }

    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Box::new(self))
    }
}

/// Type-erased strategy (subset of `proptest::strategy::BoxedStrategy`).
pub struct BoxedStrategy<T>(Box<dyn Strategy<Value = T>>);

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut SmallRng) -> T {
        self.0.generate(rng)
    }
}

/// Output of [`Strategy::prop_map`].
pub struct Map<S, F> {
    source: S,
    func: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;
    fn generate(&self, rng: &mut SmallRng) -> O {
        (self.func)(self.source.generate(rng))
    }
}

/// Always yields a clone of the wrapped value.
#[derive(Clone, Debug)]
pub struct Just<T>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut SmallRng) -> T {
        self.0.clone()
    }
}

/// Uniform values of `T` (subset of `proptest::arbitrary::any`).
pub fn any<T: RandomValue>() -> Any<T> {
    Any(PhantomData)
}

pub struct Any<T>(PhantomData<fn() -> T>);

impl<T: RandomValue> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut SmallRng) -> T {
        rng.gen()
    }
}

impl<T> Strategy for Range<T>
where
    T: Clone,
    Range<T>: SampleRange<T>,
{
    type Value = T;
    fn generate(&self, rng: &mut SmallRng) -> T {
        rng.gen_range(self.clone())
    }
}

impl<A: Strategy, B: Strategy> Strategy for (A, B) {
    type Value = (A::Value, B::Value);
    fn generate(&self, rng: &mut SmallRng) -> Self::Value {
        (self.0.generate(rng), self.1.generate(rng))
    }
}

impl<A: Strategy, B: Strategy, C: Strategy> Strategy for (A, B, C) {
    type Value = (A::Value, B::Value, C::Value);
    fn generate(&self, rng: &mut SmallRng) -> Self::Value {
        (
            self.0.generate(rng),
            self.1.generate(rng),
            self.2.generate(rng),
        )
    }
}

/// Weighted union of same-valued strategies (backs [`prop_oneof!`]).
pub struct Union<T> {
    total: u32,
    arms: Vec<(u32, BoxedStrategy<T>)>,
}

impl<T> Union<T> {
    pub fn new(arms: Vec<(u32, BoxedStrategy<T>)>) -> Union<T> {
        let total = arms.iter().map(|(w, _)| *w).sum();
        assert!(total > 0, "prop_oneof! needs at least one positive weight");
        Union { total, arms }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;
    fn generate(&self, rng: &mut SmallRng) -> T {
        let mut pick = rng.gen_range(0..self.total);
        for (w, s) in &self.arms {
            if pick < *w {
                return s.generate(rng);
            }
            pick -= *w;
        }
        unreachable!("weights exhausted")
    }
}

pub mod collection {
    use super::{SmallRng, Strategy};
    use rand::Rng;
    use std::ops::Range;

    /// `Vec` strategy with a uniformly-sampled length (subset of
    /// `proptest::collection::vec`).
    pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
        assert!(size.start < size.end, "empty size range");
        VecStrategy { element, size }
    }

    pub struct VecStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut SmallRng) -> Vec<S::Value> {
            let n = rng.gen_range(self.size.clone());
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }
}

pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_oneof, proptest, BoxedStrategy, Just,
        ProptestConfig, Strategy,
    };
    pub use rand::rngs::SmallRng;
    pub use rand::{Rng, SeedableRng};
}

// Re-exported so the macros can construct the RNG from caller crates.
#[doc(hidden)]
pub use rand::rngs::SmallRng as __SmallRng;
#[doc(hidden)]
pub use rand::SeedableRng as __SeedableRng;

#[macro_export]
macro_rules! prop_assert {
    ($($tokens:tt)*) => { assert!($($tokens)*) };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($($tokens:tt)*) => { assert_eq!($($tokens)*) };
}

#[macro_export]
macro_rules! prop_oneof {
    ($($weight:expr => $strat:expr),+ $(,)?) => {
        $crate::Union::new(vec![
            $(($weight as u32, $crate::Strategy::boxed($strat))),+
        ])
    };
}

#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($cfg:expr)]
        $($rest:tt)*
    ) => {
        $crate::__proptest_fns! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns! { ($crate::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    ( ($cfg:expr) ) => {};
    (
        ($cfg:expr)
        $(#[$meta:meta])*
        fn $name:ident ( $($arg:ident in $strat:expr),+ $(,)? ) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let __cfg: $crate::ProptestConfig = $cfg;
            let __seed = $crate::seed_for(concat!(module_path!(), "::", stringify!($name)));
            let mut __rng = <$crate::__SmallRng as $crate::__SeedableRng>::seed_from_u64(__seed);
            for __case in 0..__cfg.cases {
                $(let $arg = $crate::Strategy::generate(&($strat), &mut __rng);)+
                $body
            }
        }
        $crate::__proptest_fns! { ($cfg) $($rest)* }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[derive(Clone, Debug, PartialEq)]
    enum Op {
        A(u8),
        B,
    }

    proptest! {
        #![proptest_config(ProptestConfig { cases: 16, .. ProptestConfig::default() })]

        #[test]
        fn ranges_and_tuples(n in 1u64..100, pair in (0u32..4, crate::any::<bool>())) {
            prop_assert!((1..100).contains(&n));
            prop_assert!(pair.0 < 4);
        }

        #[test]
        fn vec_and_oneof(ops in crate::collection::vec(
            prop_oneof![3 => crate::any::<u8>().prop_map(Op::A), 1 => Just(Op::B)],
            1..20,
        )) {
            prop_assert!(!ops.is_empty() && ops.len() < 20);
        }
    }

    #[test]
    fn seeds_are_stable() {
        assert_eq!(crate::seed_for("x"), crate::seed_for("x"));
        assert_ne!(crate::seed_for("x"), crate::seed_for("y"));
    }
}
