//! Offline shim for the `rand` crate.
//!
//! The build environment cannot reach crates.io, so the workspace vendors the
//! small slice of the `rand 0.8` API it actually uses: `SeedableRng`,
//! `rngs::SmallRng`, and the `Rng` extension methods `gen`, `gen_range`, and
//! `gen_bool`. The generator is xoshiro256** seeded via SplitMix64 — the same
//! family the real `SmallRng` uses on 64-bit targets — so statistical quality
//! matches what the workloads (zipfian sampling, chaos eviction) expect.
//! Determinism contract: the same seed yields the same stream within this
//! workspace, which is all the tests rely on (they never compare against
//! upstream rand streams).

/// Construction of RNGs from seeds (subset of `rand::SeedableRng`).
pub trait SeedableRng: Sized {
    /// Seeds deterministically from a single `u64` (SplitMix64 expansion).
    fn seed_from_u64(state: u64) -> Self;

    /// Seeds from OS entropy (here: address + time salt, never used for
    /// reproducible runs).
    fn from_entropy() -> Self {
        let t = std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .map(|d| d.as_nanos() as u64)
            .unwrap_or(0x9E37_79B9);
        let salt = &t as *const u64 as u64;
        Self::seed_from_u64(t ^ salt.rotate_left(32))
    }
}

/// Core RNG interface (subset of `rand::RngCore` + `rand::Rng`).
pub trait Rng {
    fn next_u64(&mut self) -> u64;

    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Uniform value of `T` (subset of `Standard` distribution sampling).
    fn gen<T: RandomValue>(&mut self) -> T
    where
        Self: Sized,
    {
        T::random(self)
    }

    /// Uniform value in `range` (half-open or inclusive integer/float ranges).
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T
    where
        Self: Sized,
    {
        range.sample_in(self)
    }

    /// `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        debug_assert!((0.0..=1.0).contains(&p));
        self.gen::<f64>() < p
    }

    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let v = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&v[..chunk.len()]);
        }
    }
}

pub mod rngs {
    use super::{Rng, SeedableRng};

    /// xoshiro256** — the algorithm behind `rand`'s 64-bit `SmallRng`.
    #[derive(Clone, Debug)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(mut state: u64) -> Self {
            // SplitMix64 seed expansion (Blackman & Vigna's recommendation).
            let mut next = || {
                state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = state;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            let s = [next(), next(), next(), next()];
            SmallRng { s }
        }
    }

    impl Rng for SmallRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

/// Types samplable uniformly from an RNG (subset of the `Standard`
/// distribution).
pub trait RandomValue {
    fn random<R: Rng>(rng: &mut R) -> Self;
}

macro_rules! impl_random_int {
    ($($t:ty),*) => {$(
        impl RandomValue for $t {
            #[allow(clippy::cast_possible_truncation)]
            fn random<R: Rng>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_random_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl RandomValue for u128 {
    fn random<R: Rng>(rng: &mut R) -> Self {
        ((rng.next_u64() as u128) << 64) | rng.next_u64() as u128
    }
}

impl RandomValue for bool {
    fn random<R: Rng>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl RandomValue for f64 {
    fn random<R: Rng>(rng: &mut R) -> Self {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl RandomValue for f32 {
    fn random<R: Rng>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

/// Element types uniformly samplable from a range (subset of
/// `rand::distributions::uniform::SampleUniform`). A single generic
/// `SampleRange` impl hangs off this trait so integer-literal inference flows
/// through `gen_range` exactly as with real rand.
pub trait SampleUniform: Copy + PartialOrd {
    fn sample_half_open<R: Rng>(rng: &mut R, start: Self, end: Self) -> Self;
    fn sample_inclusive<R: Rng>(rng: &mut R, start: Self, end: Self) -> Self;
}

macro_rules! impl_sample_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            #[allow(clippy::cast_possible_truncation)]
            fn sample_half_open<R: Rng>(rng: &mut R, start: Self, end: Self) -> Self {
                assert!(start < end, "empty range in gen_range");
                let span = (end as u128).wrapping_sub(start as u128) as u64;
                // Multiply-shift bounded sampling (Lemire); bias is < 2^-64.
                let hi = ((rng.next_u64() as u128 * span as u128) >> 64) as u64;
                start.wrapping_add(hi as $t)
            }

            #[allow(clippy::cast_possible_truncation)]
            fn sample_inclusive<R: Rng>(rng: &mut R, start: Self, end: Self) -> Self {
                assert!(start <= end, "empty range in gen_range");
                let span = (end as u128).wrapping_sub(start as u128).wrapping_add(1) as u64;
                if span == 0 {
                    // Full-width inclusive range.
                    return RandomValue::random(rng);
                }
                let hi = ((rng.next_u64() as u128 * span as u128) >> 64) as u64;
                start.wrapping_add(hi as $t)
            }
        }
    )*};
}
impl_sample_uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_sample_uniform_float {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_half_open<R: Rng>(rng: &mut R, start: Self, end: Self) -> Self {
                assert!(start < end, "empty range in gen_range");
                start + rng.gen::<$t>() * (end - start)
            }

            fn sample_inclusive<R: Rng>(rng: &mut R, start: Self, end: Self) -> Self {
                assert!(start <= end, "empty range in gen_range");
                start + rng.gen::<$t>() * (end - start)
            }
        }
    )*};
}
impl_sample_uniform_float!(f32, f64);

/// Ranges samplable uniformly (subset of `rand::distributions::uniform`).
pub trait SampleRange<T> {
    fn sample_in<R: Rng>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for std::ops::Range<T> {
    fn sample_in<R: Rng>(self, rng: &mut R) -> T {
        T::sample_half_open(rng, self.start, self.end)
    }
}

impl<T: SampleUniform> SampleRange<T> for std::ops::RangeInclusive<T> {
    fn sample_in<R: Rng>(self, rng: &mut R) -> T {
        T::sample_inclusive(rng, *self.start(), *self.end())
    }
}

pub mod prelude {
    pub use super::rngs::SmallRng;
    pub use super::{Rng, SeedableRng};
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = SmallRng::seed_from_u64(7);
        let mut b = SmallRng::seed_from_u64(7);
        for _ in 0..64 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = SmallRng::seed_from_u64(8);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn gen_range_bounds_hold() {
        let mut r = SmallRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let v = r.gen_range(10u64..20);
            assert!((10..20).contains(&v));
            let w = r.gen_range(0u32..=3);
            assert!(w <= 3);
            let f = r.gen_range(0.25f64..0.75);
            assert!((0.25..0.75).contains(&f));
            let i = r.gen_range(-5i64..5);
            assert!((-5..5).contains(&i));
        }
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut r = SmallRng::seed_from_u64(3);
        let mut acc = 0.0;
        for _ in 0..10_000 {
            let v: f64 = r.gen();
            assert!((0.0..1.0).contains(&v));
            acc += v;
        }
        let mean = acc / 10_000.0;
        assert!((0.45..0.55).contains(&mean), "mean {mean} far from 0.5");
    }

    #[test]
    fn gen_bool_respects_probability() {
        let mut r = SmallRng::seed_from_u64(4);
        let hits = (0..10_000).filter(|_| r.gen_bool(0.9)).count();
        assert!((8_700..9_300).contains(&hits), "p=0.9 hit {hits}/10000");
    }

    #[test]
    fn fill_bytes_covers_tail() {
        let mut r = SmallRng::seed_from_u64(5);
        let mut buf = [0u8; 13];
        r.fill_bytes(&mut buf);
        assert!(buf.iter().any(|&b| b != 0));
    }
}
